//! Convergence checking.
//!
//! The Convergence requirement (Section 3): *every computation of `p` that
//! starts at any state where `T` holds reaches a state where `S` holds.*
//!
//! Over a finite state space this reduces to analyzing the *region*
//! `T ∧ ¬S`. A computation can fail to reach `S` in exactly three ways:
//!
//! 1. it gets stuck at a region state with no enabled action (a finite
//!    maximal computation ending outside `S`),
//! 2. it leaves both `S` and `T` (only possible when `T` is not closed —
//!    reported so callers notice the missing closure proof), or
//! 3. it stays in the region forever, cycling.
//!
//! Case 3 depends on fairness. Under an **unfair** daemon any cycle inside
//! the region is a legal computation. Under the paper's **weakly fair**
//! daemon ("each action that is continuously enabled is eventually
//! executed"), an infinite computation confined to a strongly connected
//! component `Q` of the region is legal iff every action enabled at *all*
//! states of `Q` has at least one transition that stays inside `Q`: any
//! such action is continuously enabled, so it must be executed infinitely
//! often, and if each of its executions left `Q` the computation could not
//! remain in `Q`. (Conversely, when every always-enabled action has an
//! internal transition, a fair schedule staying in `Q` exists: tour all of
//! `Q` repeatedly, splicing in each always-enabled action's internal
//! transition.)
//!
//! # Pipeline
//!
//! The region's internal adjacency is built as a CSR graph (region-local
//! `u32` nodes, one `offsets` array plus a flat `edges` array) with the same
//! two-phase count/prefix-sum/fill scheme as the state space itself, so the
//! layout is bit-identical for every thread count. The deadlock/escape sweep
//! rides along with the counting pass.
//!
//! Before any SCC work, a **peeling fast path** computes the greatest set of
//! region states from which a computation can stay in the region *forever*:
//! repeatedly remove (via reverse edges and internal out-degree counters,
//! Kahn-style, `O(V+E)`) every state all of whose internal successors are
//! already removed. A state survives iff it starts an infinite
//! region-confined path, so every cycle — and hence every nontrivial SCC —
//! lies wholly inside the residual. In the common converging case the
//! residual is empty and Tarjan never runs; otherwise Tarjan runs on the
//! residual subgraph only. (Note the residual is *not* "states that cannot
//! reach `S`": a cycle that could exit to `S` but need not is still a legal
//! unfair divergence, and the peel keeps it.)
//!
//! Every thread count reports the same witness: the lowest-id event wins,
//! exactly as in a sequential scan.

use nonmask_obs::{Event, Journal};
use nonmask_program::{ActionId, Predicate, Program, State};

use crate::cache::Bitset;
use crate::error::{payload_string, CheckError};
use crate::options::{chunk_ranges, run_chunks, CheckOptions};
use crate::space::{offsets_from_counts, StateId, StateSpace};

/// The daemon assumption under which convergence is checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fairness {
    /// No fairness: every region cycle is a legal computation. Programs
    /// converging under this assumption satisfy Section 8's remark that
    /// "the fairness requirement … is often unnecessary".
    Unfair,
    /// Weak fairness over actions, the paper's computation model
    /// (Section 2).
    WeaklyFair,
}

impl std::fmt::Display for Fairness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fairness::Unfair => f.write_str("unfair"),
            Fairness::WeaklyFair => f.write_str("weakly-fair"),
        }
    }
}

/// The outcome of a convergence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvergenceResult {
    /// Every computation from `T` reaches `S`.
    Converges,
    /// A maximal finite computation ends outside `S`: `state` is in the
    /// region and no action is enabled there.
    DeadlockOutsideTarget {
        /// The stuck state.
        state: State,
    },
    /// A transition leaves both `S` and `T` — the fault span is not closed,
    /// so the convergence question is ill-posed as stated.
    EscapesFaultSpan {
        /// Region state the transition starts from.
        before: State,
        /// Successor outside `S ∪ T`.
        after: State,
    },
    /// A legal infinite computation stays inside the region forever. The
    /// witness is one strongly connected component it can inhabit.
    Divergence {
        /// States of the witnessing component (or cycle).
        states: Vec<State>,
        /// The fairness assumption under which the witness is legal.
        fairness: Fairness,
    },
}

impl ConvergenceResult {
    /// Whether the check succeeded.
    pub fn converges(&self) -> bool {
        matches!(self, ConvergenceResult::Converges)
    }
}

/// Size counters for one convergence pass, produced by
/// [`check_convergence_stats`] and surfaced in journals as
/// [`Event::Wave`]: how much of the region the peeling fast path resolved
/// before any SCC analysis, and how many components Tarjan then examined.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConvergenceStats {
    /// States in the region `T ∧ ¬S`.
    pub region_states: u64,
    /// Region states removed by the Kahn-style peel (all of them, in the
    /// common converging case).
    pub peeled_states: u64,
    /// Strongly connected components found in the residual subgraph.
    pub sccs_found: u64,
}

/// Check that every computation of `program` from `from` (the fault span
/// `T`) reaches `to` (the invariant `S`), under the given fairness
/// assumption.
///
/// `Converges` under [`Fairness::Unfair`] implies `Converges` under
/// [`Fairness::WeaklyFair`]; divergence witnesses found under
/// `WeaklyFair` are also divergences under `Unfair`.
///
/// # Errors
///
/// [`CheckError::WorkerFailed`] if a predicate panics mid-scan.
pub fn check_convergence(
    space: &StateSpace,
    program: &Program,
    from: &Predicate,
    to: &Predicate,
    fairness: Fairness,
) -> Result<ConvergenceResult, CheckError> {
    check_convergence_opts(space, program, from, to, fairness, CheckOptions::default())
}

/// [`check_convergence`] with explicit [`CheckOptions`]. The result is
/// identical for every thread count.
///
/// # Errors
///
/// [`CheckError::WorkerFailed`] if a predicate panics mid-scan.
pub fn check_convergence_opts(
    space: &StateSpace,
    program: &Program,
    from: &Predicate,
    to: &Predicate,
    fairness: Fairness,
    opts: CheckOptions,
) -> Result<ConvergenceResult, CheckError> {
    Ok(check_convergence_stats(
        space,
        program,
        from,
        to,
        fairness,
        opts,
        &Journal::disabled(),
    )?
    .0)
}

/// [`check_convergence_opts`] that additionally reports
/// [`ConvergenceStats`] and journals the pass: one [`Event::Wave`] per
/// invocation with the region, peel, and SCC sizes.
///
/// # Errors
///
/// [`CheckError::WorkerFailed`] if a predicate panics mid-scan.
#[allow(clippy::too_many_arguments)]
pub fn check_convergence_stats(
    space: &StateSpace,
    program: &Program,
    from: &Predicate,
    to: &Predicate,
    fairness: Fairness,
    opts: CheckOptions,
    journal: &Journal,
) -> Result<(ConvergenceResult, ConvergenceStats), CheckError> {
    let from_bits = Bitset::for_predicate(space, from, opts)?;
    let to_bits = Bitset::for_predicate(space, to, opts)?;
    let (result, stats) =
        check_convergence_bits_stats(space, program, &from_bits, &to_bits, fairness, opts)?;
    journal.emit_with(|| Event::Wave {
        fairness: fairness.to_string(),
        region: stats.region_states,
        peeled: stats.peeled_states,
        sccs: stats.sccs_found,
    });
    Ok((result, stats))
}

/// [`check_convergence`] over precomputed predicate caches (evaluations of
/// `from` and `to` over exactly this `space`). Lets callers share the
/// caches across the closure, convergence, and bounds passes.
///
/// # Errors
///
/// [`CheckError::WorkerFailed`] if a worker panics mid-scan.
pub fn check_convergence_bits(
    space: &StateSpace,
    program: &Program,
    from_bits: &Bitset,
    to_bits: &Bitset,
    fairness: Fairness,
    opts: CheckOptions,
) -> Result<ConvergenceResult, CheckError> {
    Ok(check_convergence_bits_stats(space, program, from_bits, to_bits, fairness, opts)?.0)
}

/// [`check_convergence_bits`] plus the pass's [`ConvergenceStats`].
///
/// # Errors
///
/// [`CheckError::WorkerFailed`] if an action body panics while edges are
/// being materialized.
pub fn check_convergence_bits_stats(
    space: &StateSpace,
    program: &Program,
    from_bits: &Bitset,
    to_bits: &Bitset,
    fairness: Fairness,
    opts: CheckOptions,
) -> Result<(ConvergenceResult, ConvergenceStats), CheckError> {
    let mut stats = ConvergenceStats::default();
    // Region: T ∧ ¬S, with a dense local numbering.
    let (region, local) = build_region(space, from_bits, to_bits, opts)?;
    stats.region_states = region.len() as u64;
    if region.is_empty() {
        return Ok((ConvergenceResult::Converges, stats));
    }

    // Counting pass: deadlocks, escapes, and per-state internal edge counts,
    // in parallel chunks over the region. Each worker reports its first
    // (lowest-index) event; the minimum over workers is the sequential
    // witness.
    enum RegionEvent {
        Deadlock,
        Escape { after: StateId },
    }
    let n = region.len();
    let workers = opts.workers_for(n);
    let region_ref = &region;
    let chunks = run_chunks(n, workers, move |range| {
        let mut counts: Vec<u32> = Vec::with_capacity(range.len());
        for li in range {
            let id = region_ref[li];
            let succs = space.successor_ids(id);
            if succs.is_empty() {
                return (counts, Some((li, RegionEvent::Deadlock)));
            }
            let mut c = 0u32;
            for &t in succs {
                if to_bits.contains(t) {
                    continue; // exits into S
                }
                if !from_bits.contains(t) {
                    return (counts, Some((li, RegionEvent::Escape { after: t })));
                }
                c += 1;
            }
            counts.push(c);
        }
        (counts, None)
    })?;
    let mut counts: Vec<u32> = Vec::with_capacity(n);
    let mut first_event: Option<(usize, RegionEvent)> = None;
    for (chunk_counts, event) in chunks {
        counts.extend(chunk_counts);
        if let Some((li, e)) = event {
            if first_event.as_ref().is_none_or(|(fli, _)| li < *fli) {
                first_event = Some((li, e));
            }
        }
    }
    if let Some((li, event)) = first_event {
        let before = space.state(region[li]);
        let result = match event {
            RegionEvent::Deadlock => ConvergenceResult::DeadlockOutsideTarget { state: before },
            RegionEvent::Escape { after } => ConvergenceResult::EscapesFaultSpan {
                before,
                after: space.state(after),
            },
        };
        return Ok((result, stats));
    }

    // Internal region edges can't outnumber the space's transitions, which
    // fit u32 offsets by construction.
    let offsets =
        offsets_from_counts(&counts).expect("region edges bounded by the space's transitions");
    let m = *offsets.last().expect("offsets never empty") as usize;

    // Fill pass: region-local CSR edges, each chunk writing its disjoint
    // sub-slice (same chunk boundaries as the counting pass).
    let local_ref = &local;
    let mut edges = vec![0u32; m];
    let fill = |range: std::ops::Range<usize>, out: &mut [u32]| {
        let mut k = 0usize;
        for li in range {
            for &t in space.successor_ids(region_ref[li]) {
                if !to_bits.contains(t) {
                    out[k] = local_ref[t.index()];
                    k += 1;
                }
            }
        }
        debug_assert_eq!(k, out.len());
    };
    if workers <= 1 {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fill(0..n, &mut edges))).map_err(
            |p| CheckError::WorkerFailed {
                payload: payload_string(p),
            },
        )?;
    } else {
        let fill = &fill;
        let mut rest: &mut [u32] = &mut edges;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for r in chunk_ranges(n, workers) {
                let take = (offsets[r.end] - offsets[r.start]) as usize;
                let (chunk, tail) = std::mem::take(&mut rest).split_at_mut(take);
                rest = tail;
                handles.push(scope.spawn(move || fill(r, chunk)));
            }
            // Join *every* handle before acting on any failure so the scope
            // never re-raises an unjoined panic.
            let mut failure = None;
            for h in handles {
                if let Err(p) = h.join() {
                    if failure.is_none() {
                        failure = Some(payload_string(p));
                    }
                }
            }
            match failure {
                Some(payload) => Err(CheckError::WorkerFailed { payload }),
                None => Ok(()),
            }
        })?;
    }
    let row = |u: u32| -> &[u32] {
        let (lo, hi) = (
            offsets[u as usize] as usize,
            offsets[u as usize + 1] as usize,
        );
        &edges[lo..hi]
    };

    // Peeling fast path: remove every state whose internal successors are
    // all removed; what survives (`outdeg > 0` at the fixpoint) is exactly
    // the set of states with an infinite region-confined path. Empty in the
    // common converging case — then no SCC analysis is needed at all.
    let (rev_offsets, rev_edges) = reverse_csr(&offsets, &edges, n);
    let mut outdeg = counts;
    let mut worklist: Vec<u32> = (0..n as u32).filter(|&u| outdeg[u as usize] == 0).collect();
    let mut removed = worklist.len();
    while let Some(u) = worklist.pop() {
        let (lo, hi) = (
            rev_offsets[u as usize] as usize,
            rev_offsets[u as usize + 1] as usize,
        );
        for &p in &rev_edges[lo..hi] {
            outdeg[p as usize] -= 1;
            if outdeg[p as usize] == 0 {
                worklist.push(p);
                removed += 1;
            }
        }
    }
    stats.peeled_states = removed as u64;
    if removed == n {
        return Ok((ConvergenceResult::Converges, stats));
    }
    let mut alive = Bitset::zeros(n);
    for (u, &d) in outdeg.iter().enumerate() {
        if d > 0 {
            alive.set(u);
        }
    }

    // Strongly connected components of the residual subgraph (iterative
    // Tarjan), keeping only components that contain at least one internal
    // edge (a residual chain state feeding a cycle is a singleton SCC and
    // cannot itself host one).
    let sccs = tarjan_sccs_csr(&offsets, &edges, &alive);
    stats.sccs_found = sccs.len() as u64;
    for scc in &sccs {
        let mut scc_bits = Bitset::zeros(n);
        for &u in scc {
            scc_bits.set(u as usize);
        }
        let has_internal_edge = scc
            .iter()
            .any(|&u| row(u).iter().any(|&v| scc_bits.get(v as usize)));
        if !has_internal_edge {
            continue;
        }
        let divergent = match fairness {
            Fairness::Unfair => true,
            Fairness::WeaklyFair => {
                fair_admissible(space, program, &region, &local, scc, &scc_bits)
            }
        };
        if divergent {
            let result = ConvergenceResult::Divergence {
                states: scc
                    .iter()
                    .map(|&u| space.state(region[u as usize]))
                    .collect(),
                fairness,
            };
            return Ok((result, stats));
        }
    }

    Ok((ConvergenceResult::Converges, stats))
}

/// The region `from ∧ ¬to` as a sorted id list plus the inverse (dense
/// local) numbering, built in parallel chunks.
pub(crate) fn build_region(
    space: &StateSpace,
    from_bits: &Bitset,
    to_bits: &Bitset,
    opts: CheckOptions,
) -> Result<(Vec<StateId>, Vec<u32>), CheckError> {
    let workers = opts.workers_for(space.len());
    let region: Vec<StateId> = run_chunks(space.len(), workers, |range| {
        range
            .filter(|&i| from_bits.get(i) && !to_bits.get(i))
            .map(StateId::from_index)
            .collect::<Vec<StateId>>()
    })?
    .into_iter()
    .flatten()
    .collect();
    let mut local = vec![u32::MAX; space.len()];
    for (li, id) in region.iter().enumerate() {
        local[id.index()] = li as u32;
    }
    Ok((region, local))
}

/// Transpose a CSR graph over `n` nodes: `(rev_offsets, rev_edges)` with
/// the predecessors of `u` at `rev_edges[rev_offsets[u]..rev_offsets[u+1]]`.
fn reverse_csr(offsets: &[u32], edges: &[u32], n: usize) -> (Vec<u32>, Vec<u32>) {
    let mut rev_counts = vec![0u32; n];
    for &t in edges {
        rev_counts[t as usize] += 1;
    }
    let rev_offsets = offsets_from_counts(&rev_counts).expect("transpose has the same edge count");
    let mut cursor: Vec<u32> = rev_offsets[..n].to_vec();
    let mut rev_edges = vec![0u32; edges.len()];
    for u in 0..n {
        let (lo, hi) = (offsets[u] as usize, offsets[u + 1] as usize);
        for &t in &edges[lo..hi] {
            rev_edges[cursor[t as usize] as usize] = u as u32;
            cursor[t as usize] += 1;
        }
    }
    (rev_offsets, rev_edges)
}

/// Whether the SCC admits a weakly fair infinite computation: every action
/// enabled at all of its states must have a transition staying inside it.
///
/// Enabledness is read off the transition table (an action is enabled at a
/// state exactly when the state has a successor pair for it), so no guard
/// is re-evaluated here. Membership tests reuse the dense `local` numbering
/// from [`build_region`] plus the per-SCC bitset — O(1) per transition, no
/// binary searches.
fn fair_admissible(
    space: &StateSpace,
    program: &Program,
    region: &[StateId],
    local: &[u32],
    scc: &[u32],
    scc_bits: &Bitset,
) -> bool {
    let in_scc = |sid: StateId| -> bool {
        let li = local[sid.index()];
        li != u32::MAX && scc_bits.get(li as usize)
    };

    'actions: for aid in program.action_ids() {
        let mut has_internal = false;
        for &u in scc {
            let sid = region[u as usize];
            let mut enabled = false;
            for (a, t) in space.successors(sid) {
                if a != aid {
                    continue;
                }
                enabled = true;
                if !has_internal && in_scc(t) {
                    has_internal = true;
                }
            }
            if !enabled {
                // Not continuously enabled on a tour of the SCC: imposes no
                // fairness obligation here.
                continue 'actions;
            }
        }
        if !has_internal {
            // `aid` is enabled everywhere in the SCC but every execution
            // leaves it: a fair computation cannot stay forever.
            return false;
        }
    }
    true
}

/// One step of a replayable witness path produced by [`shortest_path_to`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    /// The action whose execution reached [`PathStep::state`] from the
    /// previous step's state; `None` at the start of the path.
    pub action: Option<ActionId>,
    /// The state reached.
    pub state: State,
}

/// A breadth-first witness path: from some state satisfying `from` to the
/// first state in `targets`, following program transitions. Used to turn a
/// divergence witness (the SCC states of
/// [`ConvergenceResult::Divergence`]) into a full counterexample
/// computation a reader can replay: each step records the [`ActionId`]
/// executed, so `program.action(a).successor(&prev)` reproduces it.
///
/// Returns `Ok(None)` when no target is reachable from `from` (then the
/// divergence is only reachable via fault actions, not program steps).
///
/// # Errors
///
/// [`CheckError::WorkerFailed`] if `from` panics at some state.
pub fn shortest_path_to(
    space: &StateSpace,
    from: &Predicate,
    targets: &[State],
) -> Result<Option<Vec<PathStep>>, CheckError> {
    const NO_PARENT: u32 = u32::MAX;
    let mut target_ids = Bitset::zeros(space.len());
    for t in targets {
        if let Some(id) = space.id_of(t) {
            target_ids.set(id.index());
        }
    }
    let mut parent = vec![NO_PARENT; space.len()];
    let mut via = vec![ActionId::from_index(0); space.len()];
    let mut seen = Bitset::for_predicate(space, from, CheckOptions::default())?;
    let mut queue: std::collections::VecDeque<StateId> =
        seen.iter_ones().map(StateId::from_index).collect();
    while let Some(id) = queue.pop_front() {
        if target_ids.contains(id) {
            // Rebuild the path; the start state (no parent) carries no
            // action.
            let mut path = Vec::new();
            let mut cur = id;
            loop {
                let p = parent[cur.index()];
                path.push(PathStep {
                    action: (p != NO_PARENT).then(|| via[cur.index()]),
                    state: space.state(cur),
                });
                if p == NO_PARENT {
                    break;
                }
                cur = StateId::from_index(p as usize);
            }
            path.reverse();
            return Ok(Some(path));
        }
        for (a, next) in space.successors(id) {
            if !seen.contains(next) {
                seen.set(next.index());
                parent[next.index()] = id.index() as u32;
                via[next.index()] = a;
                queue.push_back(next);
            }
        }
    }
    Ok(None)
}

/// Iterative Tarjan SCC over a CSR graph, restricted to the `alive`
/// sub-nodes (both roots and traversed edges). Returns each component as a
/// sorted vector of node indices. (Shared with the frontier convergence
/// mode, which runs it over the residual subgraph only.)
pub(crate) fn tarjan_sccs_csr(offsets: &[u32], edges: &[u32], alive: &Bitset) -> Vec<Vec<u32>> {
    let n = offsets.len() - 1;
    let row = |u: u32| -> &[u32] {
        let (lo, hi) = (
            offsets[u as usize] as usize,
            offsets[u as usize + 1] as usize,
        );
        &edges[lo..hi]
    };
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs = Vec::new();

    // Explicit DFS stack: (node, next child position).
    let mut call: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != u32::MAX || !alive.get(root as usize) {
            continue;
        }
        call.push((root, 0));
        index[root as usize] = next_index;
        low[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci < row(v).len() {
                let w = row(v)[*ci];
                *ci += 1;
                if !alive.get(w as usize) {
                    continue;
                }
                if index[w as usize] == u32::MAX {
                    index[w as usize] = next_index;
                    low[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            } else {
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_program::{Domain, Program};

    fn pred_eq(p: &Program, name: &str, var: &str, value: i64) -> Predicate {
        let v = p.var_by_name(var).unwrap();
        Predicate::new(name, [v], move |s| s.get(v) == value)
    }

    #[test]
    fn converging_countdown() {
        let mut b = Program::builder("down");
        let x = b.var("x", Domain::range(0, 5));
        b.convergence_action(
            "dec",
            [x],
            [x],
            move |s| s.get(x) > 0,
            move |s| {
                let v = s.get(x);
                s.set(x, v - 1);
            },
        );
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        let s = pred_eq(&p, "x=0", "x", 0);
        for fairness in [Fairness::Unfair, Fairness::WeaklyFair] {
            assert!(
                check_convergence(&space, &p, &Predicate::always_true(), &s, fairness)
                    .unwrap()
                    .converges()
            );
        }
    }

    #[test]
    fn deadlock_outside_target_detected() {
        // x=2 is absorbing with no enabled action, and not the target.
        let mut b = Program::builder("stuck");
        let x = b.var("x", Domain::range(0, 2));
        b.convergence_action("go", [x], [x], move |s| s.get(x) == 1, move |s| s.set(x, 0));
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        let s = pred_eq(&p, "x=0", "x", 0);
        let r = check_convergence(
            &space,
            &p,
            &Predicate::always_true(),
            &s,
            Fairness::WeaklyFair,
        )
        .unwrap();
        assert!(
            matches!(r, ConvergenceResult::DeadlockOutsideTarget { ref state } if state.slots() == [2])
        );
    }

    #[test]
    fn unfair_cycle_detected_but_fairness_rescues() {
        // Two actions at every ¬S state: `spin` toggles y and stays in the
        // region; `exit` jumps to the target. Unfair daemons can spin
        // forever; a weakly fair daemon must eventually run `exit`.
        //
        // This is also the soundness test for the peeling fast path: every
        // region state here *can* reach S (via `exit`), so a
        // "cannot-reach-S" residual would be empty and the unfair
        // divergence missed. The peel keeps the spin cycle alive.
        let mut b = Program::builder("spin");
        let x = b.var("x", Domain::Bool);
        let y = b.var("y", Domain::Bool);
        b.closure_action(
            "spin",
            [x, y],
            [y],
            move |s| !s.get_bool(x),
            move |s| s.toggle(y),
        );
        b.convergence_action(
            "exit",
            [x],
            [x],
            move |s| !s.get_bool(x),
            move |s| s.set_bool(x, true),
        );
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        let s = Predicate::new("x", [x], move |st| st.get_bool(x));

        let unfair =
            check_convergence(&space, &p, &Predicate::always_true(), &s, Fairness::Unfair).unwrap();
        assert!(
            matches!(unfair, ConvergenceResult::Divergence { ref states, fairness: Fairness::Unfair } if states.len() == 2)
        );

        let fair = check_convergence(
            &space,
            &p,
            &Predicate::always_true(),
            &s,
            Fairness::WeaklyFair,
        )
        .unwrap();
        assert!(fair.converges(), "weak fairness forces `exit`: {fair:?}");
    }

    #[test]
    fn fair_divergence_detected() {
        // The only enabled action in the region cycles within it: even fair
        // computations never reach the target.
        let mut b = Program::builder("livelock");
        let y = b.var("y", Domain::Bool);
        let x = b.var("x", Domain::Bool);
        b.closure_action(
            "toggle",
            [x, y],
            [y],
            move |s| !s.get_bool(x),
            move |s| s.toggle(y),
        );
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        let s = Predicate::new("x", [x], move |st| st.get_bool(x));
        let r = check_convergence(
            &space,
            &p,
            &Predicate::always_true(),
            &s,
            Fairness::WeaklyFair,
        )
        .unwrap();
        assert!(
            matches!(
                r,
                ConvergenceResult::Divergence {
                    fairness: Fairness::WeaklyFair,
                    ..
                }
            ),
            "got {r:?}"
        );
    }

    #[test]
    fn self_loop_divergence_under_unfair_only() {
        // `stay` leaves the state unchanged (self-loop); `exit` leaves the
        // region. Unfair: stay forever. Fair: exit eventually runs.
        let mut b = Program::builder("selfloop");
        let x = b.var("x", Domain::Bool);
        b.closure_action("stay", [x], [x], move |s| !s.get_bool(x), move |_s| {});
        b.convergence_action(
            "exit",
            [x],
            [x],
            move |s| !s.get_bool(x),
            move |s| s.set_bool(x, true),
        );
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        let s = Predicate::new("x", [x], move |st| st.get_bool(x));

        let unfair =
            check_convergence(&space, &p, &Predicate::always_true(), &s, Fairness::Unfair).unwrap();
        assert!(
            matches!(unfair, ConvergenceResult::Divergence { ref states, .. } if states.len() == 1)
        );
        assert!(check_convergence(
            &space,
            &p,
            &Predicate::always_true(),
            &s,
            Fairness::WeaklyFair
        )
        .unwrap()
        .converges());
    }

    #[test]
    fn escape_from_fault_span_detected() {
        // T = x<=1, but the region action jumps to x=2 ∉ T ∪ S.
        let mut b = Program::builder("escape");
        let x = b.var("x", Domain::range(0, 2));
        b.closure_action(
            "jump",
            [x],
            [x],
            move |s| s.get(x) == 1,
            move |s| s.set(x, 2),
        );
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        let s = pred_eq(&p, "x=0", "x", 0);
        let x_id = p.var_by_name("x").unwrap();
        let t = Predicate::new("x<=1", [x_id], move |st| st.get(x_id) <= 1);
        let r = check_convergence(&space, &p, &t, &s, Fairness::WeaklyFair).unwrap();
        assert!(
            matches!(r, ConvergenceResult::EscapesFaultSpan { .. }),
            "got {r:?}"
        );
    }

    #[test]
    fn empty_region_converges_trivially() {
        let mut b = Program::builder("trivial");
        let x = b.var("x", Domain::Bool);
        let _ = x;
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        let r = check_convergence(
            &space,
            &p,
            &Predicate::always_true(),
            &Predicate::always_true(),
            Fairness::WeaklyFair,
        )
        .unwrap();
        assert!(r.converges());
    }

    #[test]
    fn region_limited_to_fault_span() {
        // Outside T there is a livelock, but convergence is only claimed
        // from T, so it must not be reported.
        let mut b = Program::builder("scoped");
        let x = b.var("x", Domain::range(0, 2));
        // At x=2 (outside T=x<=1): spin forever via self-loop.
        b.closure_action("spin", [x], [x], move |s| s.get(x) == 2, move |_s| {});
        // At x=1: move to 0.
        b.convergence_action(
            "fix",
            [x],
            [x],
            move |s| s.get(x) == 1,
            move |s| s.set(x, 0),
        );
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        let s = pred_eq(&p, "x=0", "x", 0);
        let t = Predicate::new("x<=1", [p.var_by_name("x").unwrap()], {
            let x = p.var_by_name("x").unwrap();
            move |st| st.get(x) <= 1
        });
        let r = check_convergence(&space, &p, &t, &s, Fairness::Unfair).unwrap();
        assert!(r.converges(), "got {r:?}");
    }

    #[test]
    fn multi_threaded_matches_single_threaded() {
        // A 4096-state countdown (above the parallel threshold): every
        // outcome field must be bit-identical across worker counts.
        let mut b = Program::builder("mt");
        let x = b.var("x", Domain::range(0, 4095));
        b.convergence_action(
            "dec",
            [x],
            [x],
            move |s| s.get(x) > 1,
            move |s| {
                let v = s.get(x);
                s.set(x, v - 1);
            },
        );
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        let s = pred_eq(&p, "x=0", "x", 0);
        // x=1 deadlocks outside the target: a witness exists, and all
        // thread counts must agree on it.
        let serial = check_convergence_opts(
            &space,
            &p,
            &Predicate::always_true(),
            &s,
            Fairness::WeaklyFair,
            CheckOptions::serial(),
        )
        .unwrap();
        for threads in [2, 4, 8] {
            let par = check_convergence_opts(
                &space,
                &p,
                &Predicate::always_true(),
                &s,
                Fairness::WeaklyFair,
                CheckOptions::default().threads(threads),
            )
            .unwrap();
            assert_eq!(serial, par, "threads={threads}");
        }
        assert!(
            matches!(serial, ConvergenceResult::DeadlockOutsideTarget { ref state } if state.slots() == [1])
        );
    }

    #[test]
    fn divergence_witness_is_thread_count_invariant() {
        // A large region full of internal 2-cycles (spin on y) plus exits:
        // the peel keeps every cycle and each thread count must report the
        // identical witness SCC.
        let mut b = Program::builder("mt-div");
        let x = b.var("x", Domain::range(0, 4095));
        let y = b.var("y", Domain::Bool);
        b.closure_action(
            "spin",
            [x, y],
            [y],
            move |s| s.get(x) > 0,
            move |s| s.toggle(y),
        );
        b.convergence_action(
            "dec",
            [x],
            [x],
            move |s| s.get(x) > 0,
            move |s| {
                let v = s.get(x);
                s.set(x, v - 1);
            },
        );
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        let s = pred_eq(&p, "x=0", "x", 0);
        let serial = check_convergence_opts(
            &space,
            &p,
            &Predicate::always_true(),
            &s,
            Fairness::Unfair,
            CheckOptions::serial(),
        )
        .unwrap();
        assert!(
            matches!(serial, ConvergenceResult::Divergence { ref states, .. } if states.len() == 2),
            "got {serial:?}"
        );
        for threads in [2, 8] {
            let par = check_convergence_opts(
                &space,
                &p,
                &Predicate::always_true(),
                &s,
                Fairness::Unfair,
                CheckOptions::default().threads(threads),
            )
            .unwrap();
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    fn csr_of(adj: &[Vec<u32>]) -> (Vec<u32>, Vec<u32>) {
        let counts: Vec<u32> = adj.iter().map(|r| r.len() as u32).collect();
        let offsets = offsets_from_counts(&counts).unwrap();
        let edges: Vec<u32> = adj.iter().flatten().copied().collect();
        (offsets, edges)
    }

    #[test]
    fn tarjan_handles_multiple_components() {
        // Direct unit test of the SCC helper.
        // 0 -> 1 -> 0 (SCC {0,1}); 2 -> 3 (two singletons); 4 self-loop.
        let adj = vec![vec![1], vec![0], vec![3], vec![], vec![4]];
        let (offsets, edges) = csr_of(&adj);
        let mut sccs = tarjan_sccs_csr(&offsets, &edges, &Bitset::ones(adj.len()));
        sccs.sort();
        assert!(sccs.contains(&vec![0, 1]));
        assert!(sccs.contains(&vec![2]));
        assert!(sccs.contains(&vec![3]));
        assert!(sccs.contains(&vec![4]));
        assert_eq!(sccs.len(), 4);
    }

    #[test]
    fn tarjan_respects_alive_filter() {
        // Same graph, but with node 1 peeled: the {0,1} cycle disappears
        // and 0 becomes a singleton.
        let adj = vec![vec![1], vec![0], vec![3], vec![], vec![4]];
        let (offsets, edges) = csr_of(&adj);
        let mut alive = Bitset::ones(adj.len());
        let mut without_1 = Bitset::zeros(adj.len());
        for u in [0usize, 2, 3, 4] {
            without_1.set(u);
        }
        std::mem::swap(&mut alive, &mut without_1);
        let sccs = tarjan_sccs_csr(&offsets, &edges, &alive);
        assert!(sccs.contains(&vec![0]));
        assert!(!sccs.iter().any(|c| c.contains(&1)));
    }

    #[test]
    fn reverse_csr_transposes() {
        let adj = vec![vec![1, 2], vec![2], vec![0, 2]];
        let (offsets, edges) = csr_of(&adj);
        let (ro, re) = reverse_csr(&offsets, &edges, 3);
        let preds = |u: usize| -> Vec<u32> { re[ro[u] as usize..ro[u + 1] as usize].to_vec() };
        assert_eq!(preds(0), vec![2]);
        assert_eq!(preds(1), vec![0]);
        let mut p2 = preds(2);
        p2.sort_unstable();
        assert_eq!(p2, vec![0, 1, 2]);
    }

    #[test]
    fn fairness_display() {
        assert_eq!(Fairness::Unfair.to_string(), "unfair");
        assert_eq!(Fairness::WeaklyFair.to_string(), "weakly-fair");
    }

    #[test]
    fn stats_reported_and_wave_journaled() {
        // The countdown peels its whole region; the stats and the Wave
        // event must agree on the sizes.
        let mut b = Program::builder("down");
        let x = b.var("x", Domain::range(0, 5));
        b.convergence_action(
            "dec",
            [x],
            [x],
            move |s| s.get(x) > 0,
            move |s| {
                let v = s.get(x);
                s.set(x, v - 1);
            },
        );
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        let s = pred_eq(&p, "x=0", "x", 0);
        let (journal, buffer) = Journal::memory();
        let (result, stats) = check_convergence_stats(
            &space,
            &p,
            &Predicate::always_true(),
            &s,
            Fairness::WeaklyFair,
            CheckOptions::default(),
            &journal,
        )
        .unwrap();
        assert!(result.converges());
        assert_eq!(stats.region_states, 5);
        assert_eq!(stats.peeled_states, 5);
        assert_eq!(stats.sccs_found, 0);
        journal.flush();
        let text = buffer.contents();
        let record = Event::parse_line(text.trim()).unwrap();
        assert_eq!(
            record.event,
            Event::Wave {
                fairness: "weakly-fair".to_string(),
                region: 5,
                peeled: 5,
                sccs: 0,
            }
        );
    }
}
