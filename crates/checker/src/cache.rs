//! Predicate-evaluation caches: one bit per state.
//!
//! Closure, convergence, and bounds checking all repeatedly ask "does
//! predicate P hold at state s?" for the same handful of predicates (`S`,
//! `T`, each constraint). A [`Bitset`] evaluates the predicate **once per
//! state** — in parallel, over word-aligned chunks — and every later pass
//! answers membership with a single bit test. Compound predicates like
//! Theorem 3's "T ∧ lower constraints ∧ ¬S" are composed with bitwise
//! [`and`](Bitset::and)/[`not`](Bitset::not) instead of re-evaluating the
//! conjuncts.

use nonmask_program::Predicate;

use crate::error::CheckError;
use crate::options::{run_chunks, CheckOptions};
use crate::space::{SpaceIndex, StateId, StateSpace};

/// A fixed-length set of state indices, one bit per state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// The empty set over `len` states.
    pub fn zeros(len: usize) -> Self {
        Bitset {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The full set over `len` states.
    pub fn ones(len: usize) -> Self {
        let mut b = Bitset {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        b.mask_tail();
        b
    }

    /// Build from a membership function, evaluating `f` once per index.
    ///
    /// Workers own disjoint *word-aligned* chunks (multiples of 64 bits),
    /// so no two threads touch the same word and the result is identical
    /// for every worker count.
    ///
    /// # Errors
    ///
    /// [`CheckError::WorkerFailed`] if `f` panics.
    pub fn from_fn<F>(len: usize, opts: CheckOptions, f: F) -> Result<Self, CheckError>
    where
        F: Fn(usize) -> bool + Sync,
    {
        let word_count = len.div_ceil(64);
        let workers = opts.workers_for(len);
        let words: Vec<u64> = run_chunks(word_count, workers, |word_range| {
            word_range
                .map(|wi| {
                    let mut word = 0u64;
                    let base = wi * 64;
                    for bit in 0..64usize.min(len - base.min(len)) {
                        if f(base + bit) {
                            word |= 1 << bit;
                        }
                    }
                    word
                })
                .collect::<Vec<u64>>()
        })?
        .into_iter()
        .flatten()
        .collect();
        Ok(Bitset { words, len })
    }

    /// Evaluate `pred` once at every state of `space`, decoding each state
    /// into a per-worker scratch buffer (no per-state allocation).
    ///
    /// # Errors
    ///
    /// [`CheckError::WorkerFailed`] if `pred` panics.
    pub fn for_predicate(
        space: &StateSpace,
        pred: &Predicate,
        opts: CheckOptions,
    ) -> Result<Self, CheckError> {
        Self::for_predicate_index(space.index(), pred, opts)
    }

    /// [`for_predicate`](Bitset::for_predicate) from a bare [`SpaceIndex`]:
    /// predicate caches need only the id↔state bijection, so out-of-core
    /// passes build them without ever materializing a CSR.
    ///
    /// # Errors
    ///
    /// [`CheckError::WorkerFailed`] if `pred` panics.
    pub fn for_predicate_index(
        index: &SpaceIndex,
        pred: &Predicate,
        opts: CheckOptions,
    ) -> Result<Self, CheckError> {
        let len = index.len();
        let word_count = len.div_ceil(64);
        let workers = opts.workers_for(len);
        let words: Vec<u64> = run_chunks(word_count, workers, |word_range| {
            let mut scratch = index.scratch_state();
            word_range
                .map(|wi| {
                    let mut word = 0u64;
                    let base = wi * 64;
                    for bit in 0..64usize.min(len - base.min(len)) {
                        index.decode_state(StateId::from_index(base + bit), &mut scratch);
                        if pred.holds(&scratch) {
                            word |= 1 << bit;
                        }
                    }
                    word
                })
                .collect::<Vec<u64>>()
        })?
        .into_iter()
        .flatten()
        .collect();
        Ok(Bitset { words, len })
    }

    /// Whether state index `i` is in the set.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Whether state `id` is in the set.
    #[inline]
    pub fn contains(&self, id: StateId) -> bool {
        self.get(id.index())
    }

    /// Insert state index `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Number of states the set ranges over (not the member count).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set ranges over zero states.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of member states.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate the member indices in ascending order.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            words: &self.words,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Set intersection (conjunction of the cached predicates).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and(&self, other: &Bitset) -> Bitset {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        Bitset {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// Set union (disjunction of the cached predicates).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn or(&self, other: &Bitset) -> Bitset {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        Bitset {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
            len: self.len,
        }
    }

    /// Set complement (negation of the cached predicate).
    pub fn not(&self) -> Bitset {
        let mut b = Bitset {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        b.mask_tail();
        b
    }

    /// OR `delta` words into the set starting at word index `word_start`.
    /// The frontier pass merges per-segment delta windows with this; OR is
    /// commutative and associative, so overlapping boundary words from
    /// adjacent segments merge to the same result in any order.
    pub(crate) fn or_words(&mut self, word_start: usize, delta: &[u64]) {
        for (w, &d) in self.words[word_start..word_start + delta.len()]
            .iter_mut()
            .zip(delta)
        {
            *w |= d;
        }
        self.mask_tail();
    }

    /// Zero the bits beyond `len` so `count_ones`/`not` stay exact.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// Ascending iterator over the member indices of a [`Bitset`], produced by
/// [`Bitset::iter_ones`]. Skips zero words a whole word at a time.
#[derive(Debug, Clone)]
pub struct OnesIter<'a> {
    words: &'a [u64],
    word_index: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_index += 1;
            self.current = *self.words.get(self.word_index)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_index * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_matches_direct_evaluation() {
        for len in [0, 1, 63, 64, 65, 2048, 5000] {
            let b = Bitset::from_fn(len, CheckOptions::serial(), |i| i % 3 == 0).unwrap();
            let par =
                Bitset::from_fn(len, CheckOptions::default().threads(4), |i| i % 3 == 0).unwrap();
            assert_eq!(b, par, "len={len}");
            for i in 0..len {
                assert_eq!(b.get(i), i % 3 == 0, "len={len} i={i}");
            }
            assert_eq!(b.count_ones(), (0..len).filter(|i| i % 3 == 0).count());
        }
    }

    #[test]
    fn ones_and_zeros() {
        let z = Bitset::zeros(70);
        let o = Bitset::ones(70);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(o.count_ones(), 70);
        assert_eq!(o.len(), 70);
        assert!(!o.is_empty());
        assert!(Bitset::zeros(0).is_empty());
    }

    #[test]
    fn boolean_algebra() {
        let a = Bitset::from_fn(130, CheckOptions::serial(), |i| i % 2 == 0).unwrap();
        let b = Bitset::from_fn(130, CheckOptions::serial(), |i| i % 3 == 0).unwrap();
        let both = a.and(&b);
        let neither = a.not().and(&b.not());
        for i in 0..130 {
            assert_eq!(both.get(i), i % 6 == 0);
            assert_eq!(neither.get(i), i % 2 != 0 && i % 3 != 0);
        }
        // Complement is exact on the tail word.
        assert_eq!(a.count_ones() + a.not().count_ones(), 130);
    }

    #[test]
    fn iter_ones_ascending() {
        for len in [0, 1, 63, 64, 65, 130, 1000] {
            let b = Bitset::from_fn(len, CheckOptions::serial(), |i| i % 7 == 0 || i == len - 1)
                .unwrap();
            let got: Vec<usize> = b.iter_ones().collect();
            let want: Vec<usize> = (0..len).filter(|&i| b.get(i)).collect();
            assert_eq!(got, want, "len={len}");
        }
        assert_eq!(Bitset::zeros(500).iter_ones().count(), 0);
        assert_eq!(Bitset::ones(500).iter_ones().count(), 500);
    }

    #[test]
    fn set_inserts() {
        let mut b = Bitset::zeros(100);
        b.set(0);
        b.set(64);
        b.set(99);
        assert!(b.get(0) && b.get(64) && b.get(99));
        assert!(!b.get(1));
        assert_eq!(b.count_ones(), 3);
    }
}
