//! The step oracle: per-transition validation and per-action constraint
//! attribution for differential conformance checking.
//!
//! The exhaustive checker already knows the complete transition relation of
//! a program (the CSR arrays of [`StateSpace`]). This module turns that
//! knowledge into an *oracle* other execution layers can be checked
//! against, step by step:
//!
//! - [`StepOracle::is_valid_transition`] — is `(before, after)` some
//!   program transition at all, and if so by which action?
//! - [`StepOracle::validate_step`] — did *this specific action* legally
//!   produce `after` from `before` (guard enabled, effect exact)?
//! - [`attribute_constraints`] — which constraints does each action
//!   *establish* (every transition by the action lands inside the
//!   constraint) and *repair* (establish, with at least one transition
//!   entering from a violating state)? This is the checker's ground truth
//!   for "the constraint the checker attributes to that action": a journal
//!   or trace claiming that action `a` repaired constraint `c` conforms
//!   only if `repairs(a, c)` holds here.
//!
//! The oracle works on *states*, not ids, so execution layers can feed it
//! their per-site views directly: an action applied to a site's view (own
//! variables plus cached remote reads) is a program transition of the view
//! state, which is exactly what the CSR relation describes.
//!
//! The oracle does not actually need resident CSR arrays:
//! [`StepOracle::over_index`] builds it from a bare [`SpaceIndex`]
//! (O(variables) memory, no enumeration pass). Domain membership comes
//! from the index's id bijection and transition lookups re-derive
//! successors from the guards, which is bit-equivalent to reading the CSR
//! row — a `(action, succ)` pair exists in a row exactly when the action's
//! guard holds and its effect produces `succ`, and rows list actions in
//! id order, so the lowest-id tie-break is identical.

use nonmask_program::{ActionId, Program, State};

use crate::cache::Bitset;
use crate::error::CheckError;
use crate::options::CheckOptions;
use crate::space::{SpaceIndex, StateSpace};

/// Why a step failed oracle validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepFault {
    /// The pre-state is not in the enumerated space (escaped a domain).
    UnknownBefore,
    /// The post-state is not in the enumerated space.
    UnknownAfter,
    /// No program action produces `after` from `before`.
    NoMatchingAction,
    /// The named action's guard is false at `before`.
    GuardDisabled(ActionId),
    /// The named action is enabled at `before` but its effect yields a
    /// different post-state than the one observed.
    WrongEffect {
        /// The action that fired.
        action: ActionId,
        /// What the action actually produces from `before`.
        expected: State,
    },
}

impl std::fmt::Display for StepFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepFault::UnknownBefore => f.write_str("pre-state escapes the enumerated space"),
            StepFault::UnknownAfter => f.write_str("post-state escapes the enumerated space"),
            StepFault::NoMatchingAction => {
                f.write_str("no program action produces this transition")
            }
            StepFault::GuardDisabled(a) => write!(f, "guard of action {a} is false at pre-state"),
            StepFault::WrongEffect { action, .. } => {
                write!(f, "action {action} produces a different post-state")
            }
        }
    }
}

impl std::error::Error for StepFault {}

/// What backs the oracle's domain-membership and transition lookups.
#[derive(Debug, Clone, Copy)]
enum Backing<'a> {
    /// Resident CSR space: transition lookups read the CSR row.
    Resident(&'a StateSpace),
    /// Bare index: transition lookups re-derive successors from guards.
    Index(&'a SpaceIndex),
}

/// A per-step validity oracle over an enumerated state space.
#[derive(Debug, Clone, Copy)]
pub struct StepOracle<'a> {
    backing: Backing<'a>,
    program: &'a Program,
}

impl<'a> StepOracle<'a> {
    /// Build an oracle for `program` over its enumerated `space`.
    pub fn new(space: &'a StateSpace, program: &'a Program) -> Self {
        StepOracle {
            backing: Backing::Resident(space),
            program,
        }
    }

    /// Build an oracle from a bare [`SpaceIndex`], without materializing
    /// any transitions. Verdicts are bit-identical to an oracle over the
    /// enumerated space (see the module docs); memory is O(variables)
    /// instead of O(states + transitions).
    pub fn over_index(index: &'a SpaceIndex, program: &'a Program) -> Self {
        StepOracle {
            backing: Backing::Index(index),
            program,
        }
    }

    /// The resident state space backing this oracle, if it was built with
    /// [`StepOracle::new`]; `None` for index-backed oracles.
    pub fn space(&self) -> Option<&'a StateSpace> {
        match self.backing {
            Backing::Resident(space) => Some(space),
            Backing::Index(_) => None,
        }
    }

    /// Is `state` inside the enumerated domains?
    fn contains(&self, state: &State) -> bool {
        match self.backing {
            Backing::Resident(space) => space.id_of(state).is_some(),
            Backing::Index(index) => index.id_of(state).is_some(),
        }
    }

    /// Is `(before, after)` a transition of the program? Returns the
    /// lowest-id action that produces it (several actions may share a
    /// statement; ties resolve deterministically).
    ///
    /// # Errors
    ///
    /// [`StepFault::UnknownBefore`] / [`StepFault::UnknownAfter`] when a
    /// state escapes the enumerated domains, [`StepFault::NoMatchingAction`]
    /// when no action's CSR row contains the pair.
    pub fn is_valid_transition(
        &self,
        before: &State,
        after: &State,
    ) -> Result<ActionId, StepFault> {
        match self.backing {
            Backing::Resident(space) => {
                let pre = space.id_of(before).ok_or(StepFault::UnknownBefore)?;
                let post = space.id_of(after).ok_or(StepFault::UnknownAfter)?;
                space
                    .successors(pre)
                    .iter()
                    .find(|&(_, succ)| succ == post)
                    .map(|(action, _)| action)
                    .ok_or(StepFault::NoMatchingAction)
            }
            Backing::Index(index) => {
                if index.id_of(before).is_none() {
                    return Err(StepFault::UnknownBefore);
                }
                if index.id_of(after).is_none() {
                    return Err(StepFault::UnknownAfter);
                }
                self.program
                    .action_ids()
                    .find(|&a| {
                        let act = self.program.action(a);
                        act.enabled(before) && &act.successor(before) == after
                    })
                    .ok_or(StepFault::NoMatchingAction)
            }
        }
    }

    /// Did `action` legally produce `after` from `before`? Stricter than
    /// [`is_valid_transition`](Self::is_valid_transition): the specific
    /// action must be enabled at `before` and its effect must reproduce
    /// `after` exactly.
    ///
    /// # Errors
    ///
    /// [`StepFault::UnknownBefore`] / [`StepFault::UnknownAfter`],
    /// [`StepFault::GuardDisabled`], or [`StepFault::WrongEffect`] with the
    /// post-state the action actually produces.
    pub fn validate_step(
        &self,
        action: ActionId,
        before: &State,
        after: &State,
    ) -> Result<(), StepFault> {
        if !self.contains(before) {
            return Err(StepFault::UnknownBefore);
        }
        if !self.contains(after) {
            return Err(StepFault::UnknownAfter);
        }
        let act = self.program.action(action);
        if !act.enabled(before) {
            return Err(StepFault::GuardDisabled(action));
        }
        let expected = act.successor(before);
        if &expected != after {
            return Err(StepFault::WrongEffect { action, expected });
        }
        Ok(())
    }
}

/// Per-action constraint attribution: for every `(action, constraint)`
/// pair, whether the action *establishes* and *repairs* the constraint.
/// Built by [`attribute_constraints`]; indexed by action index and
/// constraint position.
#[derive(Debug, Clone)]
pub struct ConstraintAttribution {
    constraints: usize,
    /// Row-major `[action][constraint]`: every transition by the action
    /// ends inside the constraint.
    establishes: Vec<bool>,
    /// Row-major `[action][constraint]`: establishes, and at least one
    /// transition by the action starts outside the constraint.
    repairs: Vec<bool>,
    /// Row-major `[action][constraint]`: no transition by the action exits
    /// the constraint (starts inside, ends outside).
    preserves: Vec<bool>,
}

impl ConstraintAttribution {
    /// Does every transition by `action` land in a state satisfying
    /// constraint `c` (by position in the list given to
    /// [`attribute_constraints`])?
    ///
    /// Vacuously true for actions with no transitions.
    pub fn establishes(&self, action: ActionId, c: usize) -> bool {
        self.establishes[action.index() * self.constraints + c]
    }

    /// Does `action` establish constraint `c` with at least one transition
    /// entering from a state violating it? This is the checker's notion of
    /// "the constraint attributed to the action": a repair observed in a
    /// trace conforms only if the acting action repairs that constraint
    /// here.
    pub fn repairs(&self, action: ActionId, c: usize) -> bool {
        self.repairs[action.index() * self.constraints + c]
    }

    /// All constraints `action` repairs, by position.
    pub fn repaired_by(&self, action: ActionId) -> Vec<usize> {
        (0..self.constraints)
            .filter(|&c| self.repairs(action, c))
            .collect()
    }

    /// Does no transition by `action` *exit* constraint `c` (start in a
    /// state satisfying it, end in one violating it)? This is global
    /// preservation over the whole relation — stronger than the checker's
    /// assumption-relative `preserves_given`, and the hard-prune criterion
    /// the synthesizer applies to candidates against already-established
    /// lower constraints.
    ///
    /// Vacuously true for actions with no transitions.
    pub fn preserves(&self, action: ActionId, c: usize) -> bool {
        self.preserves[action.index() * self.constraints + c]
    }
}

/// Compute constraint attribution for every action over the full
/// transition relation.
///
/// One sequential sweep over the CSR arrays after evaluating each
/// constraint into a [`Bitset`] (the bitsets are built with `opts`, so the
/// predicate evaluation is parallel; the sweep itself visits each
/// transition once).
///
/// # Errors
///
/// [`CheckError::WorkerFailed`] if a constraint predicate panics.
pub fn attribute_constraints(
    space: &StateSpace,
    program: &Program,
    constraints: &[nonmask_program::Predicate],
    opts: CheckOptions,
) -> Result<ConstraintAttribution, CheckError> {
    let k = constraints.len();
    let bits: Vec<Bitset> = constraints
        .iter()
        .map(|c| Bitset::for_predicate(space, c, opts))
        .collect::<Result<_, _>>()?;
    let actions = program.action_count();
    let mut establishes = vec![true; actions * k];
    let mut entered_from_outside = vec![false; actions * k];
    let mut preserves = vec![true; actions * k];
    for id in space.ids() {
        for (action, succ) in space.successors(id) {
            let row = action.index() * k;
            for (c, cb) in bits.iter().enumerate() {
                if cb.contains(succ) {
                    if !cb.contains(id) {
                        entered_from_outside[row + c] = true;
                    }
                } else {
                    establishes[row + c] = false;
                    if cb.contains(id) {
                        preserves[row + c] = false;
                    }
                }
            }
        }
    }
    let repairs = establishes
        .iter()
        .zip(&entered_from_outside)
        .map(|(&e, &w)| e && w)
        .collect();
    Ok(ConstraintAttribution {
        constraints: k,
        establishes,
        repairs,
        preserves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_program::{Domain, Predicate, Program};

    /// Two counters on one node: `fix-x` drives x to 0, `fix-y` drives y
    /// to 0, `spin` toggles z without touching either constraint.
    fn program() -> Program {
        let mut b = Program::builder("oracle-test");
        let x = b.var("x", Domain::range(0, 2));
        let y = b.var("y", Domain::range(0, 2));
        let z = b.var("z", Domain::Bool);
        b.convergence_action(
            "fix-x",
            [x],
            [x],
            move |s| s.get(x) > 0,
            move |s| s.set(x, 0),
        );
        b.convergence_action(
            "fix-y",
            [y],
            [y],
            move |s| s.get(y) > 0,
            move |s| {
                let v = s.get(y);
                s.set(y, v - 1);
            },
        );
        b.closure_action("spin", [z], [z], |_| true, move |s| s.toggle(z));
        b.build()
    }

    #[test]
    fn valid_transitions_name_their_action() {
        let p = program();
        let space = StateSpace::enumerate(&p).unwrap();
        let oracle = StepOracle::new(&space, &p);
        let before = p.state_from([2, 1, 0]).unwrap();
        let after = p.state_from([0, 1, 0]).unwrap();
        let action = oracle.is_valid_transition(&before, &after).unwrap();
        assert_eq!(p.action(action).name(), "fix-x");
        assert!(oracle.validate_step(action, &before, &after).is_ok());
    }

    #[test]
    fn invalid_transitions_are_rejected() {
        let p = program();
        let space = StateSpace::enumerate(&p).unwrap();
        let oracle = StepOracle::new(&space, &p);
        let before = p.state_from([2, 1, 0]).unwrap();
        // Nothing jumps y from 1 to... the x=0 write at the same time.
        let after = p.state_from([0, 0, 0]).unwrap();
        assert_eq!(
            oracle.is_valid_transition(&before, &after),
            Err(StepFault::NoMatchingAction)
        );
        // Escaped domain: x=5 is outside 0..=2.
        let escaped = State::new([5, 0, 0]);
        assert_eq!(
            oracle.is_valid_transition(&escaped, &after),
            Err(StepFault::UnknownBefore)
        );
    }

    #[test]
    fn validate_step_distinguishes_guard_and_effect_faults() {
        let p = program();
        let space = StateSpace::enumerate(&p).unwrap();
        let oracle = StepOracle::new(&space, &p);
        let fix_x = p
            .action_ids()
            .find(|&a| p.action(a).name() == "fix-x")
            .unwrap();
        // Guard false: x is already 0.
        let at_zero = p.state_from([0, 1, 0]).unwrap();
        assert_eq!(
            oracle.validate_step(fix_x, &at_zero, &at_zero),
            Err(StepFault::GuardDisabled(fix_x))
        );
        // Wrong effect: fix-x from x=2 must produce x=0, not x=1.
        let before = p.state_from([2, 0, 0]).unwrap();
        let wrong = p.state_from([1, 0, 0]).unwrap();
        match oracle.validate_step(fix_x, &before, &wrong) {
            Err(StepFault::WrongEffect { expected, .. }) => {
                assert_eq!(expected, p.state_from([0, 0, 0]).unwrap());
            }
            other => panic!("expected WrongEffect, got {other:?}"),
        }
    }

    #[test]
    fn index_backed_oracle_matches_resident_oracle() {
        let p = program();
        let space = StateSpace::enumerate(&p).unwrap();
        let index = SpaceIndex::of_program(&p, CheckOptions::default()).unwrap();
        let resident = StepOracle::new(&space, &p);
        let by_index = StepOracle::over_index(&index, &p);
        assert!(resident.space().is_some());
        assert!(by_index.space().is_none());
        // Exhaustive agreement over every ordered state pair, including
        // the action chosen on ties and the exact fault on rejection.
        for pre in index.ids() {
            let before = index.state(pre);
            for post in index.ids() {
                let after = index.state(post);
                assert_eq!(
                    resident.is_valid_transition(&before, &after),
                    by_index.is_valid_transition(&before, &after),
                    "disagree on {before:?} -> {after:?}"
                );
                for a in p.action_ids() {
                    assert_eq!(
                        resident.validate_step(a, &before, &after),
                        by_index.validate_step(a, &before, &after),
                    );
                }
            }
        }
        // Escaped domains are reported identically without a CSR.
        let escaped = State::new([5, 0, 0]);
        let inside = p.state_from([0, 0, 0]).unwrap();
        assert_eq!(
            by_index.is_valid_transition(&escaped, &inside),
            Err(StepFault::UnknownBefore)
        );
        assert_eq!(
            by_index.is_valid_transition(&inside, &escaped),
            Err(StepFault::UnknownAfter)
        );
    }

    #[test]
    fn attribution_matches_the_designed_repairs() {
        let p = program();
        let space = StateSpace::enumerate(&p).unwrap();
        let x = p.var_by_name("x").unwrap();
        let y = p.var_by_name("y").unwrap();
        let cx = Predicate::new("x=0", [x], move |s: &State| s.get(x) == 0);
        let cy = Predicate::new("y=0", [y], move |s: &State| s.get(y) == 0);
        let attr = attribute_constraints(&space, &p, &[cx, cy], CheckOptions::default()).unwrap();
        let id = |name: &str| {
            p.action_ids()
                .find(|&a| p.action(a).name() == name)
                .unwrap()
        };
        // fix-x repairs x=0 and leaves y alone (establishes y=0 only where
        // it already held, so no repair is attributed).
        assert!(attr.repairs(id("fix-x"), 0));
        assert!(!attr.repairs(id("fix-x"), 1));
        assert!(!attr.establishes(id("fix-x"), 1), "fix-x can fire at y=1");
        // fix-y decrements: from y=2 it lands at y=1, outside the
        // constraint, so it does NOT establish y=0 in one step.
        assert!(!attr.establishes(id("fix-y"), 1));
        // spin repairs nothing.
        assert_eq!(attr.repaired_by(id("spin")), Vec::<usize>::new());
    }

    #[test]
    fn preservation_tracks_exits_only() {
        let p = program();
        let space = StateSpace::enumerate(&p).unwrap();
        let x = p.var_by_name("x").unwrap();
        let y = p.var_by_name("y").unwrap();
        let z = p.var_by_name("z").unwrap();
        let cx = Predicate::new("x=0", [x], move |s: &State| s.get(x) == 0);
        let cy1 = Predicate::new("y<=1", [y], move |s: &State| s.get(y) <= 1);
        let cz = Predicate::new("z=0", [z], move |s: &State| s.get(z) == 0);
        let attr =
            attribute_constraints(&space, &p, &[cx, cy1, cz], CheckOptions::default()).unwrap();
        let id = |name: &str| {
            p.action_ids()
                .find(|&a| p.action(a).name() == name)
                .unwrap()
        };
        // fix-x never touches x once x=0 holds (its guard needs x>0), and
        // never writes y, so it preserves both constraints.
        assert!(attr.preserves(id("fix-x"), 0));
        assert!(attr.preserves(id("fix-x"), 1));
        // fix-y decrements y, so y<=1 can only become *more* true.
        assert!(attr.preserves(id("fix-y"), 1));
        // spin writes z only: preserves the x/y constraints without
        // repairing them, but toggling z out of z=0 is an exit.
        assert!(attr.preserves(id("spin"), 0));
        assert!(attr.preserves(id("spin"), 1));
        assert!(!attr.repairs(id("spin"), 0));
        assert!(!attr.preserves(id("spin"), 2));
        // fix-x can fire at z=1 but never writes z: no exit from z=0.
        assert!(attr.preserves(id("fix-x"), 2));
    }
}
