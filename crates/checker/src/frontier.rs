//! Frontier convergence: the out-of-core convergence check.
//!
//! [`check_convergence`](crate::convergence::check_convergence) needs the
//! whole CSR transition relation resident, which caps the checkable
//! instance at the memory budget. This module answers the same question —
//! does every computation from `T` reach `S`? — from a bare
//! [`SpaceIndex`]: successors are re-derived on demand, segment by
//! segment, and the only O(states) residency is a handful of bitsets
//! (predicate caches and the `resolved` frontier), about half a byte per
//! state instead of 8 bytes per *transition*.
//!
//! # Algorithm
//!
//! The monolithic checker peels the region `T ∧ ¬S` Kahn-style: a state is
//! *resolved* (cannot stay in the region forever) exactly when **all** of
//! its internal successors are resolved. The frontier mode computes the
//! same fixpoint in rounds. Each round, work-stealing workers sweep the
//! [segment plan](crate::CheckOptions::segment_plan): a worker buffers the
//! internal-successor rows of its segment's still-unresolved region states
//! (a throwaway mini-CSR, dropped at segment end), then runs an in-segment
//! fixpoint against the shared immutable `resolved` set plus its own local
//! delta bits — so resolution chains *within* a segment collapse in one
//! round. Per-segment deltas are OR-merged after the round (OR is
//! commutative and associative, so the overlapping boundary words of
//! adjacent segments merge identically in any order). Rounds repeat until
//! no state resolves; what remains unresolved is exactly the monolithic
//! peel's residual.
//!
//! Round 1 doubles as the deadlock/escape sweep (every region state is
//! unresolved then, so every row is examined): the lowest-id event wins,
//! matching the monolithic witness. The residual — typically tiny, and
//! empty whenever the program converges — is then analyzed exactly as in
//! the monolithic pipeline: a residual-local CSR (rows in action order,
//! filtered to residual targets), the shared Tarjan pass, and the same
//! fair-admissibility test with enabledness re-derived from guards (an
//! action is enabled at a state iff the CSR would have had a row pair for
//! it). SCC emission order, witness content, and state ordering are
//! identical to the monolithic checker's.
//!
//! # Determinism
//!
//! The resolved fixpoint is monotone, so its final value — and therefore
//! the verdict and every witness — is independent of thread count, segment
//! size, and claim order. With an explicit
//! [`segment_states`](crate::CheckOptions::segment_states) the per-round
//! journal events are invariant across thread counts too (the auto plan
//! sizes segments by worker count, which may change round boundaries but
//! never the verdict).

use nonmask_obs::{Event, Journal};
use nonmask_program::{Predicate, Program, VarId};

use crate::cache::Bitset;
use crate::convergence::{tarjan_sccs_csr, ConvergenceResult, ConvergenceStats, Fairness};
use crate::options::{steal_tasks, CheckOptions};
use crate::space::{offsets_from_counts, scratch_bytes, SpaceError, SpaceIndex, StateId};

/// Work and progress counters for one frontier convergence pass, wrapping
/// the monolithic [`ConvergenceStats`] so results stay comparable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontierStats {
    /// The monolithic-compatible sizes: region, peeled (= resolved at the
    /// fixpoint), residual SCCs.
    pub convergence: ConvergenceStats,
    /// Fixpoint rounds executed (0 when the region is empty).
    pub rounds: u64,
    /// Successor evaluations across all rounds — the frontier's unit of
    /// work, typically a small multiple of the region size.
    pub evals: u64,
    /// Segment row-buffers built across all rounds.
    pub segments_built: u64,
}

/// [`check_convergence`](crate::convergence::check_convergence) without a
/// resident transition relation, with the
/// [default options](CheckOptions::default).
///
/// # Errors
///
/// [`SpaceError`] for unbounded/too-large programs, budget violations,
/// domain escapes at region states, or worker panics.
pub fn check_convergence_frontier(
    program: &Program,
    from: &Predicate,
    to: &Predicate,
    fairness: Fairness,
) -> Result<ConvergenceResult, SpaceError> {
    check_convergence_frontier_opts(program, from, to, fairness, CheckOptions::default())
}

/// [`check_convergence_frontier`] with explicit [`CheckOptions`].
///
/// # Errors
///
/// Same as [`check_convergence_frontier`].
pub fn check_convergence_frontier_opts(
    program: &Program,
    from: &Predicate,
    to: &Predicate,
    fairness: Fairness,
    options: CheckOptions,
) -> Result<ConvergenceResult, SpaceError> {
    Ok(check_convergence_frontier_stats(
        program,
        from,
        to,
        fairness,
        options,
        &Journal::disabled(),
    )?
    .0)
}

/// [`check_convergence_frontier_opts`] that additionally reports
/// [`FrontierStats`] and journals the pass: one [`Event::Segment`] (phase
/// `"frontier-round"`) per round with the states resolved and successor
/// evaluations, plus the same final [`Event::Wave`] the monolithic checker
/// emits.
///
/// # Errors
///
/// Same as [`check_convergence_frontier`].
pub fn check_convergence_frontier_stats(
    program: &Program,
    from: &Predicate,
    to: &Predicate,
    fairness: Fairness,
    options: CheckOptions,
    journal: &Journal,
) -> Result<(ConvergenceResult, FrontierStats), SpaceError> {
    let index = SpaceIndex::of_program(program, options)?;
    let from_bits = Bitset::for_predicate_index(&index, from, options)?;
    let to_bits = Bitset::for_predicate_index(&index, to, options)?;
    check_convergence_frontier_bits_stats(
        program, &index, &from_bits, &to_bits, fairness, options, journal,
    )
}

/// [`check_convergence_frontier_stats`] over precomputed predicate caches
/// (evaluations of `from` and `to` over exactly `index`'s space), for
/// callers sharing the caches across passes.
///
/// # Errors
///
/// Same as [`check_convergence_frontier`].
#[allow(clippy::too_many_arguments)]
pub fn check_convergence_frontier_bits_stats(
    program: &Program,
    index: &SpaceIndex,
    from_bits: &Bitset,
    to_bits: &Bitset,
    fairness: Fairness,
    options: CheckOptions,
    journal: &Journal,
) -> Result<(ConvergenceResult, FrontierStats), SpaceError> {
    let mut stats = FrontierStats::default();
    let n = index.len();
    let region = from_bits.and(&to_bits.not());
    stats.convergence.region_states = region.count_ones() as u64;
    let emit_wave = |stats: &FrontierStats| {
        journal.emit_with(|| Event::Wave {
            fairness: fairness.to_string(),
            region: stats.convergence.region_states,
            peeled: stats.convergence.peeled_states,
            sccs: stats.convergence.sccs_found,
        });
    };
    if stats.convergence.region_states == 0 {
        emit_wave(&stats);
        return Ok((ConvergenceResult::Converges, stats));
    }

    let plan = options.segment_plan(n);
    let workers = options.workers_for(n);
    let nv = index.var_count();
    // Frontier residency floor: the four bitsets (from, to, region,
    // resolved) plus per-worker decode scratch. Checked before the rounds
    // allocate anything; per-round row buffers are accounted after each
    // round, when their actual size is known.
    let bitset_bytes = 4 * (n.div_ceil(64) as u64 * 8);
    let floor = bitset_bytes + scratch_bytes(2 * workers as u64, nv);
    if floor > options.memory_budget {
        return Err(SpaceError::BudgetExceeded {
            required: floor,
            budget: options.memory_budget,
            phase: "frontier bitsets",
        });
    }

    let mut resolved = Bitset::zeros(n);

    /// The lowest-id offending observation of the round-1 sweep, in the
    /// same precedence a sequential row scan has: the first offending
    /// successor (in action order) of the lowest offending state.
    enum RegionEvent {
        Deadlock,
        FaultEscape { after: StateId },
        DomainEscape { action: String, var: String },
    }
    struct SegDelta {
        word_start: usize,
        delta: Vec<u64>,
        newly: u64,
        evals: u64,
        row_bytes: u64,
        event: Option<(usize, RegionEvent)>,
    }

    let mut round: u64 = 0;
    loop {
        round += 1;
        let resolved_ref = &resolved;
        let region_ref = &region;
        let results: Vec<SegDelta> = steal_tasks(plan.count(), workers, |ti| {
            let range = plan.range(ti);
            let word_start = range.start / 64;
            let word_end = range.end.div_ceil(64);
            let mut delta = vec![0u64; word_end - word_start];
            let mut scratch = index.scratch_state();
            let mut succ = index.scratch_state();
            // Buffered rows of this segment's unresolved region states:
            // global state id + the internal successors, in action order.
            let mut row_states: Vec<u32> = Vec::new();
            let mut row_offsets: Vec<u32> = vec![0];
            let mut row_succs: Vec<u32> = Vec::new();
            let mut evals = 0u64;
            let mut event: Option<(usize, RegionEvent)> = None;
            'states: for i in range.clone() {
                if !region_ref.get(i) || resolved_ref.get(i) {
                    continue;
                }
                index.decode_state(StateId::from_index(i), &mut scratch);
                let mut any_succ = false;
                for a in program.action_ids() {
                    let act = program.action(a);
                    if !act.enabled(&scratch) {
                        continue;
                    }
                    any_succ = true;
                    act.successor_into(&scratch, &mut succ);
                    evals += 1;
                    let Some(t) = index.id_of(&succ) else {
                        event = Some((
                            i,
                            RegionEvent::DomainEscape {
                                action: act.name().to_string(),
                                var: program
                                    .var(VarId::from_index(index.escaping_var(&succ)))
                                    .name()
                                    .to_string(),
                            },
                        ));
                        break 'states;
                    };
                    if to_bits.contains(t) {
                        continue; // exits into S: not an internal edge
                    }
                    if !from_bits.contains(t) {
                        event = Some((i, RegionEvent::FaultEscape { after: t }));
                        break 'states;
                    }
                    row_succs.push(t.index() as u32);
                }
                if !any_succ {
                    event = Some((i, RegionEvent::Deadlock));
                    break 'states;
                }
                row_states.push(i as u32);
                row_offsets.push(row_succs.len() as u32);
            }
            let row_bytes = 4 * (row_states.len() + row_offsets.len() + row_succs.len()) as u64;
            let mut newly = 0u64;
            if event.is_none() {
                // In-segment fixpoint: a buffered state resolves when all
                // its internal successors are resolved — in the shared set
                // (previous rounds) or in this segment's own delta.
                let is_resolved = |t: usize, delta: &[u64]| -> bool {
                    let w = t / 64;
                    if w >= word_start
                        && w < word_end
                        && delta[w - word_start] & (1 << (t % 64)) != 0
                    {
                        return true;
                    }
                    resolved_ref.get(t)
                };
                loop {
                    let mut changed = false;
                    for (k, &s) in row_states.iter().enumerate() {
                        let s = s as usize;
                        if delta[s / 64 - word_start] & (1 << (s % 64)) != 0 {
                            continue;
                        }
                        let (lo, hi) = (row_offsets[k] as usize, row_offsets[k + 1] as usize);
                        if row_succs[lo..hi]
                            .iter()
                            .all(|&t| is_resolved(t as usize, &delta))
                        {
                            delta[s / 64 - word_start] |= 1 << (s % 64);
                            newly += 1;
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
            }
            SegDelta {
                word_start,
                delta,
                newly,
                evals,
                row_bytes,
                event,
            }
        })
        .map_err(SpaceError::from)?;

        stats.segments_built += plan.count() as u64;
        let round_evals: u64 = results.iter().map(|r| r.evals).sum();
        stats.evals += round_evals;
        stats.rounds = round;

        // Round-1 events: the results are in segment order and each
        // segment reports its first event, so the first Some is the
        // lowest-id witness — exactly the sequential one.
        if let Some((i, ev)) = results.iter().find_map(|r| r.event.as_ref()) {
            let before = index.state(StateId::from_index(*i));
            let result = match ev {
                RegionEvent::Deadlock => ConvergenceResult::DeadlockOutsideTarget { state: before },
                RegionEvent::FaultEscape { after } => ConvergenceResult::EscapesFaultSpan {
                    before,
                    after: index.state(*after),
                },
                RegionEvent::DomainEscape { action, var } => {
                    return Err(SpaceError::EscapedDomain {
                        action: action.clone(),
                        var: var.clone(),
                    })
                }
            };
            emit_wave(&stats);
            return Ok((result, stats));
        }

        // Budget: the concurrent residency this round actually was —
        // bitsets plus one row buffer per worker (post-hoc, like the
        // segment builds).
        let peak_rows = results.iter().map(|r| r.row_bytes).max().unwrap_or(0);
        let required =
            bitset_bytes + workers as u64 * peak_rows + scratch_bytes(2 * workers as u64, nv);
        if required > options.memory_budget {
            return Err(SpaceError::BudgetExceeded {
                required,
                budget: options.memory_budget,
                phase: "segment build",
            });
        }

        let round_newly: u64 = results.iter().map(|r| r.newly).sum();
        journal.emit_with(|| Event::Segment {
            phase: "frontier-round".to_string(),
            index: round,
            states: round_newly,
            transitions: round_evals,
        });
        if round_newly == 0 {
            break; // fixpoint: the unresolved remainder is the residual
        }
        for r in &results {
            resolved.or_words(r.word_start, &r.delta);
        }
    }

    let residual_bits = region.and(&resolved.not());
    let residual_ids: Vec<StateId> = residual_bits.iter_ones().map(StateId::from_index).collect();
    stats.convergence.peeled_states = stats.convergence.region_states - residual_ids.len() as u64;
    if residual_ids.is_empty() {
        emit_wave(&stats);
        return Ok((ConvergenceResult::Converges, stats));
    }

    // Residual-local CSR, rows in action order filtered to residual
    // targets: the monolithic Tarjan skips peeled targets through its
    // `alive` mask, so the DFS — and hence the SCC emission order — is
    // identical. The residual is the small hard core (empty in the common
    // converging case), so this build is serial and resident.
    let rn = residual_ids.len();
    let local = |t: StateId| -> Option<usize> { residual_ids.binary_search(&t).ok() };
    let mut offsets: Vec<u32> = Vec::with_capacity(rn + 1);
    offsets.push(0);
    let mut edges: Vec<u32> = Vec::new();
    {
        let mut scratch = index.scratch_state();
        let mut succ = index.scratch_state();
        for &id in &residual_ids {
            index.decode_state(id, &mut scratch);
            for a in program.action_ids() {
                let act = program.action(a);
                if !act.enabled(&scratch) {
                    continue;
                }
                act.successor_into(&scratch, &mut succ);
                stats.evals += 1;
                let t = index
                    .id_of(&succ)
                    .expect("round 1 already vetted every residual state's successors");
                if let Some(lt) = local(t) {
                    edges.push(lt as u32);
                }
            }
            offsets.push(edges.len() as u32);
        }
    }
    debug_assert_eq!(
        offsets_from_counts(
            &offsets
                .windows(2)
                .map(|w| w[1] - w[0])
                .collect::<Vec<u32>>()
        )
        .expect("residual edges fit u32"),
        offsets
    );
    let row = |u: u32| -> &[u32] {
        &edges[offsets[u as usize] as usize..offsets[u as usize + 1] as usize]
    };

    let sccs = tarjan_sccs_csr(&offsets, &edges, &Bitset::ones(rn));
    stats.convergence.sccs_found = sccs.len() as u64;
    for scc in &sccs {
        let mut scc_bits = Bitset::zeros(rn);
        for &u in scc {
            scc_bits.set(u as usize);
        }
        let has_internal_edge = scc
            .iter()
            .any(|&u| row(u).iter().any(|&v| scc_bits.get(v as usize)));
        if !has_internal_edge {
            continue;
        }
        let divergent = match fairness {
            Fairness::Unfair => true,
            Fairness::WeaklyFair => {
                fair_admissible_frontier(program, index, &residual_ids, scc, &scc_bits)
            }
        };
        if divergent {
            let result = ConvergenceResult::Divergence {
                states: scc
                    .iter()
                    .map(|&u| index.state(residual_ids[u as usize]))
                    .collect(),
                fairness,
            };
            emit_wave(&stats);
            return Ok((result, stats));
        }
    }

    emit_wave(&stats);
    Ok((ConvergenceResult::Converges, stats))
}

/// The monolithic fair-admissibility test with enabledness re-derived from
/// guards: an action has a CSR row pair at a state exactly when its guard
/// holds there, so evaluating the guard (and, when enabled, the successor)
/// reproduces the CSR-based test bit for bit.
fn fair_admissible_frontier(
    program: &Program,
    index: &SpaceIndex,
    residual_ids: &[StateId],
    scc: &[u32],
    scc_bits: &Bitset,
) -> bool {
    let mut scratch = index.scratch_state();
    let mut succ = index.scratch_state();
    let in_scc = |t: StateId| -> bool {
        residual_ids
            .binary_search(&t)
            .is_ok_and(|lt| scc_bits.get(lt))
    };
    'actions: for aid in program.action_ids() {
        let act = program.action(aid);
        let mut has_internal = false;
        for &u in scc {
            let id = residual_ids[u as usize];
            index.decode_state(id, &mut scratch);
            if !act.enabled(&scratch) {
                // Not continuously enabled on a tour of the SCC: imposes no
                // fairness obligation here.
                continue 'actions;
            }
            if !has_internal {
                act.successor_into(&scratch, &mut succ);
                let t = index
                    .id_of(&succ)
                    .expect("round 1 already vetted every residual state's successors");
                if in_scc(t) {
                    has_internal = true;
                }
            }
        }
        if !has_internal {
            // Enabled everywhere in the SCC but every execution leaves it:
            // a fair computation cannot stay forever.
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::{check_convergence_opts, check_convergence_stats};
    use crate::space::StateSpace;
    use nonmask_program::Domain;

    fn pred_eq(p: &Program, name: &str, var: &str, value: i64) -> Predicate {
        let v = p.var_by_name(var).unwrap();
        Predicate::new(name, [v], move |s| s.get(v) == value)
    }

    /// A program whose region mixes chains, deadlocks, or cycles depending
    /// on the knobs, used to diff frontier against monolithic.
    fn countdown(max: i64, floor: i64) -> Program {
        let mut b = Program::builder("down");
        let x = b.var("x", Domain::range(0, max));
        b.convergence_action(
            "dec",
            [x],
            [x],
            move |s| s.get(x) > floor,
            move |s| {
                let v = s.get(x);
                s.set(x, v - 1);
            },
        );
        b.build()
    }

    fn check_both(
        p: &Program,
        from: &Predicate,
        to: &Predicate,
        fairness: Fairness,
        opts: CheckOptions,
    ) -> (ConvergenceResult, ConvergenceResult) {
        let space = StateSpace::enumerate_with_options(p, opts).unwrap();
        let mono = check_convergence_opts(&space, p, from, to, fairness, opts).unwrap();
        let front = check_convergence_frontier_opts(p, from, to, fairness, opts).unwrap();
        (mono, front)
    }

    #[test]
    fn converging_chain_matches_monolithic() {
        let p = countdown(4999, 0);
        let s = pred_eq(&p, "x=0", "x", 0);
        for threads in [1, 2, 8] {
            for seg in [512, 1000, 4096] {
                let opts = CheckOptions::default().threads(threads).segment_states(seg);
                let (mono, front) = check_both(
                    &p,
                    &Predicate::always_true(),
                    &s,
                    Fairness::WeaklyFair,
                    opts,
                );
                assert_eq!(mono, front, "threads={threads} seg={seg}");
                assert!(front.converges());
            }
        }
    }

    #[test]
    fn deadlock_witness_matches_monolithic() {
        // floor=1: x=1 deadlocks outside the target x=0.
        let p = countdown(4999, 1);
        let s = pred_eq(&p, "x=0", "x", 0);
        for threads in [1, 2, 8] {
            let opts = CheckOptions::default().threads(threads).segment_states(777);
            let (mono, front) = check_both(
                &p,
                &Predicate::always_true(),
                &s,
                Fairness::WeaklyFair,
                opts,
            );
            assert_eq!(mono, front, "threads={threads}");
            assert!(
                matches!(front, ConvergenceResult::DeadlockOutsideTarget { ref state } if state.slots() == [1])
            );
        }
    }

    #[test]
    fn escape_witness_matches_monolithic() {
        // T = x<=1, but `jump` at x=1 lands at x=2 outside S ∪ T.
        let mut b = Program::builder("escape");
        let x = b.var("x", Domain::range(0, 2));
        b.closure_action(
            "jump",
            [x],
            [x],
            move |s| s.get(x) == 1,
            move |s| s.set(x, 2),
        );
        let p = b.build();
        let s = pred_eq(&p, "x=0", "x", 0);
        let x_id = p.var_by_name("x").unwrap();
        let t = Predicate::new("x<=1", [x_id], move |st| st.get(x_id) <= 1);
        let (mono, front) = check_both(&p, &t, &s, Fairness::WeaklyFair, CheckOptions::default());
        assert_eq!(mono, front);
        assert!(matches!(front, ConvergenceResult::EscapesFaultSpan { .. }));
    }

    #[test]
    fn divergence_witness_matches_monolithic() {
        // Spin cycles everywhere in the region plus exits: unfair diverges
        // with a 2-state SCC, weak fairness rescues. Witness content must
        // match the monolithic checker's exactly.
        let mut b = Program::builder("mt-div");
        let x = b.var("x", Domain::range(0, 4095));
        let y = b.var("y", Domain::Bool);
        b.closure_action(
            "spin",
            [x, y],
            [y],
            move |s| s.get(x) > 0,
            move |s| s.toggle(y),
        );
        b.convergence_action(
            "dec",
            [x],
            [x],
            move |s| s.get(x) > 0,
            move |s| {
                let v = s.get(x);
                s.set(x, v - 1);
            },
        );
        let p = b.build();
        let s = pred_eq(&p, "x=0", "x", 0);
        for fairness in [Fairness::Unfair, Fairness::WeaklyFair] {
            for threads in [1, 8] {
                let opts = CheckOptions::default().threads(threads).segment_states(900);
                let (mono, front) = check_both(&p, &Predicate::always_true(), &s, fairness, opts);
                assert_eq!(mono, front, "fairness={fairness} threads={threads}");
            }
        }
    }

    #[test]
    fn fair_divergence_detected() {
        // The only region action cycles within it: even fair computations
        // diverge, and the frontier's on-demand admissibility test must say
        // so.
        let mut b = Program::builder("livelock");
        let y = b.var("y", Domain::Bool);
        let x = b.var("x", Domain::Bool);
        b.closure_action(
            "toggle",
            [x, y],
            [y],
            move |s| !s.get_bool(x),
            move |s| s.toggle(y),
        );
        let p = b.build();
        let s = Predicate::new("x", [x], move |st| st.get_bool(x));
        let (mono, front) = check_both(
            &p,
            &Predicate::always_true(),
            &s,
            Fairness::WeaklyFair,
            CheckOptions::default(),
        );
        assert_eq!(mono, front);
        assert!(matches!(
            front,
            ConvergenceResult::Divergence {
                fairness: Fairness::WeaklyFair,
                ..
            }
        ));
    }

    #[test]
    fn stats_match_monolithic_and_rounds_are_journaled() {
        let p = countdown(4999, 0);
        let s = pred_eq(&p, "x=0", "x", 0);
        let opts = CheckOptions::default().segment_states(1000);
        let space = StateSpace::enumerate_with_options(&p, opts).unwrap();
        let (_, mono_stats) = check_convergence_stats(
            &space,
            &p,
            &Predicate::always_true(),
            &s,
            Fairness::WeaklyFair,
            opts,
            &Journal::disabled(),
        )
        .unwrap();
        let (journal, buffer) = Journal::memory();
        let (result, stats) = check_convergence_frontier_stats(
            &p,
            &Predicate::always_true(),
            &s,
            Fairness::WeaklyFair,
            opts,
            &journal,
        )
        .unwrap();
        assert!(result.converges());
        assert_eq!(stats.convergence, mono_stats);
        assert!(stats.rounds >= 1);
        assert!(stats.evals >= stats.convergence.region_states);
        journal.flush();
        let events: Vec<Event> = buffer
            .contents()
            .lines()
            .map(|l| Event::parse_line(l).unwrap().event)
            .collect();
        let rounds = events
            .iter()
            .filter(|e| matches!(e, Event::Segment { phase, .. } if phase == "frontier-round"))
            .count() as u64;
        assert_eq!(rounds, stats.rounds);
        assert!(
            matches!(events.last(), Some(Event::Wave { region, peeled, .. })
                if *region == stats.convergence.region_states
                    && *peeled == stats.convergence.peeled_states),
            "the final Wave mirrors the stats"
        );
    }

    #[test]
    fn frontier_budget_floor_is_enforced() {
        let p = countdown(99_999, 0);
        let s = pred_eq(&p, "x=0", "x", 0);
        let err = check_convergence_frontier_opts(
            &p,
            &Predicate::always_true(),
            &s,
            Fairness::WeaklyFair,
            CheckOptions::default().memory_budget(1024),
        )
        .unwrap_err();
        let SpaceError::BudgetExceeded { phase, .. } = err else {
            panic!("expected BudgetExceeded, got {err:?}");
        };
        assert_eq!(phase, "frontier bitsets");
    }

    #[test]
    fn domain_escape_is_an_error() {
        let mut b = Program::builder("bad");
        let x = b.var("x", Domain::range(0, 2));
        b.closure_action("overflow", [x], [x], |_| true, move |s| s.set(x, 7));
        let p = b.build();
        let s = pred_eq(&p, "x=0", "x", 0);
        let err =
            check_convergence_frontier(&p, &Predicate::always_true(), &s, Fairness::WeaklyFair)
                .unwrap_err();
        assert_eq!(
            err,
            SpaceError::EscapedDomain {
                action: "overflow".into(),
                var: "x".into()
            }
        );
    }

    #[test]
    fn segment_boundary_states_round_trip() {
        // Every state on a segment boundary must decode and step
        // identically whether reached from the segment before or after the
        // boundary — i.e. verdicts cannot depend on where the plan cuts.
        let p = countdown(4999, 0);
        let s = pred_eq(&p, "x=0", "x", 0);
        let base = check_convergence_frontier_opts(
            &p,
            &Predicate::always_true(),
            &s,
            Fairness::WeaklyFair,
            CheckOptions::default().segment_states(5000),
        )
        .unwrap();
        // Boundaries at powers of two, at odd primes, and off-by-one from
        // the state count.
        for seg in [64, 127, 4999, 4998, 2500] {
            let r = check_convergence_frontier_opts(
                &p,
                &Predicate::always_true(),
                &s,
                Fairness::WeaklyFair,
                CheckOptions::default().segment_states(seg),
            )
            .unwrap();
            assert_eq!(base, r, "seg={seg}");
        }
    }
}
