//! Exhaustive verification of closure and convergence.
//!
//! The paper's design method discharges two proof obligations per program
//! (Section 3):
//!
//! - **Closure** — the invariant `S` and the fault-span `T` are closed
//!   under every program action; each closure action moreover preserves
//!   each individual constraint (the first antecedent of Theorems 1–3).
//! - **Convergence** — every computation starting in `T` reaches `S`.
//!
//! The paper discharges these by hand; this crate discharges them
//! mechanically for programs over bounded domains, by enumerating the full
//! state space:
//!
//! - [`StateSpace`] — enumeration and indexing of every state.
//! - [`closure`] — the *preservation oracle* (`does action a preserve
//!   predicate c?`), plain and conditional (Theorem 3's "whenever all
//!   constraints in lower-numbered partitions hold").
//! - [`convergence`] — convergence checking under an unfair daemon (no
//!   cycle may exist outside `S`) and under the paper's weakly fair daemon
//!   (no *fair-admissible* cycle may exist: a strongly connected component
//!   every always-enabled action of which can be executed without leaving
//!   the component).
//! - [`bounds`] — worst-case convergence move counts and variant-function
//!   validation (the concluding remarks' discussion of variant functions).
//!
//! # Performance model
//!
//! State ids are assigned *arithmetically*: a state's id is its mixed-radix
//! enumeration position, so reverse lookup ([`StateSpace::id_of`]) is a few
//! multiply-adds with no hash map, and the forward direction means states
//! are never materialized — [`StateSpace::state`] decodes any state from
//! its id on demand, and hot loops decode into reusable scratch buffers
//! ([`StateSpace::decode_state`]). Transitions live in flat CSR arrays
//! (`offsets` + parallel `actions`/`succs` columns): resident memory is
//! 4 bytes per state plus 8 per transition, gated by an explicit
//! [`CheckOptions::memory_budget`] instead of a blunt state-count cap (see
//! the [`space`] module docs).
//!
//! Every state-space sweep — enumeration, transition construction,
//! predicate evaluation, closure, the convergence region analysis, and the
//! bounds region build — runs in parallel, controlled by
//! [`CheckOptions::threads`]; results are **bit-identical for every thread
//! count** because per-task results are reduced in task order (the
//! lowest-id witness always wins). Predicates are evaluated once per state
//! into [`Bitset`] caches (`*_bits` function variants) that callers can
//! share across passes and compose with bitwise `and`/`not`. Convergence
//! peels the region down to the states that can stay in it forever before
//! running any SCC analysis, so the Tarjan pass vanishes in the common
//! converging case (see the [`convergence`] module docs).
//!
//! ## Out-of-core: segments, work-stealing, and the frontier
//!
//! When the whole CSR table does not fit the memory budget, the id range
//! splits into contiguous **segments** ([`SegmentPlan`], [`segment`]):
//! each segment's offsets/actions/succs columns are built independently
//! from the arithmetic index, scanned, and dropped, so resident memory is
//! one segment per worker instead of the whole table. Workers claim
//! segments through a **work-stealing** scheduler (an atomic claim
//! counter; no fixed chunk assignment), which keeps the cores busy even
//! when transition density is skewed across the id range — and because
//! per-segment results are still merged in segment order, verdicts and
//! witnesses remain bit-identical for every thread count and claim order.
//! [`SegmentedSpace`] exposes the scan/find primitives;
//! [`closure::is_closed_segmented`] is closure checking on top of them.
//!
//! For convergence-only queries on such instances, the **frontier** mode
//! ([`frontier`], [`check_convergence_frontier`]) goes further and never
//! materializes transitions at all: it runs the Kahn-style peel as a
//! round-based fixpoint over per-segment row buffers, decoding successors
//! on demand, with four bitsets of live memory. Its verdicts, witnesses,
//! and statistics are bit-identical to the resident checker's.
//!
//! # Example: verifying a tiny stabilizing program
//!
//! ```
//! use nonmask_program::{Domain, Predicate, Program};
//! use nonmask_checker::{StateSpace, convergence::{check_convergence, Fairness, ConvergenceResult}};
//!
//! // One variable that convergence actions drive to 0.
//! let mut b = Program::builder("to-zero");
//! let x = b.var("x", Domain::range(0, 3));
//! b.convergence_action("dec", [x], [x], move |s| s.get(x) > 0, move |s| {
//!     let v = s.get(x);
//!     s.set(x, v - 1);
//! });
//! let p = b.build();
//! let space = StateSpace::enumerate(&p).unwrap();
//! let s = Predicate::new("x=0", [x], move |st| st.get(x) == 0);
//! let t = Predicate::always_true();
//! let result = check_convergence(&space, &p, &t, &s, Fairness::WeaklyFair).unwrap();
//! assert!(matches!(result, ConvergenceResult::Converges));
//! ```
//!
//! # Observability
//!
//! Passes accept a [`nonmask_obs::Journal`] through the `*_journaled` /
//! `*_stats` variants ([`StateSpace::enumerate_journaled`],
//! [`convergence::check_convergence_stats`]) and emit structured JSON-lines
//! events (CSR build phases, convergence wave sizes). [`CheckCounters`]
//! aggregates per-pass work counts for reports. With the default disabled
//! journal no event is ever formatted, so instrumented paths cost
//! near-nothing.
//!
//! A panic in a caller-supplied closure (predicate, guard, action body) no
//! longer aborts the process: every public entry point returns
//! [`CheckError::WorkerFailed`] with the captured payload instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod cache;
pub mod closure;
pub mod containment;
pub mod convergence;
pub mod counters;
pub mod error;
pub mod expected;
pub mod frontier;
pub mod options;
pub mod oracle;
pub mod replay;
pub mod segment;
pub mod space;
pub mod span;

pub use bounds::{check_variant, worst_case_moves, worst_case_moves_bits, VariantReport};
pub use cache::{Bitset, OnesIter};
pub use closure::{
    is_closed, is_closed_bits, is_closed_segmented, preserves, preserves_given,
    preserves_given_bits, Violation,
};
pub use containment::{certify_containment, ContainmentVerdict};
pub use convergence::{
    check_convergence, check_convergence_bits, check_convergence_opts, check_convergence_stats,
    shortest_path_to, ConvergenceResult, ConvergenceStats, Fairness, PathStep,
};
pub use counters::CheckCounters;
pub use error::CheckError;
pub use expected::{expected_moves, ExpectedMoves};
pub use frontier::{
    check_convergence_frontier, check_convergence_frontier_bits_stats,
    check_convergence_frontier_opts, check_convergence_frontier_stats, FrontierStats,
};
pub use options::{
    steal_find, steal_tasks, CheckOptions, SegmentPlan, DEFAULT_MEMORY_BUDGET,
    DEFAULT_SEGMENT_STATES,
};
pub use oracle::{attribute_constraints, ConstraintAttribution, StepFault, StepOracle};
pub use replay::{replay_constraints, ConstraintTransition};
pub use segment::{Segment, SegmentedSpace};
pub use space::{
    SpaceError, SpaceIndex, StateId, StateSpace, Transitions, TransitionsIter, DEFAULT_STATE_LIMIT,
};
pub use span::{compute_fault_span, compute_fault_span_opts, StateSet};
