//! Worst-case convergence bounds and variant functions.
//!
//! The paper's concluding remarks connect convergence proofs to *variant
//! functions*: mappings into a well-founded set that never increase and
//! eventually decrease along every computation. This module validates
//! candidate variant functions mechanically and computes the exact
//! worst-case number of moves a program can spend outside its invariant —
//! the quantity the rank argument of Theorem 1 bounds.
//!
//! Both passes here run a longest-path DFS over the region's transition
//! graph, so they need the full CSR arrays resident (a [`StateSpace`]).
//! If you only need a convergence *verdict* for an instance too large to
//! hold its transition table in memory, use the out-of-core
//! [`frontier`](crate::frontier) mode instead — it never materializes
//! transitions, but it cannot produce move counts.

use nonmask_program::{Predicate, Program, State};

use crate::cache::Bitset;
use crate::convergence::build_region;
use crate::error::CheckError;
use crate::options::CheckOptions;
use crate::space::{StateId, StateSpace};

/// The worst-case number of steps an adversarial (unfair) daemon can keep
/// the program inside the region `from ∧ ¬to` before every continuation
/// reaches `to`.
///
/// Returns `None` when the region admits an infinite computation (a cycle
/// or a deadlocked region state), in which case there is no finite bound.
/// `Some(0)` means the region is empty.
///
/// This is the longest path through the region's transition graph, counting
/// the final exit step.
///
/// ```
/// use nonmask_program::{Domain, Predicate, Program};
/// use nonmask_checker::{worst_case_moves, StateSpace};
///
/// let mut b = Program::builder("down");
/// let x = b.var("x", Domain::range(0, 4));
/// b.convergence_action("dec", [x], [x],
///     move |s| s.get(x) > 0,
///     move |s| { let v = s.get(x); s.set(x, v - 1); });
/// let p = b.build();
/// let space = StateSpace::enumerate(&p)?;
/// let s = Predicate::new("x=0", [x], move |st| st.get(x) == 0);
/// let bound = worst_case_moves(&space, &p, &Predicate::always_true(), &s)?;
/// assert_eq!(bound, Some(4), "x=4 takes four decrements");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// [`CheckError::WorkerFailed`] if a predicate panics at some state.
pub fn worst_case_moves(
    space: &StateSpace,
    program: &Program,
    from: &Predicate,
    to: &Predicate,
) -> Result<Option<u64>, CheckError> {
    let _ = program;
    let opts = CheckOptions::default();
    let from_bits = Bitset::for_predicate(space, from, opts)?;
    let to_bits = Bitset::for_predicate(space, to, opts)?;
    worst_case_moves_bits(space, &from_bits, &to_bits, opts)
}

/// [`worst_case_moves`] over precomputed predicate caches (evaluations of
/// `from` and `to` over exactly this `space`). The region is built in
/// parallel chunks; the longest-path DFS itself is sequential (it visits
/// each region edge once).
pub fn worst_case_moves_bits(
    space: &StateSpace,
    from_bits: &Bitset,
    to_bits: &Bitset,
    opts: CheckOptions,
) -> Result<Option<u64>, CheckError> {
    let (region, local) = build_region(space, from_bits, to_bits, opts)?;
    if region.is_empty() {
        return Ok(Some(0));
    }

    // memo[li]: longest number of moves from region state li until the
    // region is left, or None while being computed (cycle detection).
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Done(u64),
    }
    let mut mark = vec![Mark::White; region.len()];

    // Iterative DFS with post-processing.
    for start in 0..region.len() {
        if matches!(mark[start], Mark::Done(_)) {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        mark[start] = Mark::Grey;
        while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
            let sid = region[v];
            let succs = space.successor_ids(sid);
            if succs.is_empty() {
                // Deadlock inside the region: the computation never reaches
                // `to`, so no finite bound exists.
                return Ok(None);
            }
            if *ci < succs.len() {
                let t = succs[*ci];
                *ci += 1;
                let tl = local[t.index()];
                if tl == u32::MAX {
                    continue; // exits the region (either into `to` or out of `from`)
                }
                match mark[tl as usize] {
                    Mark::White => {
                        mark[tl as usize] = Mark::Grey;
                        stack.push((tl as usize, 0));
                    }
                    Mark::Grey => return Ok(None), // cycle
                    Mark::Done(_) => {}
                }
            } else {
                // All children resolved: longest = 1 + max(child longest, 0-for-exits).
                let mut best = 0u64;
                for &t in succs {
                    let tl = local[t.index()];
                    let via = if tl == u32::MAX {
                        1
                    } else if let Mark::Done(d) = mark[tl as usize] {
                        1 + d
                    } else {
                        unreachable!("children are resolved before their parent")
                    };
                    best = best.max(via);
                }
                mark[v] = Mark::Done(best);
                stack.pop();
            }
        }
    }

    Ok(Some(
        (0..region.len())
            .map(|v| match mark[v] {
                Mark::Done(d) => d,
                _ => unreachable!("all region states are resolved"),
            })
            .max()
            .unwrap_or(0),
    ))
}

/// The result of validating a candidate variant function over a region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VariantReport {
    /// The function never increases along region transitions and cannot
    /// stay constant forever: it witnesses convergence.
    Valid,
    /// A region transition increased the function.
    Increases {
        /// State before the offending transition.
        before: State,
        /// State after it.
        after: State,
    },
    /// The function is non-increasing but some cycle keeps it constant, so
    /// it does not witness convergence under an unfair daemon.
    StuckPlateau {
        /// A state on the constant-value cycle.
        state: State,
    },
    /// A region state has no enabled action, so "eventually decreases"
    /// fails there.
    Deadlock {
        /// The stuck state.
        state: State,
    },
}

/// Validate a candidate variant function `f` over the region `from ∧ ¬to`:
/// `f` must never increase along any region transition and must not admit a
/// cycle of constant value (together these imply every unfair computation
/// eventually leaves the region).
pub fn check_variant(
    space: &StateSpace,
    program: &Program,
    from: &Predicate,
    to: &Predicate,
    f: impl Fn(&State) -> u64,
) -> VariantReport {
    let _ = program;
    let mut local = vec![u32::MAX; space.len()];
    let mut region: Vec<StateId> = Vec::new();
    let mut scratch = space.scratch_state();
    for id in space.ids() {
        space.decode_state(id, &mut scratch);
        if from.holds(&scratch) && !to.holds(&scratch) {
            local[id.index()] = region.len() as u32;
            region.push(id);
        }
    }

    // Non-increase along all transitions leaving region states (whether
    // they stay in the region or exit, the variant must not grow while
    // outside `to`). Build the constant-value internal adjacency as we go.
    let mut succ_scratch = space.scratch_state();
    let mut flat_adj: Vec<Vec<u32>> = vec![Vec::new(); region.len()];
    for (li, &id) in region.iter().enumerate() {
        space.decode_state(id, &mut scratch);
        if space.successor_ids(id).is_empty() {
            return VariantReport::Deadlock {
                state: scratch.clone(),
            };
        }
        let fv = f(&scratch);
        for &t in space.successor_ids(id) {
            let tl = local[t.index()];
            if tl != u32::MAX {
                space.decode_state(t, &mut succ_scratch);
                let ftv = f(&succ_scratch);
                if ftv > fv {
                    return VariantReport::Increases {
                        before: scratch.clone(),
                        after: succ_scratch.clone(),
                    };
                }
                if ftv == fv {
                    flat_adj[li].push(tl);
                }
            }
        }
    }

    // A cycle among constant-value internal edges = plateau.
    if let Some(v) = find_cycle_vertex(&flat_adj) {
        return VariantReport::StuckPlateau {
            state: space.state(region[v]),
        };
    }
    VariantReport::Valid
}

/// Return a vertex on some cycle of `adj`, if any (iterative colored DFS).
fn find_cycle_vertex(adj: &[Vec<u32>]) -> Option<usize> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let n = adj.len();
    let mut color = vec![Color::White; n];
    for start in 0..n {
        if color[start] != Color::White {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = Color::Grey;
        while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
            if *ci < adj[v].len() {
                let w = adj[v][*ci] as usize;
                *ci += 1;
                match color[w] {
                    Color::White => {
                        color[w] = Color::Grey;
                        stack.push((w, 0));
                    }
                    Color::Grey => return Some(w),
                    Color::Black => {}
                }
            } else {
                color[v] = Color::Black;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_program::{Domain, Program};

    fn countdown(max: i64) -> Program {
        let mut b = Program::builder("down");
        let x = b.var("x", Domain::range(0, max));
        b.convergence_action(
            "dec",
            [x],
            [x],
            move |s| s.get(x) > 0,
            move |s| {
                let v = s.get(x);
                s.set(x, v - 1);
            },
        );
        b.build()
    }

    fn target(p: &Program) -> Predicate {
        let x = p.var_by_name("x").unwrap();
        Predicate::new("x=0", [x], move |s| s.get(x) == 0)
    }

    #[test]
    fn countdown_worst_case_is_max() {
        let p = countdown(7);
        let space = StateSpace::enumerate(&p).unwrap();
        let moves = worst_case_moves(&space, &p, &Predicate::always_true(), &target(&p)).unwrap();
        assert_eq!(moves, Some(7));
    }

    #[test]
    fn empty_region_is_zero_moves() {
        let p = countdown(3);
        let space = StateSpace::enumerate(&p).unwrap();
        let moves = worst_case_moves(&space, &p, &Predicate::always_false(), &target(&p)).unwrap();
        assert_eq!(moves, Some(0));
    }

    #[test]
    fn cycle_has_no_bound() {
        let mut b = Program::builder("cycle");
        let x = b.var("x", Domain::Bool);
        let y = b.var("y", Domain::Bool);
        b.closure_action(
            "toggle",
            [x, y],
            [y],
            move |s| !s.get_bool(x),
            move |s| s.toggle(y),
        );
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        let s = Predicate::new("x", [x], move |st| st.get_bool(x));
        assert_eq!(
            worst_case_moves(&space, &p, &Predicate::always_true(), &s).unwrap(),
            None
        );
    }

    #[test]
    fn deadlock_has_no_bound() {
        let mut b = Program::builder("stuck");
        let x = b.var("x", Domain::range(0, 2));
        b.convergence_action("go", [x], [x], move |s| s.get(x) == 1, move |s| s.set(x, 0));
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        let s = target(&p);
        assert_eq!(
            worst_case_moves(&space, &p, &Predicate::always_true(), &s).unwrap(),
            None
        );
    }

    #[test]
    fn branching_takes_longest_path() {
        // From x: either jump straight to 0 or step down by 1. Worst case
        // still walks all the way down.
        let mut b = Program::builder("branch");
        let x = b.var("x", Domain::range(0, 5));
        b.convergence_action(
            "jump",
            [x],
            [x],
            move |s| s.get(x) > 0,
            move |s| s.set(x, 0),
        );
        b.convergence_action(
            "step",
            [x],
            [x],
            move |s| s.get(x) > 0,
            move |s| {
                let v = s.get(x);
                s.set(x, v - 1);
            },
        );
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        assert_eq!(
            worst_case_moves(&space, &p, &Predicate::always_true(), &target(&p)).unwrap(),
            Some(5)
        );
    }

    #[test]
    fn parallel_bound_matches_serial() {
        let p = countdown(4999);
        let space = StateSpace::enumerate(&p).unwrap();
        let t = Predicate::always_true();
        let s = target(&p);
        let from_bits = Bitset::for_predicate(&space, &t, CheckOptions::serial()).unwrap();
        let to_bits = Bitset::for_predicate(&space, &s, CheckOptions::serial()).unwrap();
        let serial =
            worst_case_moves_bits(&space, &from_bits, &to_bits, CheckOptions::serial()).unwrap();
        assert_eq!(serial, Some(4999));
        for threads in [2, 4, 8] {
            let par = worst_case_moves_bits(
                &space,
                &from_bits,
                &to_bits,
                CheckOptions::default().threads(threads),
            )
            .unwrap();
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn valid_variant_accepted() {
        let p = countdown(5);
        let space = StateSpace::enumerate(&p).unwrap();
        let r = check_variant(&space, &p, &Predicate::always_true(), &target(&p), |s| {
            s.slots()[0] as u64
        });
        assert_eq!(r, VariantReport::Valid);
    }

    #[test]
    fn increasing_variant_rejected() {
        let p = countdown(5);
        let space = StateSpace::enumerate(&p).unwrap();
        let r = check_variant(&space, &p, &Predicate::always_true(), &target(&p), |s| {
            10 - s.slots()[0] as u64
        });
        assert!(matches!(r, VariantReport::Increases { .. }));
    }

    #[test]
    fn plateau_variant_rejected() {
        // Region cycles while the candidate variant stays constant.
        let mut b = Program::builder("plateau");
        let x = b.var("x", Domain::Bool);
        let y = b.var("y", Domain::Bool);
        b.closure_action(
            "toggle",
            [x, y],
            [y],
            move |s| !s.get_bool(x),
            move |s| s.toggle(y),
        );
        b.convergence_action(
            "exit",
            [x],
            [x],
            move |s| !s.get_bool(x),
            move |s| s.set_bool(x, true),
        );
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        let s = Predicate::new("x", [x], move |st| st.get_bool(x));
        let r = check_variant(&space, &p, &Predicate::always_true(), &s, |_| 1);
        assert!(matches!(r, VariantReport::StuckPlateau { .. }));
    }

    #[test]
    fn deadlocked_variant_rejected() {
        let mut b = Program::builder("stuck");
        let x = b.var("x", Domain::range(0, 2));
        b.convergence_action("go", [x], [x], move |s| s.get(x) == 1, move |s| s.set(x, 0));
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        let r = check_variant(&space, &p, &Predicate::always_true(), &target(&p), |s| {
            s.slots()[0] as u64
        });
        assert!(matches!(r, VariantReport::Deadlock { .. }));
    }
}
