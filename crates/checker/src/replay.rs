//! Constraint-level replay of witness computations.
//!
//! The paper's §4 design method decomposes the invariant into constraints
//! `c.1 .. c.n`, each repaired by its own convergence action. A
//! counterexample or witness path from the checker
//! ([`crate::convergence::shortest_path_to`]) is a sequence of states and
//! actions; replaying it against the constraint list turns the raw path
//! into the object the paper reasons about — *which constraint was
//! violated when, and which action re-established it*. The transitions
//! are journaled as [`Event::ConstraintViolated`] /
//! [`Event::ConstraintRepaired`] records, which the `nonmask-run trace`
//! subcommand renders as a repair timeline.

use nonmask_obs::{Event, Journal};
use nonmask_program::{Predicate, Program};

use crate::convergence::PathStep;

/// One constraint-status transition observed while replaying a path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintTransition {
    /// Zero-based step index in the replayed computation.
    pub step: usize,
    /// Name of the constraint whose status changed.
    pub constraint: String,
    /// `Some(action)` when the constraint was repaired by that action;
    /// `None` when it was violated (at step 0, by the initial state
    /// itself; later, by the step's action).
    pub repaired_by: Option<String>,
}

/// Replay `path` against `constraints`, journaling and returning every
/// violation/repair transition in step order.
///
/// Step 0 reports each constraint the initial state already violates;
/// each later step reports constraints whose truth value flipped under
/// that step's action. Constraints are evaluated in the given order, so
/// the transition order within one step is deterministic.
pub fn replay_constraints(
    program: &Program,
    path: &[PathStep],
    constraints: &[Predicate],
    journal: &Journal,
) -> Vec<ConstraintTransition> {
    let mut transitions = Vec::new();
    let Some(first) = path.first() else {
        return transitions;
    };
    let mut held: Vec<bool> = constraints.iter().map(|c| c.holds(&first.state)).collect();
    for (ci, constraint) in constraints.iter().enumerate() {
        if !held[ci] {
            transitions.push(ConstraintTransition {
                step: 0,
                constraint: constraint.name().to_string(),
                repaired_by: None,
            });
        }
    }
    for (step, path_step) in path.iter().enumerate().skip(1) {
        let action = path_step
            .action
            .map(|a| program.action(a).name().to_string());
        for (ci, constraint) in constraints.iter().enumerate() {
            let holds = constraint.holds(&path_step.state);
            if holds == held[ci] {
                continue;
            }
            held[ci] = holds;
            transitions.push(ConstraintTransition {
                step,
                constraint: constraint.name().to_string(),
                repaired_by: holds.then(|| action.clone().unwrap_or_default()),
            });
        }
    }
    for t in &transitions {
        journal.emit_with(|| match &t.repaired_by {
            Some(action) => Event::ConstraintRepaired {
                step: t.step as u64,
                constraint: t.constraint.clone(),
                action: action.clone(),
            },
            None => Event::ConstraintViolated {
                step: t.step as u64,
                constraint: t.constraint.clone(),
            },
        });
    }
    transitions
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_obs::Record;
    use nonmask_program::Domain;

    /// A two-variable countdown with one convergence action per variable.
    fn setup() -> (Program, Vec<Predicate>) {
        let mut b = Program::builder("pair");
        let x = b.var("x", Domain::range(0, 2));
        let y = b.var("y", Domain::range(0, 2));
        b.convergence_action(
            "fix-x",
            [x],
            [x],
            move |s| s.get(x) > 0,
            move |s| s.set(x, 0),
        );
        b.convergence_action(
            "fix-y",
            [y],
            [y],
            move |s| s.get(y) > 0,
            move |s| s.set(y, 0),
        );
        let p = b.build();
        let constraints = vec![
            Predicate::new("x=0", [x], move |s| s.get(x) == 0),
            Predicate::new("y=0", [y], move |s| s.get(y) == 0),
        ];
        (p, constraints)
    }

    fn step(program: &Program, action: &str, state: [i64; 2]) -> PathStep {
        PathStep {
            action: program
                .action_ids()
                .find(|&a| program.action(a).name() == action),
            state: program.state_from(state).unwrap(),
        }
    }

    #[test]
    fn replay_reports_initial_violations_and_repairs() {
        let (p, constraints) = setup();
        let path = vec![
            PathStep {
                action: None,
                state: p.state_from([2, 1]).unwrap(),
            },
            step(&p, "fix-x", [0, 1]),
            step(&p, "fix-y", [0, 0]),
        ];
        let (journal, buffer) = Journal::memory();
        let transitions = replay_constraints(&p, &path, &constraints, &journal);
        journal.flush();

        assert_eq!(
            transitions,
            vec![
                ConstraintTransition {
                    step: 0,
                    constraint: "x=0".into(),
                    repaired_by: None,
                },
                ConstraintTransition {
                    step: 0,
                    constraint: "y=0".into(),
                    repaired_by: None,
                },
                ConstraintTransition {
                    step: 1,
                    constraint: "x=0".into(),
                    repaired_by: Some("fix-x".into()),
                },
                ConstraintTransition {
                    step: 2,
                    constraint: "y=0".into(),
                    repaired_by: Some("fix-y".into()),
                },
            ]
        );

        // The journal carries the same transitions, in the same order.
        let records: Vec<Record> = buffer
            .contents()
            .lines()
            .map(|l| Event::parse_line(l).expect("valid journal line"))
            .collect();
        assert_eq!(records.len(), transitions.len());
        assert!(matches!(
            &records[2].event,
            Event::ConstraintRepaired { step: 1, constraint, action }
                if constraint == "x=0" && action == "fix-x"
        ));
    }

    #[test]
    fn satisfied_path_yields_no_transitions() {
        let (p, constraints) = setup();
        let path = vec![PathStep {
            action: None,
            state: p.state_from([0, 0]).unwrap(),
        }];
        let journal = Journal::disabled();
        assert!(replay_constraints(&p, &path, &constraints, &journal).is_empty());
    }

    #[test]
    fn empty_path_is_fine() {
        let (p, constraints) = setup();
        assert!(replay_constraints(&p, &[], &constraints, &Journal::disabled()).is_empty());
    }

    #[test]
    fn a_reviolated_constraint_is_reported_again() {
        let (p, constraints) = setup();
        let path = vec![
            PathStep {
                action: None,
                state: p.state_from([1, 0]).unwrap(),
            },
            step(&p, "fix-x", [0, 0]),
            // An adversarial hop back out (as a fault would produce).
            step(&p, "fix-y", [1, 0]),
        ];
        let transitions = replay_constraints(&p, &path, &constraints, &Journal::disabled());
        let kinds: Vec<(usize, bool)> = transitions
            .iter()
            .map(|t| (t.step, t.repaired_by.is_some()))
            .collect();
        assert_eq!(kinds, vec![(0, false), (1, true), (2, false)]);
    }
}
