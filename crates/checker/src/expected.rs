//! Expected convergence time under a uniformly random daemon.
//!
//! The worst-case move count ([`crate::bounds::worst_case_moves`]) bounds
//! an *adversarial* daemon; the expected move count under a *uniformly
//! random* daemon is what simulation actually observes. This module solves
//! the absorbing-Markov-chain equations
//!
//! ```text
//! E[s] = 0                                   if s ∈ S
//! E[s] = 1 + (1/|enabled(s)|) Σ_a E[succ(s, a)]   otherwise
//! ```
//!
//! by Gauss–Seidel value iteration over the region `T ∧ ¬S`.

use nonmask_program::{Predicate, Program};

use crate::space::{StateId, StateSpace};

/// The result of an expected-moves analysis.
#[derive(Debug, Clone)]
pub struct ExpectedMoves {
    region: Vec<StateId>,
    values: Vec<f64>,
    converged: bool,
}

impl ExpectedMoves {
    /// Expected moves from the region state with space id `id`, `Some(0.0)`
    /// for states already in `S ∨ ¬T`… or `None` when `id` is outside the
    /// analyzed region (i.e. already converged / out of scope).
    pub fn from_state(&self, id: StateId) -> Option<f64> {
        self.region.binary_search(&id).ok().map(|i| self.values[i])
    }

    /// The maximum expected moves over the region (`0.0` if empty).
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// The mean expected moves over the region (`0.0` if empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Whether value iteration converged (it fails to when some region
    /// state cannot reach `S` at all, e.g. a deadlock or inescapable
    /// cycle — the expectation is infinite there).
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Number of region states analyzed.
    pub fn region_len(&self) -> usize {
        self.region.len()
    }
}

/// Solve for the expected number of moves to reach `to` from every state
/// of `from ∧ ¬to`, under the uniformly random daemon.
///
/// `tolerance` is the Gauss–Seidel stopping threshold (e.g. `1e-9`);
/// `max_sweeps` caps the iteration count.
pub fn expected_moves(
    space: &StateSpace,
    program: &Program,
    from: &Predicate,
    to: &Predicate,
    tolerance: f64,
    max_sweeps: u32,
) -> ExpectedMoves {
    let _ = program;
    let mut local = vec![usize::MAX; space.len()];
    let mut region: Vec<StateId> = Vec::new();
    let mut scratch = space.scratch_state();
    for id in space.ids() {
        space.decode_state(id, &mut scratch);
        if from.holds(&scratch) && !to.holds(&scratch) {
            local[id.index()] = region.len();
            region.push(id);
        }
    }
    let n = region.len();
    let mut values = vec![0.0f64; n];
    if n == 0 {
        return ExpectedMoves {
            region,
            values,
            converged: true,
        };
    }

    // Precompute successor lists in region-local terms: Some(j) = region
    // state j, None = absorbed (reached `to` or left `from`).
    let succs: Vec<Vec<Option<usize>>> = region
        .iter()
        .map(|&id| {
            space
                .successor_ids(id)
                .iter()
                .map(|&t| {
                    let li = local[t.index()];
                    (li != usize::MAX).then_some(li)
                })
                .collect()
        })
        .collect();

    let mut converged = false;
    for _ in 0..max_sweeps {
        let mut delta: f64 = 0.0;
        for i in 0..n {
            if succs[i].is_empty() {
                // Deadlock outside S: infinite expectation; iteration
                // cannot converge.
                if !values[i].is_infinite() {
                    values[i] = f64::INFINITY;
                    delta = f64::INFINITY;
                }
                continue;
            }
            let mean: f64 = succs[i]
                .iter()
                .map(|s| s.map_or(0.0, |j| values[j]))
                .sum::<f64>()
                / succs[i].len() as f64;
            let next = 1.0 + mean;
            delta = delta.max((next - values[i]).abs());
            values[i] = next;
        }
        if delta < tolerance {
            converged = true;
            break;
        }
        if values.iter().any(|v| v.is_infinite()) {
            break;
        }
    }

    ExpectedMoves {
        region,
        values,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_program::Domain;

    #[test]
    fn deterministic_chain_has_exact_expectation() {
        // One enabled action per state: expectation = distance.
        let mut b = Program::builder("down");
        let x = b.var("x", Domain::range(0, 5));
        b.convergence_action(
            "dec",
            [x],
            [x],
            move |s| s.get(x) > 0,
            move |s| {
                let v = s.get(x);
                s.set(x, v - 1);
            },
        );
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        let s = Predicate::new("x=0", [x], move |st| st.get(x) == 0);
        let em = expected_moves(&space, &p, &Predicate::always_true(), &s, 1e-12, 10_000);
        assert!(em.converged());
        assert_eq!(em.region_len(), 5);
        assert!((em.max() - 5.0).abs() < 1e-9);
        assert!((em.mean() - 3.0).abs() < 1e-9, "mean of 1..=5");
        let id5 = space.id_of(&p.state_from([5]).unwrap()).unwrap();
        assert!((em.from_state(id5).unwrap() - 5.0).abs() < 1e-9);
        let id0 = space.id_of(&p.state_from([0]).unwrap()).unwrap();
        assert_eq!(em.from_state(id0), None, "already in S");
    }

    #[test]
    fn coin_flip_walk_expectation() {
        // From x=1: half the time exit (x=0), half the time go to x=2 which
        // deterministically returns to 1. E[1] = 1 + (E[2])/2, E[2] = 1 + E[1]
        // → E[1] = 3, E[2] = 4.
        let mut b = Program::builder("walk");
        let x = b.var("x", Domain::range(0, 2));
        b.convergence_action(
            "exit",
            [x],
            [x],
            move |s| s.get(x) == 1,
            move |s| s.set(x, 0),
        );
        b.convergence_action("up", [x], [x], move |s| s.get(x) == 1, move |s| s.set(x, 2));
        b.convergence_action(
            "down",
            [x],
            [x],
            move |s| s.get(x) == 2,
            move |s| s.set(x, 1),
        );
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        let s = Predicate::new("x=0", [x], move |st| st.get(x) == 0);
        let em = expected_moves(&space, &p, &Predicate::always_true(), &s, 1e-12, 100_000);
        assert!(em.converged());
        let id1 = space.id_of(&p.state_from([1]).unwrap()).unwrap();
        let id2 = space.id_of(&p.state_from([2]).unwrap()).unwrap();
        assert!((em.from_state(id1).unwrap() - 3.0).abs() < 1e-6);
        assert!((em.from_state(id2).unwrap() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn deadlock_fails_to_converge() {
        let mut b = Program::builder("stuck");
        let x = b.var("x", Domain::range(0, 1));
        let _ = x;
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        let s = Predicate::new("x=0", [x], move |st| st.get(x) == 0);
        let em = expected_moves(&space, &p, &Predicate::always_true(), &s, 1e-9, 100);
        assert!(!em.converged());
    }

    #[test]
    fn empty_region_is_trivially_converged() {
        let mut b = Program::builder("t");
        b.var("x", Domain::Bool);
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        let em = expected_moves(
            &space,
            &p,
            &Predicate::always_true(),
            &Predicate::always_true(),
            1e-9,
            10,
        );
        assert!(em.converged());
        assert_eq!(em.region_len(), 0);
        assert_eq!(em.max(), 0.0);
        assert_eq!(em.mean(), 0.0);
    }
}
