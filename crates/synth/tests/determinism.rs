//! Synthesis is a *deterministic* search: the chosen action set, the
//! rendered design, the metrics, and the journaled phase trace are
//! bit-identical for every worker-thread count and certification chunk
//! size. Only wall-clock timestamps may differ, so journals are compared
//! as parsed event sequences.

use nonmask_obs::{parse_journal, Event, Journal};
use nonmask_synth::{specs, synthesize, SynthOptions};

/// Run one synthesis and return everything that must be invariant.
fn fingerprint(
    spec: &nonmask_synth::SynthSpec,
    threads: usize,
    chunk: usize,
) -> (String, Vec<Event>, nonmask_synth::SynthMetrics, u64) {
    let (journal, buffer) = Journal::memory();
    let out = synthesize(spec, &SynthOptions { threads, chunk }, &journal).unwrap();
    journal.flush();
    let events: Vec<Event> = parse_journal(&buffer.contents())
        .unwrap()
        .into_iter()
        .map(|r| r.event)
        .collect();
    (out.render(), events, out.metrics, out.distance)
}

#[test]
fn coloring_is_invariant_across_threads_and_chunks() {
    let spec = specs::coloring(5, 3);
    let baseline = fingerprint(&spec, 1, 1);
    for threads in [1usize, 4, 7] {
        for chunk in [1usize, 3, 8, 64] {
            if (threads, chunk) == (1, 1) {
                continue;
            }
            let got = fingerprint(&spec, threads, chunk);
            assert_eq!(baseline.0, got.0, "render differs at t={threads} c={chunk}");
            assert_eq!(
                baseline.1, got.1,
                "journal differs at t={threads} c={chunk}"
            );
            assert_eq!(baseline.2, got.2, "metrics differ at t={threads} c={chunk}");
            assert_eq!(
                baseline.3, got.3,
                "distance differs at t={threads} c={chunk}"
            );
        }
    }
}

#[test]
fn token_ring_is_invariant_across_threads_and_chunks() {
    let spec = specs::token_ring_windowed(4, 3);
    let baseline = fingerprint(&spec, 1, 1);
    for (threads, chunk) in [(4usize, 3usize), (7, 8), (2, 64)] {
        let got = fingerprint(&spec, threads, chunk);
        assert_eq!(baseline.0, got.0, "render differs at t={threads} c={chunk}");
        assert_eq!(
            baseline.1, got.1,
            "journal differs at t={threads} c={chunk}"
        );
        assert_eq!(baseline.2, got.2, "metrics differ at t={threads} c={chunk}");
    }
}

#[test]
fn journal_follows_the_phase_order() {
    let spec = specs::coloring(3, 3);
    let (_, events, _, _) = fingerprint(&spec, 2, 2);
    let phases: Vec<String> = events
        .iter()
        .map(|e| match e {
            Event::Synth { phase, .. } => phase.clone(),
            other => panic!("non-synth event in a synthesis journal: {other:?}"),
        })
        .collect();
    // k=2 constraints: grammar×2, classify, prune×2, certify×2,
    // select×2, verify.
    assert_eq!(
        phases,
        vec![
            "grammar", "grammar", "classify", "prune", "prune", "certify", "certify", "select",
            "select", "verify"
        ]
    );
}
