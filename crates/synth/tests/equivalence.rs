//! The headline claim: from the decompositions alone, the synthesizer
//! re-derives repairs **extensionally identical** to the paper's
//! hand-written ones.
//!
//! State ids are a pure mixed-radix function of the variable layout, and
//! the synth specs reproduce the hand programs' layouts exactly, so a
//! synthesized action and its hand counterpart can be compared
//! transition-for-transition across their separately enumerated spaces.

use nonmask::TheoremOutcome;
use nonmask_checker::{StateId, StateSpace};
use nonmask_obs::Journal;
use nonmask_program::{ActionId, Program};
use nonmask_protocols::coloring::TreeColoring;
use nonmask_protocols::diffusing::DiffusingComputation;
use nonmask_protocols::token_ring::windowed_design;
use nonmask_protocols::Tree;
use nonmask_synth::{specs, synthesize, SynthOptions, SynthResult};

fn synth(spec: &nonmask_synth::SynthSpec) -> SynthResult {
    synthesize(spec, &SynthOptions::default(), &Journal::disabled()).expect("synthesis succeeds")
}

/// Sorted successor set of `action` at state `i`.
fn succs(space: &StateSpace, i: usize, action: ActionId) -> Vec<u32> {
    let mut out: Vec<u32> = space
        .successors(StateId::from_index(i))
        .into_iter()
        .filter(|(a, _)| *a == action)
        .map(|(_, s)| s.index() as u32)
        .collect();
    out.sort_unstable();
    out
}

/// Assert two actions of two same-layout programs have identical
/// extensions (same enabledness, same successors, at every state).
fn assert_same_extension(
    hand: &(StateSpace, &Program),
    hand_action: ActionId,
    synthd: &(StateSpace, &Program),
    synth_action: ActionId,
    label: &str,
) {
    assert_eq!(hand.0.len(), synthd.0.len(), "{label}: state spaces differ");
    for i in 0..hand.0.len() {
        assert_eq!(
            succs(&hand.0, i, hand_action),
            succs(&synthd.0, i, synth_action),
            "{label}: transitions differ at state {i}"
        );
    }
}

/// Check the two programs enumerate identical variable layouts, so the
/// state-id bijection is shared and extension comparison is meaningful.
fn assert_same_layout(hand: &Program, synthd: &Program) {
    let hv: Vec<_> = hand
        .var_ids()
        .map(|v| hand.var(v).name().to_string())
        .collect();
    let sv: Vec<_> = synthd
        .var_ids()
        .map(|v| synthd.var(v).name().to_string())
        .collect();
    assert_eq!(hv, sv, "variable layouts must match");
}

#[test]
fn token_ring_resynthesizes_the_papers_layered_design() {
    let spec = specs::token_ring_windowed(4, 3);
    let out = synth(&spec);

    assert!(out.report.is_tolerant());
    assert!(
        matches!(out.report.theorem, TheoremOutcome::Theorem3 { layers: 2 }),
        "expected the paper's two-layer partition, got {:?}",
        out.report.theorem.name()
    );
    assert_eq!(out.distance, 0, "every guard should be exactly required");
    // The derived layers are ge.* below eq.*.
    assert_eq!(out.layers, vec![vec![0, 1, 2], vec![3, 4, 5]]);

    let (hand_design, handles) = windowed_design(4, 3).unwrap();
    let hand_prog = hand_design.program();
    let synth_prog = out.design.program();
    assert_same_layout(hand_prog, synth_prog);
    let hand_space = StateSpace::enumerate(hand_prog).unwrap();
    let synth_space = StateSpace::enumerate(synth_prog).unwrap();
    let h = (hand_space, hand_prog);
    let s = (synth_space, synth_prog);

    // Base action: the root increment.
    assert_same_extension(
        &h,
        handles.root,
        &s,
        ActionId::from_index(0),
        "root increment",
    );
    // repair.ge.j ≡ hand repair-ge@j; repair.eq.j ≡ hand copy@j.
    for j in 1..4usize {
        assert_same_extension(
            &h,
            handles.layer1[j - 1],
            &s,
            ActionId::from_index(1 + (j - 1)),
            &format!("repair.ge.{j}"),
        );
        assert_same_extension(
            &h,
            handles.layer2[j - 1],
            &s,
            ActionId::from_index(4 + (j - 1)),
            &format!("repair.eq.{j}"),
        );
    }

    // Same certificate as the hand design.
    let hand_report = hand_design.verify().unwrap();
    assert_eq!(out.report.worst_case_moves, hand_report.worst_case_moves);
}

#[test]
fn diffusing_resynthesizes_the_merged_propagate_repair() {
    let spec = specs::diffusing(7);
    let out = synth(&spec);

    assert!(out.report.is_tolerant());
    assert!(out.report.theorem.applies());
    assert_eq!(out.distance, 0);
    assert_eq!(out.layers.len(), 1, "R.j are pairwise incomparable");

    let dc = DiffusingComputation::new(&Tree::binary(7));
    let hand_prog = dc.program();
    let synth_prog = out.design.program();
    assert_same_layout(hand_prog, synth_prog);
    let hand_space = StateSpace::enumerate(hand_prog).unwrap();
    let synth_space = StateSpace::enumerate(synth_prog).unwrap();
    let h = (hand_space, hand_prog);
    let s = (synth_space, synth_prog);

    // Synth program layout: initiate.0, reflect.0..reflect.6, then
    // repair.R.1..repair.R.6.
    assert_same_extension(
        &h,
        dc.initiate_action(),
        &s,
        ActionId::from_index(0),
        "initiate",
    );
    for j in 0..7usize {
        assert_same_extension(
            &h,
            dc.reflect_action(j),
            &s,
            ActionId::from_index(1 + j),
            &format!("reflect.{j}"),
        );
    }
    for j in 1..7usize {
        assert_same_extension(
            &h,
            dc.combined_action(j).unwrap(),
            &s,
            ActionId::from_index(8 + (j - 1)),
            &format!("repair.R.{j} vs propagate/repair@{j}"),
        );
    }
}

#[test]
fn coloring_synthesizes_the_recoloring_action_from_scratch() {
    let spec = specs::coloring(7, 3);
    let out = synth(&spec);

    assert!(out.report.is_tolerant());
    assert!(out.report.theorem.applies());
    assert_eq!(out.distance, 0);

    let tc = TreeColoring::new(&Tree::binary(7), 3);
    let hand_prog = tc.program();
    let synth_prog = out.design.program();
    assert_same_layout(hand_prog, synth_prog);
    let hand_space = StateSpace::enumerate(hand_prog).unwrap();
    let synth_space = StateSpace::enumerate(synth_prog).unwrap();
    let h = (hand_space, hand_prog);
    let s = (synth_space, synth_prog);

    // Hand program: recolor@1..recolor@6 (ids 0..6); synth: repair.R.1..
    for j in 1..7usize {
        assert_same_extension(
            &h,
            ActionId::from_index(j - 1),
            &s,
            ActionId::from_index(j - 1),
            &format!("repair.R.{j} vs recolor@{j}"),
        );
    }
}

#[test]
fn token_ring_render_matches_the_committed_golden() {
    let out = synth(&specs::token_ring_windowed(4, 3));
    let golden = include_str!("../golden/token_ring.txt");
    assert_eq!(
        out.render(),
        golden,
        "synthesized design drifted from golden/token_ring.txt \
         (regenerate with `cargo run -p nonmask-synth --example golden_token_ring`)"
    );
}

#[test]
fn pruning_saves_at_least_10x_oracle_calls_on_the_token_ring() {
    let out = synth(&specs::token_ring_windowed(4, 3));
    let m = out.metrics;
    assert!(m.candidates >= 400, "grammar too small: {}", m.candidates);
    assert!(
        m.oracle_calls * 10 <= m.oracle_calls_unpruned,
        "prune saves only {}x ({} vs {})",
        m.oracle_calls_unpruned as f64 / m.oracle_calls as f64,
        m.oracle_calls,
        m.oracle_calls_unpruned
    );
}
