//! The synthesis pipeline: pooled enumeration → implication lattice →
//! attribution prune → work-stealing certification → selection → final
//! verification.
//!
//! Everything downstream of the grammar runs against **one** pooled state
//! space (the base program plus every candidate action), so the whole
//! candidate space costs a single enumeration and a single
//! [`attribute_constraints`] sweep; only the survivors pay per-candidate
//! oracle batteries. The battery is distributed over worker threads with
//! [`steal_tasks`], and every verdict, metric, and journal record is
//! bit-identical across thread counts and chunk sizes: workers only
//! compute, the main thread journals in a fixed phase order, and
//! certification never consults wall-clock state.

use nonmask::{CheckOptions, Design, DesignBuilder, ToleranceReport};
use nonmask_checker::{
    attribute_constraints, preserves_given_bits, steal_tasks, Bitset, CheckError, StateSpace,
};
use nonmask_graph::{ConstraintRef, Layering, NodePartition};
use nonmask_lang::{compile_def_with_processes, compile_predicate, ProgramDef};
use nonmask_obs::{Event, Journal};
use nonmask_program::ActionId;

use crate::grammar::{self, Candidate, SynthSpec};
use crate::lattice::classify;
use crate::SynthError;

/// How many candidate combinations the final-verification fallback may
/// try before giving up. The selection heuristic picks the right
/// combination on the first attempt for every spec in [`crate::specs`];
/// the odometer exists so a near-miss grammar extension degrades to a
/// slower search instead of a hard failure.
const MAX_ATTEMPTS: usize = 16;

/// Tuning knobs for [`synthesize`]. Neither affects any result bit.
#[derive(Debug, Clone, Copy)]
pub struct SynthOptions {
    /// Worker threads for every sweep; `0` auto-detects.
    pub threads: usize,
    /// Survivors per work-stealing certification task.
    pub chunk: usize,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            threads: 0,
            chunk: 8,
        }
    }
}

/// The synthesized repair for one constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChosenAction {
    /// Constraint name from the spec.
    pub constraint: String,
    /// Name of the synthesized action (`repair.<constraint>`).
    pub action_name: String,
    /// Grammar guard index of the winning candidate.
    pub guard_index: usize,
    /// Grammar effect index of the winning candidate.
    pub effect_index: usize,
    /// States where the repair is enabled beyond the required region —
    /// `0` means the guard is exactly the region convergence demands.
    pub extras: u64,
}

/// Work accounting for the prune-vs-enumerate comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SynthMetrics {
    /// States in the pooled space.
    pub states: u64,
    /// Candidates the grammar produced.
    pub candidates: u64,
    /// Candidates surviving the attribution prune.
    pub survivors: u64,
    /// Survivors that passed the certification battery.
    pub certified: u64,
    /// Full-space oracle sweeps actually spent on certification.
    pub oracle_calls: u64,
    /// Sweeps the same battery would cost without the attribution prune
    /// (every candidate pays its full battery).
    pub oracle_calls_unpruned: u64,
    /// Attribution sweeps over the pooled space (always 1).
    pub attribution_sweeps: u64,
    /// Final-verification attempts (1 = first selection verified).
    pub verify_attempts: u64,
}

/// A certified design plus everything needed to replay or audit it.
pub struct SynthResult {
    /// Spec name.
    pub spec_name: String,
    /// The synthesized program definition (base + `repair.*` actions).
    pub def: ProgramDef,
    /// The assembled design (partition, constraints, layering).
    pub design: Design,
    /// The checker's certificate for [`SynthResult::design`].
    pub report: ToleranceReport,
    /// Derived hierarchical partition (constraint indices, lowest first).
    pub layers: Vec<Vec<usize>>,
    /// Winning candidate per constraint, in spec order.
    pub chosen: Vec<ChosenAction>,
    /// Ideal-stabilization distance: total extra enabled states across
    /// the chosen repairs (0 = every guard is exactly the required
    /// region).
    pub distance: u64,
    /// Work accounting.
    pub metrics: SynthMetrics,
}

impl SynthResult {
    /// Render the design as parseable surface syntax followed by a
    /// `#`-commented certificate trailer — the golden-file format.
    pub fn render(&self) -> String {
        let mut out = nonmask_lang::pretty(&self.def);
        out.push_str(&format!("# theorem: {}\n", self.report.theorem.name()));
        if let Some(w) = self.report.worst_case_moves {
            out.push_str(&format!("# worst-case moves: {w}\n"));
        }
        out.push_str(&format!("# distance: {}\n", self.distance));
        let layers: Vec<String> = self
            .layers
            .iter()
            .map(|l| {
                let names: Vec<&str> = l
                    .iter()
                    .map(|&i| self.chosen[i].constraint.as_str())
                    .collect();
                names.join(" ")
            })
            .collect();
        out.push_str(&format!("# layers: [{}]\n", layers.join(" | ")));
        for ch in &self.chosen {
            out.push_str(&format!(
                "# {} <- {} (guard {}, effect {}, extras {})\n",
                ch.constraint, ch.action_name, ch.guard_index, ch.effect_index, ch.extras
            ));
        }
        out
    }
}

/// Per-survivor battery verdict.
#[derive(Debug, Clone, Copy)]
struct Verdict {
    flat: usize,
    certified: bool,
    extras: u64,
    calls: u64,
}

fn synth_event(phase: &str, detail: String, candidates: u64, survivors: u64) -> Event {
    Event::Synth {
        phase: phase.to_string(),
        detail,
        candidates,
        survivors,
    }
}

/// Derive a certified design for `spec`.
///
/// Progress is journaled as [`Event::Synth`] records in a fixed phase
/// order (`grammar`, `classify`, `prune`, `certify`, `select`,
/// `verify`); the journal's *event sequence* is identical for every
/// `threads`/`chunk` combination.
///
/// # Errors
///
/// See [`SynthError`]; notably [`SynthError::NoCertified`] when the
/// grammar contains no certifiable repair for some constraint.
pub fn synthesize(
    spec: &SynthSpec,
    opts: &SynthOptions,
    journal: &Journal,
) -> Result<SynthResult, SynthError> {
    let k = spec.constraints.len();
    if k == 0 {
        return Err(SynthError::BadSpec {
            message: "spec has no constraints".into(),
        });
    }
    let sopts = CheckOptions {
        threads: opts.threads,
        ..CheckOptions::default()
    };
    let base_count = spec.base.actions.len();

    // Phase 1: grammar.
    let mut flat: Vec<Candidate> = Vec::new();
    let mut per_count = Vec::with_capacity(k);
    for ci in 0..k {
        let cands = grammar::candidates(spec, ci)?;
        per_count.push(cands.len());
        journal.emit_with(|| {
            synth_event(
                "grammar",
                spec.constraints[ci].name.clone(),
                cands.len() as u64,
                cands.len() as u64,
            )
        });
        flat.extend(cands);
    }

    // Pooled program: base + every candidate, one enumeration.
    let mut pooled = spec.base.clone();
    pooled.actions.extend(flat.iter().map(|c| c.action.clone()));
    let pool_prog = compile_def_with_processes(&pooled)?;
    let space = StateSpace::enumerate_with_options(&pool_prog, sopts)?;

    let c_preds: Vec<_> = spec
        .constraints
        .iter()
        .map(|c| compile_predicate(&pool_prog, &pooled, c.name.clone(), &c.expr))
        .collect::<Result<_, _>>()?;
    let s_pred = compile_predicate(&pool_prog, &pooled, "S", &spec.goal)?;
    let c_bits: Vec<Bitset> = c_preds
        .iter()
        .map(|p| Bitset::for_predicate(&space, p, sopts))
        .collect::<Result<_, _>>()?;
    let s_bits = Bitset::for_predicate(&space, &s_pred, sopts)?;

    // Phase 2: classify extensions into the implication lattice.
    let lat = classify(&c_bits);
    journal.emit_with(|| {
        let rendered: Vec<String> = lat
            .layers
            .iter()
            .map(|l| {
                let names: Vec<&str> = l
                    .iter()
                    .map(|&i| spec.constraints[i].name.as_str())
                    .collect();
                names.join(" ")
            })
            .collect();
        synth_event(
            "classify",
            format!("[{}]", rendered.join(" | ")),
            k as u64,
            lat.layers.len() as u64,
        )
    });
    let lower: Vec<Vec<usize>> = (0..k).map(|i| lat.lower(i)).collect();

    // Phase 3: one attribution sweep prunes the candidate space. A
    // candidate survives iff it repairs its constraint, never exits the
    // goal, and never exits any strictly lower constraint.
    let mut attr_preds = c_preds.clone();
    attr_preds.push(s_pred.clone());
    let s_idx = k;
    let attr = attribute_constraints(&space, &pool_prog, &attr_preds, sopts)?;
    let mut survivors: Vec<usize> = Vec::new();
    let mut survivors_per = vec![0usize; k];
    for (fi, cand) in flat.iter().enumerate() {
        let aid = ActionId::from_index(base_count + fi);
        let ci = cand.constraint;
        let keep = attr.repairs(aid, ci)
            && attr.preserves(aid, s_idx)
            && lower[ci].iter().all(|&j| attr.preserves(aid, j));
        if keep {
            survivors.push(fi);
            survivors_per[ci] += 1;
        }
    }
    for ci in 0..k {
        journal.emit_with(|| {
            synth_event(
                "prune",
                spec.constraints[ci].name.clone(),
                per_count[ci] as u64,
                survivors_per[ci] as u64,
            )
        });
    }

    // Required repair region per constraint: the violation states the
    // convergence proof needs covered (constraint false, lower layers
    // already established), plus the merge trigger's region.
    let mut required: Vec<Bitset> = Vec::with_capacity(k);
    for (ci, c) in spec.constraints.iter().enumerate() {
        let mut req = c_bits[ci].not();
        for &j in &lower[ci] {
            req = req.and(&c_bits[j]);
        }
        if let Some(t) = &c.trigger {
            let tp = compile_predicate(&pool_prog, &pooled, format!("trigger.{}", c.name), t)?;
            let tb = Bitset::for_predicate(&space, &tp, sopts)?;
            req = req.or(&tb);
        }
        required.push(req);
    }
    // Theorem 3 assumption per layer: outside the goal, lower layers hold.
    let not_s = s_bits.not();
    let assuming: Vec<Bitset> = (0..lat.layers.len())
        .map(|l| {
            let mut a = not_s.clone();
            for layer in &lat.layers[..l] {
                for &j in layer {
                    a = a.and(&c_bits[j]);
                }
            }
            a
        })
        .collect();

    // Phase 4: per-survivor certification battery, work-stealing over
    // fixed-size chunks. Each battery item is one full-space sweep; the
    // battery never short-circuits, so pruned and unpruned cost models
    // are directly comparable.
    let workers = if opts.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        opts.threads
    };
    let serial = CheckOptions {
        threads: 1,
        ..sopts
    };
    let chunk = opts.chunk.max(1);
    let tasks = survivors.len().div_ceil(chunk);
    let battery: Result<Vec<Verdict>, CheckError> = (|| {
        let per_task = steal_tasks(tasks, workers, |t| -> Result<Vec<Verdict>, CheckError> {
            let lo = t * chunk;
            let hi = (lo + chunk).min(survivors.len());
            let mut out = Vec::with_capacity(hi - lo);
            for &fi in &survivors[lo..hi] {
                let cand = &flat[fi];
                let ci = cand.constraint;
                let aid = ActionId::from_index(base_count + fi);
                let guard = compile_predicate(
                    &pool_prog,
                    &pooled,
                    cand.action.name.clone(),
                    &cand.action.guard,
                )
                .map_err(|e| CheckError::WorkerFailed {
                    payload: format!("guard compile: {e}"),
                })?;
                let enabled = Bitset::for_predicate(&space, &guard, serial)?;
                let mut calls = 1u64;
                let covered = required[ci].and(&enabled.not()).count_ones() == 0;
                let extras = enabled.and(&required[ci].not()).count_ones() as u64;
                calls += 1;
                let mut ok = preserves_given_bits(&space, aid, &s_bits, &s_bits, serial)?.is_none()
                    && covered;
                for &j in &lower[ci] {
                    calls += 1;
                    let kept = preserves_given_bits(
                        &space,
                        aid,
                        &c_bits[j],
                        &assuming[lat.layer_of[ci]],
                        serial,
                    )?
                    .is_none();
                    ok = ok && kept;
                }
                out.push(Verdict {
                    flat: fi,
                    certified: ok,
                    extras,
                    calls,
                });
            }
            Ok(out)
        })?;
        let mut all = Vec::with_capacity(survivors.len());
        for chunk_result in per_task {
            all.extend(chunk_result?);
        }
        Ok(all)
    })();
    let verdicts = battery?;

    let oracle_calls: u64 = verdicts.iter().map(|v| v.calls).sum();
    let oracle_calls_unpruned: u64 = flat
        .iter()
        .map(|c| 2 + lower[c.constraint].len() as u64)
        .sum();

    // Rank certified candidates per constraint: fewest extras, then
    // earliest grammar position.
    let mut ranked: Vec<Vec<Verdict>> = vec![Vec::new(); k];
    let mut certified_per = vec![0usize; k];
    for v in &verdicts {
        if v.certified {
            let ci = flat[v.flat].constraint;
            ranked[ci].push(*v);
            certified_per[ci] += 1;
        }
    }
    for ci in 0..k {
        journal.emit_with(|| {
            synth_event(
                "certify",
                spec.constraints[ci].name.clone(),
                survivors_per[ci] as u64,
                certified_per[ci] as u64,
            )
        });
        if ranked[ci].is_empty() {
            return Err(SynthError::NoCertified {
                constraint: spec.constraints[ci].name.clone(),
            });
        }
        ranked[ci].sort_by_key(|v| {
            (
                v.extras,
                flat[v.flat].guard_index,
                flat[v.flat].effect_index,
            )
        });
    }

    // Phase 5: assemble the cheapest combination and verify end to end;
    // an odometer over the ranked lists is the (deterministic) fallback.
    let mut choice = vec![0usize; k];
    let mut last_summary = String::new();
    for attempt in 0..MAX_ATTEMPTS {
        let mut chosen = Vec::with_capacity(k);
        let mut def = spec.base.clone();
        for (ci, c) in spec.constraints.iter().enumerate() {
            let v = &ranked[ci][choice[ci]];
            let cand = &flat[v.flat];
            let mut action = cand.action.clone();
            action.name = format!("repair.{}", c.name);
            let ch = ChosenAction {
                constraint: c.name.clone(),
                action_name: action.name.clone(),
                guard_index: cand.guard_index,
                effect_index: cand.effect_index,
                extras: v.extras,
            };
            journal.emit_with(|| {
                synth_event(
                    "select",
                    format!(
                        "{} <- g{}/e{} extras={}",
                        ch.constraint, ch.guard_index, ch.effect_index, ch.extras
                    ),
                    certified_per[ci] as u64,
                    1,
                )
            });
            def.actions.push(action);
            chosen.push(ch);
        }

        let program = compile_def_with_processes(&def)?;
        let mut builder: DesignBuilder = Design::builder(program.clone())
            .partition(NodePartition::by_process(&program))
            .options(sopts)
            .invariant_override(compile_predicate(&program, &def, "S", &spec.goal)?);
        for (ci, c) in spec.constraints.iter().enumerate() {
            builder = builder.constraint(
                c.name.clone(),
                compile_predicate(&program, &def, c.name.clone(), &c.expr)?,
                ActionId::from_index(base_count + ci),
            );
        }
        if lat.layers.len() > 1 {
            builder = builder.layering(Layering::new(
                lat.layers
                    .iter()
                    .map(|l| l.iter().map(|&i| ConstraintRef(i)).collect::<Vec<_>>()),
            )?);
        }
        let design = builder.build()?;
        let report = design.verify()?;
        let ok = report.is_tolerant() && report.theorem.applies();
        journal.emit_with(|| {
            synth_event(
                "verify",
                format!(
                    "{} tolerant={}",
                    report.theorem.name(),
                    report.is_tolerant()
                ),
                attempt as u64 + 1,
                u64::from(ok),
            )
        });
        if ok {
            let distance = chosen.iter().map(|c| c.extras).sum();
            return Ok(SynthResult {
                spec_name: spec.name.clone(),
                def,
                design,
                report,
                layers: lat.layers.clone(),
                chosen,
                distance,
                metrics: SynthMetrics {
                    states: space.len() as u64,
                    candidates: flat.len() as u64,
                    survivors: survivors.len() as u64,
                    certified: verdicts.iter().filter(|v| v.certified).count() as u64,
                    oracle_calls,
                    oracle_calls_unpruned,
                    attribution_sweeps: 1,
                    verify_attempts: attempt as u64 + 1,
                },
            });
        }
        last_summary = report.summary();

        // Advance the odometer: first constraint with another ranked
        // candidate steps forward, everything before it resets.
        let mut i = 0;
        loop {
            if i == k {
                return Err(SynthError::VerifyFailed {
                    attempts: attempt + 1,
                    summary: last_summary,
                });
            }
            if choice[i] + 1 < ranked[i].len() {
                choice[i] += 1;
                for c in choice.iter_mut().take(i) {
                    *c = 0;
                }
                break;
            }
            i += 1;
        }
    }
    Err(SynthError::VerifyFailed {
        attempts: MAX_ATTEMPTS,
        summary: last_summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs;

    #[test]
    fn empty_spec_is_rejected() {
        let mut spec = specs::coloring(3, 3);
        spec.constraints.clear();
        let err = synthesize(&spec, &SynthOptions::default(), &Journal::disabled());
        assert!(matches!(err, Err(SynthError::BadSpec { .. })));
    }

    #[test]
    fn coloring_synthesizes_the_recoloring_repair() {
        let spec = specs::coloring(3, 3);
        let out = synthesize(&spec, &SynthOptions::default(), &Journal::disabled()).unwrap();
        assert!(out.report.is_tolerant());
        assert!(out.report.theorem.applies());
        assert_eq!(out.chosen.len(), 2);
        // The winner is the bare-violation guard with the +1 rotation of
        // the parent's color — the textbook recoloring action.
        for ch in &out.chosen {
            assert_eq!(ch.guard_index, 0, "{}", ch.constraint);
            assert_eq!(ch.extras, 0, "{}", ch.constraint);
        }
        assert_eq!(out.distance, 0);
        assert_eq!(out.metrics.attribution_sweeps, 1);
        assert!(out.metrics.oracle_calls < out.metrics.oracle_calls_unpruned);
    }

    #[test]
    fn renders_parseable_surface_syntax_with_trailer() {
        let spec = specs::coloring(3, 3);
        let out = synthesize(&spec, &SynthOptions::default(), &Journal::disabled()).unwrap();
        let text = out.render();
        assert!(text.contains("# theorem:"));
        assert!(text.contains("repair.R.1"));
        // `#` starts a comment, so the golden text recompiles as-is.
        nonmask_lang::parse(&text).unwrap();
    }
}
