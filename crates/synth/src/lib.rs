//! Constraint-guided synthesis of convergence actions — the paper's
//! design method run *forward*, mechanically.
//!
//! The paper's recipe for nonmasking fault-tolerance is: decompose the
//! goal predicate `S` into constraints `c.1 … c.k`, then *design* one
//! convergence action per constraint such that the constraint graph
//! satisfies Theorem 1, 2, or 3. The rest of this workspace checks
//! hand-written designs; this crate derives the actions **from the
//! decomposition alone**:
//!
//! 1. **Grammar** ([`grammar`]) — enumerate a bounded space of candidate
//!    guarded commands per constraint: guards are `¬c ∧ q` (or
//!    `trigger ∨ (¬c ∧ q)` for merged/combined actions) with `q` drawn
//!    from comparisons over the constraint's variable pairs; effects are
//!    domain-safe repairs (copies, rotations, constants) of the
//!    constraint's writable variables.
//! 2. **Classify** ([`lattice`]) — order the constraints by extension
//!    inclusion. Strict implication chains become the hierarchical
//!    partition of Theorem 3 (e.g. the token ring's `x.(j-1) = x.j`
//!    constraints sit strictly above the `x.(j-1) ≥ x.j` layer).
//! 3. **Prune** ([`search`]) — one
//!    [`attribute_constraints`](nonmask_checker::attribute_constraints)
//!    sweep over a *pooled* state space (base program + every candidate)
//!    hard-prunes candidates that do not repair their constraint, exit
//!    the goal, or break a strictly lower layer.
//! 4. **Certify** — each survivor runs a per-candidate oracle battery
//!    (guard coverage of the required repair region, goal preservation,
//!    lower-layer preservation under the Theorem 3 assumption),
//!    distributed over worker threads with
//!    [`steal_tasks`](nonmask_checker::steal_tasks); verdicts are
//!    bit-identical for every thread count and chunk size.
//! 5. **Select & verify** — the cheapest certified candidate per
//!    constraint (fewest *extra* enabled states beyond the required
//!    region, then lowest grammar index) is assembled into a
//!    [`Design`](nonmask::Design) and re-verified end to end; the result
//!    carries the checker's [`ToleranceReport`](nonmask::ToleranceReport)
//!    as its certificate.
//!
//! The synthesizer re-derives the paper's hand-written token-ring and
//! diffusing-computation repairs from their decompositions, and produces
//! a certified recoloring action for proper tree coloring — see
//! [`specs`] and the crate's integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grammar;
pub mod lattice;
pub mod search;
pub mod specs;

pub use grammar::{Candidate, SynthConstraint, SynthSpec};
pub use lattice::{classify, ImplicationLattice};
pub use search::{synthesize, ChosenAction, SynthMetrics, SynthOptions, SynthResult};

use nonmask::DesignError;
use nonmask_checker::{CheckError, SpaceError};
use nonmask_graph::LayeringError;
use nonmask_lang::LangError;

/// Errors from synthesis.
#[derive(Debug)]
pub enum SynthError {
    /// The spec's expressions failed to compile against its program.
    Lang(LangError),
    /// Enumerating the pooled state space failed (e.g. budget exceeded).
    Space(SpaceError),
    /// A checker sweep failed.
    Check(CheckError),
    /// Assembling the winning design failed.
    Design(DesignError),
    /// The derived hierarchical partition was rejected.
    Layering(LayeringError),
    /// The spec itself is malformed (unknown variable, empty pairs, …).
    BadSpec {
        /// What is wrong with the spec.
        message: String,
    },
    /// No candidate for `constraint` survived pruning and certification.
    NoCertified {
        /// The constraint with an empty certified set.
        constraint: String,
    },
    /// Every assembled candidate combination failed final verification.
    VerifyFailed {
        /// How many combinations were tried.
        attempts: usize,
        /// The last report's summary.
        summary: String,
    },
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::Lang(e) => write!(f, "spec compilation failed: {e}"),
            SynthError::Space(e) => write!(f, "pooled enumeration failed: {e}"),
            SynthError::Check(e) => write!(f, "checker sweep failed: {e}"),
            SynthError::Design(e) => write!(f, "design assembly failed: {e}"),
            SynthError::Layering(e) => write!(f, "derived layering rejected: {e}"),
            SynthError::BadSpec { message } => write!(f, "bad spec: {message}"),
            SynthError::NoCertified { constraint } => {
                write!(f, "no certified candidate for constraint `{constraint}`")
            }
            SynthError::VerifyFailed { attempts, summary } => {
                write!(
                    f,
                    "no combination verified after {attempts} attempts: {summary}"
                )
            }
        }
    }
}

impl std::error::Error for SynthError {}

impl From<LangError> for SynthError {
    fn from(e: LangError) -> Self {
        SynthError::Lang(e)
    }
}

impl From<SpaceError> for SynthError {
    fn from(e: SpaceError) -> Self {
        SynthError::Space(e)
    }
}

impl From<CheckError> for SynthError {
    fn from(e: CheckError) -> Self {
        SynthError::Check(e)
    }
}

impl From<DesignError> for SynthError {
    fn from(e: DesignError) -> Self {
        SynthError::Design(e)
    }
}

impl From<LayeringError> for SynthError {
    fn from(e: LayeringError) -> Self {
        SynthError::Layering(e)
    }
}
