//! The bounded candidate-action grammar.
//!
//! Per constraint the synthesizer enumerates `guards × effects` candidate
//! guarded commands. The grammar is deliberately small — the paper's
//! repairs are all "make the local variables agree with the neighborhood"
//! — but large enough that nothing about the winning action is baked in:
//! guards range over every comparison of a constraint's variable pairs,
//! effects over every domain-safe single-variable repair (copies,
//! rotations, constants).
//!
//! Candidates are plain [`ActionDef`]s compiled alongside the base
//! program into one *pooled* program, so a single state-space enumeration
//! and one attribution sweep cover the whole space (see
//! [`search`](crate::search)).

use nonmask_lang::{ActionDef, BinOp, DomainDef, Expr, ProgramDef};
use nonmask_program::ActionKind;

use crate::SynthError;

/// One constraint of the goal decomposition, with the locality the paper
/// assumes: which variable the repair may write and which neighbor it may
/// read.
#[derive(Debug, Clone)]
pub struct SynthConstraint {
    /// Constraint name (used for journaling and the repair action name,
    /// e.g. `ge.1` → `repair.ge.1`).
    pub name: String,
    /// The constraint predicate as a surface-syntax expression.
    pub expr: Expr,
    /// `(child, peer)` variable pairs: candidates write `child` and read
    /// `peer`. All children must belong to one process (the repair is a
    /// local action).
    pub pairs: Vec<(String, String)>,
    /// Optional merge trigger: when present the synthesized action is
    /// *combined* (paper §5.1/§7.1) and its guard is
    /// `trigger ∨ (¬c ∧ q)` instead of `¬c ∧ q`.
    pub trigger: Option<Expr>,
}

/// A synthesis problem: a base program (closure actions only), a goal
/// predicate, and the constraint decomposition.
#[derive(Debug, Clone)]
pub struct SynthSpec {
    /// Name for the synthesized program.
    pub name: String,
    /// The base program: variables and closure actions, **no** repairs.
    pub base: ProgramDef,
    /// The goal predicate `S` (becomes the design's invariant override).
    pub goal: Expr,
    /// The decomposition, one entry per convergence action to derive.
    pub constraints: Vec<SynthConstraint>,
}

/// One candidate action, tagged with its grammar coordinates.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Index of the constraint this candidate targets.
    pub constraint: usize,
    /// Position in the guard enumeration (0 = bare `¬c`).
    pub guard_index: usize,
    /// Position in the effect enumeration (0 = copy-all when admissible).
    pub effect_index: usize,
    /// The candidate as a compilable action definition.
    pub action: ActionDef,
}

pub(crate) fn ident(name: &str) -> Expr {
    Expr::Ident(name.to_string())
}

pub(crate) fn int(v: i64) -> Expr {
    Expr::Int(v)
}

pub(crate) fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
    Expr::Bin(op, Box::new(l), Box::new(r))
}

pub(crate) fn and(l: Expr, r: Expr) -> Expr {
    bin(BinOp::And, l, r)
}

pub(crate) fn or(l: Expr, r: Expr) -> Expr {
    bin(BinOp::Or, l, r)
}

pub(crate) fn not(e: Expr) -> Expr {
    Expr::Not(Box::new(e))
}

/// Conjoin a non-empty list of expressions, left-associated.
pub(crate) fn all(mut exprs: Vec<Expr>) -> Expr {
    let first = exprs.remove(0);
    exprs.into_iter().fold(first, and)
}

/// `(lo, size)` of a domain.
fn bounds(d: &DomainDef) -> (i64, i64) {
    match d {
        DomainDef::Bool => (0, 2),
        DomainDef::Range(lo, hi) => (*lo, hi - lo + 1),
        DomainDef::Enum(labels) => (0, labels.len() as i64),
    }
}

fn domain_of<'a>(base: &'a ProgramDef, name: &str) -> Result<&'a DomainDef, SynthError> {
    base.vars
        .iter()
        .find(|v| v.name == name)
        .map(|v| &v.domain)
        .ok_or_else(|| SynthError::BadSpec {
            message: format!("constraint pair names unknown variable `{name}`"),
        })
}

/// `base := ((base - lo + k) mod size) + lo`, simplified when `lo = 0`.
/// Total on the child's domain whatever the peer's value, because the
/// language's `%` is mathematical modulo.
fn rotate(base: Expr, k: i64, lo: i64, size: i64) -> Expr {
    if lo == 0 {
        bin(BinOp::Mod, bin(BinOp::Add, base, int(k)), int(size))
    } else {
        bin(
            BinOp::Add,
            bin(
                BinOp::Mod,
                bin(BinOp::Add, bin(BinOp::Sub, base, int(lo)), int(k)),
                int(size),
            ),
            int(lo),
        )
    }
}

/// Rotation offsets tried for a domain of `size` values: one step, two
/// steps (when distinct), and the inverse step.
fn rot_offsets(size: i64) -> Vec<i64> {
    let mut ks = vec![1];
    if size > 2 {
        ks.push(2);
    }
    if size - 1 > 1 && !ks.contains(&(size - 1)) {
        ks.push(size - 1);
    }
    ks
}

/// The guard expressions for one constraint, in selection order.
///
/// Index 0 is the bare violation guard; then for each `(child, peer)`
/// pair, each comparison `peer OP child` for the six operators.
fn guard_exprs(c: &SynthConstraint) -> Vec<Expr> {
    let not_c = not(c.expr.clone());
    let mut qs: Vec<Option<Expr>> = vec![None];
    for (child, peer) in &c.pairs {
        for op in [
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
        ] {
            qs.push(Some(bin(op, ident(peer), ident(child))));
        }
    }
    qs.into_iter()
        .map(|q| {
            let core = match q {
                None => not_c.clone(),
                Some(q) => and(not_c.clone(), q),
            };
            match &c.trigger {
                Some(t) => or(t.clone(), core),
                None => core,
            }
        })
        .collect()
}

/// The effect assignment lists for one constraint, in selection order:
/// copy-all, per-pair single copies, peer rotations (others copied),
/// self rotations, constants. Every effect is total on the child
/// domains; copies are only emitted where child and peer domains agree.
fn effect_assigns(
    c: &SynthConstraint,
    base: &ProgramDef,
) -> Result<Vec<Vec<(String, Expr)>>, SynthError> {
    let mut copyable = Vec::with_capacity(c.pairs.len());
    let mut child_bounds = Vec::with_capacity(c.pairs.len());
    for (child, peer) in &c.pairs {
        let dc = domain_of(base, child)?;
        let dp = domain_of(base, peer)?;
        copyable.push(dc == dp);
        child_bounds.push(bounds(dc));
    }

    let mut out: Vec<Vec<(String, Expr)>> = Vec::new();

    if copyable.iter().all(|&b| b) {
        out.push(
            c.pairs
                .iter()
                .map(|(ch, pe)| (ch.clone(), ident(pe)))
                .collect(),
        );
    }

    if c.pairs.len() > 1 {
        for (pi, (ch, pe)) in c.pairs.iter().enumerate() {
            if copyable[pi] {
                out.push(vec![(ch.clone(), ident(pe))]);
            }
        }
    }

    for (pi, (_, pe)) in c.pairs.iter().enumerate() {
        let (lo, size) = child_bounds[pi];
        for k in rot_offsets(size) {
            let mut assigns = Vec::new();
            for (qi, (ch2, pe2)) in c.pairs.iter().enumerate() {
                if qi == pi {
                    assigns.push((ch2.clone(), rotate(ident(pe), k, lo, size)));
                } else if copyable[qi] {
                    assigns.push((ch2.clone(), ident(pe2)));
                }
            }
            out.push(assigns);
        }
    }

    for (pi, (ch, _)) in c.pairs.iter().enumerate() {
        let (lo, size) = child_bounds[pi];
        let mut ks = vec![1];
        if size - 1 > 1 {
            ks.push(size - 1);
        }
        for k in ks {
            out.push(vec![(ch.clone(), rotate(ident(ch), k, lo, size))]);
        }
    }

    for (pi, (ch, _)) in c.pairs.iter().enumerate() {
        let (lo, size) = child_bounds[pi];
        for v in 0..size {
            out.push(vec![(ch.clone(), int(lo + v))]);
        }
    }

    Ok(out)
}

/// Enumerate every candidate for constraint `ci` of `spec`, in the
/// deterministic grammar order (guard-major).
///
/// # Errors
///
/// [`SynthError::BadSpec`] if the constraint has no pairs or names an
/// undeclared variable.
pub fn candidates(spec: &SynthSpec, ci: usize) -> Result<Vec<Candidate>, SynthError> {
    let c = &spec.constraints[ci];
    if c.pairs.is_empty() {
        return Err(SynthError::BadSpec {
            message: format!("constraint `{}` has no variable pairs", c.name),
        });
    }
    let guards = guard_exprs(c);
    let effects = effect_assigns(c, &spec.base)?;
    let kind = if c.trigger.is_some() {
        ActionKind::Combined
    } else {
        ActionKind::Convergence
    };
    let mut out = Vec::with_capacity(guards.len() * effects.len());
    for (gi, guard) in guards.iter().enumerate() {
        for (ei, assigns) in effects.iter().enumerate() {
            out.push(Candidate {
                constraint: ci,
                guard_index: gi,
                effect_index: ei,
                action: ActionDef {
                    name: format!("cand.{ci}.g{gi}.e{ei}"),
                    kind,
                    guard: guard.clone(),
                    assigns: assigns.clone(),
                    line: 0,
                },
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs;
    use nonmask_lang::pretty_action;

    #[test]
    fn token_ring_grammar_size_is_stable() {
        let spec = specs::token_ring_windowed(4, 3);
        assert_eq!(spec.constraints.len(), 6);
        for ci in 0..6 {
            let cs = candidates(&spec, ci).unwrap();
            // 7 guards (bare + 6 comparisons) × 10 effects
            // (copy + 3 rotations + 2 self-rotations + 4 constants).
            assert_eq!(cs.len(), 70, "constraint {ci}");
        }
    }

    #[test]
    fn diffusing_grammar_size_is_stable() {
        let spec = specs::diffusing(7);
        assert_eq!(spec.constraints.len(), 6);
        for ci in 0..6 {
            let cs = candidates(&spec, ci).unwrap();
            // 13 guards (bare + 2 pairs × 6) × 11 effects (copy-all +
            // 2 singles + 2 rotations + 2 self-rotations + 4 constants).
            assert_eq!(cs.len(), 143, "constraint {ci}");
        }
    }

    #[test]
    fn coloring_grammar_size_is_stable() {
        let spec = specs::coloring(7, 3);
        assert_eq!(spec.constraints.len(), 6);
        for ci in 0..6 {
            let cs = candidates(&spec, ci).unwrap();
            // 7 guards × 8 effects (copy + 2 rotations + 2 self-rotations
            // + 3 constants).
            assert_eq!(cs.len(), 56, "constraint {ci}");
        }
    }

    #[test]
    fn bare_guard_and_copy_come_first() {
        let spec = specs::coloring(3, 3);
        let cs = candidates(&spec, 0).unwrap();
        let first = pretty_action(&cs[0].action);
        assert!(
            first.contains("!("),
            "index 0 is the bare violation guard: {first}"
        );
        assert!(
            first.contains(":= c.0"),
            "index 0 effect is the plain copy: {first}"
        );
        assert_eq!(cs[0].guard_index, 0);
        assert_eq!(cs[0].effect_index, 0);
    }

    #[test]
    fn triggered_constraints_yield_combined_actions() {
        let spec = specs::token_ring_windowed(4, 3);
        // Constraints are ordered ge.1..ge.3 then eq.1..eq.3.
        assert!(spec.constraints[0].trigger.is_none());
        assert!(spec.constraints[3].trigger.is_some());
        let ge = candidates(&spec, 0).unwrap();
        let eq = candidates(&spec, 3).unwrap();
        assert_eq!(ge[0].action.kind, ActionKind::Convergence);
        assert_eq!(eq[0].action.kind, ActionKind::Combined);
    }

    #[test]
    fn unknown_pair_variable_is_rejected() {
        let mut spec = specs::coloring(3, 3);
        spec.constraints[0].pairs[0].1 = "nope".into();
        assert!(matches!(
            candidates(&spec, 0),
            Err(SynthError::BadSpec { .. })
        ));
    }

    #[test]
    fn rotations_stay_inside_the_child_domain() {
        // lo != 0 exercises the un-simplified rotation form.
        let e = rotate(ident("x"), 1, 2, 3);
        let printed = nonmask_lang::pretty_expr(&e);
        assert_eq!(printed, "((((x - 2) + 1) % 3) + 2)");
        let simple = rotate(ident("x"), 2, 0, 4);
        assert_eq!(nonmask_lang::pretty_expr(&simple), "((x + 2) % 4)");
    }
}
