//! The constraint implication lattice: deriving Theorem 3's hierarchical
//! partition from extensions alone.
//!
//! Over the pooled state space each constraint is a [`Bitset`]; strict
//! extension inclusion `ext(c.i) ⊂ ext(c.j)` means `c.i` *implies* `c.j`
//! — `c.j` is the weaker constraint and must be established first, so it
//! belongs to a strictly lower layer. The layer of a constraint is the
//! length of the longest strict-implication chain below it (equal
//! extensions condense to one node for free: they have identical chains).
//!
//! For the windowed token ring this recovers the paper's two-layer
//! partition — every `x.(j-1) = x.j` strictly implies its
//! `x.(j-1) ≥ x.j` — and for decompositions with incomparable
//! constraints (diffusing, coloring) it degenerates to a single layer,
//! exactly when Theorem 3 adds nothing over Theorems 1/2.

use nonmask_checker::Bitset;

/// The derived hierarchy. Layers are lowest-first; within a layer
/// constraints keep their spec order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplicationLattice {
    /// Constraint indices per layer, lowest layer first.
    pub layers: Vec<Vec<usize>>,
    /// `layer_of[i]` is the layer index of constraint `i`.
    pub layer_of: Vec<usize>,
}

impl ImplicationLattice {
    /// Constraint indices in layers strictly below constraint `i`'s.
    pub fn lower(&self, i: usize) -> Vec<usize> {
        let l = self.layer_of[i];
        self.layers[..l].iter().flatten().copied().collect()
    }
}

/// Whether `a ⊆ b` as state sets.
fn subset(a: &Bitset, b: &Bitset) -> bool {
    a.and(&b.not()).count_ones() == 0
}

/// Classify constraint extensions into the implication lattice.
///
/// Strict implication is a strict partial order, so the longest-chain
/// recursion terminates; the result depends only on the extensions, never
/// on thread count or evaluation order.
pub fn classify(bits: &[Bitset]) -> ImplicationLattice {
    let k = bits.len();
    let mut strict = vec![vec![false; k]; k];
    for i in 0..k {
        for j in 0..k {
            if i != j && subset(&bits[i], &bits[j]) && !subset(&bits[j], &bits[i]) {
                strict[i][j] = true;
            }
        }
    }

    fn depth_of(i: usize, strict: &[Vec<bool>], memo: &mut [Option<usize>]) -> usize {
        if let Some(d) = memo[i] {
            return d;
        }
        let mut d = 0;
        for j in 0..strict.len() {
            if strict[i][j] {
                d = d.max(1 + depth_of(j, strict, memo));
            }
        }
        memo[i] = Some(d);
        d
    }

    let mut memo = vec![None; k];
    let layer_of: Vec<usize> = (0..k).map(|i| depth_of(i, &strict, &mut memo)).collect();
    let depth = layer_of.iter().copied().max().map_or(0, |d| d + 1);
    let mut layers = vec![Vec::new(); depth];
    for (i, &l) in layer_of.iter().enumerate() {
        layers[l].push(i);
    }
    ImplicationLattice { layers, layer_of }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bitset over `len` states with exactly `members` set.
    fn set(len: usize, members: &[usize]) -> Bitset {
        let mut b = Bitset::zeros(len);
        for &m in members {
            b.set(m);
        }
        b
    }

    #[test]
    fn incomparable_constraints_share_one_layer() {
        let bits = vec![set(8, &[0, 1]), set(8, &[2, 3]), set(8, &[1, 2])];
        let lat = classify(&bits);
        assert_eq!(lat.layers, vec![vec![0, 1, 2]]);
        assert!(lat.lower(0).is_empty());
    }

    #[test]
    fn strict_chains_become_layers() {
        // c0 ⊂ c1 ⊂ c2: c2 is weakest → layer 0, c0 strongest → layer 2.
        let bits = vec![set(8, &[0]), set(8, &[0, 1]), set(8, &[0, 1, 2])];
        let lat = classify(&bits);
        assert_eq!(lat.layers, vec![vec![2], vec![1], vec![0]]);
        assert_eq!(lat.lower(0), vec![2, 1]);
        assert_eq!(lat.lower(1), vec![2]);
    }

    #[test]
    fn equal_extensions_condense_to_one_layer_slot() {
        let bits = vec![set(8, &[0, 1]), set(8, &[0, 1]), set(8, &[0, 1, 2])];
        let lat = classify(&bits);
        assert_eq!(lat.layers, vec![vec![2], vec![0, 1]]);
    }

    #[test]
    fn token_ring_shape_two_strata() {
        // Three "ge"-like weak constraints, three "eq"-like strict subsets.
        let u = 16;
        let ge: Vec<Bitset> = (0..3).map(|i| set(u, &[i, i + 4, i + 8, 12])).collect();
        let eq: Vec<Bitset> = (0..3).map(|i| set(u, &[i, 12])).collect();
        let bits: Vec<Bitset> = ge.into_iter().chain(eq).collect();
        let lat = classify(&bits);
        assert_eq!(lat.layers, vec![vec![0, 1, 2], vec![3, 4, 5]]);
        assert_eq!(lat.lower(4), vec![0, 1, 2]);
    }
}
