//! The paper's synthesis problems, stated as decompositions only.
//!
//! Each spec carries the *base* program (variables and closure actions),
//! the goal predicate, and the constraint decomposition with its repair
//! locality — and nothing else. The repairs the paper hand-writes in
//! §5.1 and §7.1 are **not** here; re-deriving them is the synthesizer's
//! job (see the crate's `equivalence` integration test).
//!
//! Variable layouts match the hand-built programs in
//! `nonmask-protocols` exactly (names, domains, declaration order), so a
//! synthesized program's state space is id-for-id comparable with the
//! hand-written one.

use nonmask_lang::{ActionDef, BinOp, DomainDef, Expr, ProgramDef, VarDef};
use nonmask_program::ActionKind;

use crate::grammar::{all, and, bin, ident, int, not, or, SynthConstraint, SynthSpec};

fn var(name: String, domain: DomainDef) -> VarDef {
    VarDef {
        name,
        domain,
        line: 0,
    }
}

fn closure(name: String, guard: Expr, assigns: Vec<(String, Expr)>) -> ActionDef {
    ActionDef {
        name,
        kind: ActionKind::Closure,
        guard,
        assigns,
        line: 0,
    }
}

/// Parent of node `j` in the binary heap-shaped tree used by the
/// diffusing and coloring protocols (matches `Tree::binary`).
fn parent(j: usize) -> usize {
    (j - 1) / 2
}

/// The windowed token ring of §7.1: `n` counters `x.j : 0..m` around a
/// ring, goal `S = (∀ j : x.(j-1) ≥ x.j) ∧ (x.0 = x.(n-1) ∨ x.0 =
/// x.(n-1) + 1)`, decomposed into a `ge` constraint and an `eq`
/// constraint per edge. The `eq` constraints carry the merge trigger
/// `x.(j-1) > x.j`, so their synthesized repairs come out *combined* —
/// the paper's token-passing copy.
///
/// # Panics
///
/// Panics if `n < 2` or `m < 1`.
pub fn token_ring_windowed(n: usize, m: i64) -> SynthSpec {
    assert!(n >= 2, "a ring needs at least two nodes");
    assert!(m >= 1, "the window needs at least two values");
    let x = |j: usize| format!("x.{j}");
    let base = ProgramDef {
        name: format!("token.ring.windowed.n{n}.m{m}"),
        vars: (0..n).map(|j| var(x(j), DomainDef::Range(0, m))).collect(),
        roles: Vec::new(),
        actions: vec![closure(
            "inc.0".into(),
            and(
                bin(BinOp::Eq, ident(&x(0)), ident(&x(n - 1))),
                bin(BinOp::Lt, ident(&x(0)), int(m)),
            ),
            vec![(x(0), bin(BinOp::Add, ident(&x(0)), int(1)))],
        )],
    };

    let ge = |j: usize| bin(BinOp::Ge, ident(&x(j - 1)), ident(&x(j)));
    let eq = |j: usize| bin(BinOp::Eq, ident(&x(j - 1)), ident(&x(j)));
    let mut constraints = Vec::new();
    for j in 1..n {
        constraints.push(SynthConstraint {
            name: format!("ge.{j}"),
            expr: ge(j),
            pairs: vec![(x(j), x(j - 1))],
            trigger: None,
        });
    }
    for j in 1..n {
        constraints.push(SynthConstraint {
            name: format!("eq.{j}"),
            expr: eq(j),
            pairs: vec![(x(j), x(j - 1))],
            trigger: Some(bin(BinOp::Gt, ident(&x(j - 1)), ident(&x(j)))),
        });
    }

    let window = or(
        bin(BinOp::Eq, ident(&x(0)), ident(&x(n - 1))),
        bin(
            BinOp::Eq,
            ident(&x(0)),
            bin(BinOp::Add, ident(&x(n - 1)), int(1)),
        ),
    );
    let goal = and(all((1..n).map(ge).collect()), window);

    SynthSpec {
        name: format!("token.ring.windowed.n{n}.m{m}"),
        base,
        goal,
        constraints,
    }
}

/// The stabilizing diffusing computation of §5.1 over a binary tree of
/// `n` nodes: colors `c.j ∈ {green, red}` and session bits `sn.j`, goal
/// `S = (∀ j :: R.j)` with `R.j = (c.j = c.(P.j) ∧ sn.j ≡ sn.(P.j)) ∨
/// (c.j = green ∧ c.(P.j) = red)`. The base program is the wave itself
/// (the root's `initiate`, per-node `reflect`); each `R.j` carries the
/// merge trigger `sn.j ≠ sn.(P.j)`, so the synthesized repair doubles as
/// the downward propagation — the paper's merged combined action.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn diffusing(n: usize) -> SynthSpec {
    assert!(n >= 2, "a tree needs at least two nodes");
    let c = |j: usize| format!("c.{j}");
    let sn = |j: usize| format!("sn.{j}");
    let green = || ident("green");
    let red = || ident("red");

    let mut vars = Vec::new();
    for j in 0..n {
        vars.push(var(
            c(j),
            DomainDef::Enum(vec!["green".into(), "red".into()]),
        ));
        vars.push(var(sn(j), DomainDef::Bool));
    }

    let mut actions = vec![closure(
        "initiate.0".into(),
        bin(BinOp::Eq, ident(&c(0)), green()),
        vec![(c(0), red()), (sn(0), not(ident(&sn(0))))],
    )];
    for j in 0..n {
        let kids: Vec<usize> = (1..n).filter(|&k| parent(k) == j).collect();
        let mut conj = vec![bin(BinOp::Eq, ident(&c(j)), red())];
        for k in kids {
            conj.push(bin(BinOp::Eq, ident(&c(k)), green()));
            conj.push(bin(BinOp::Eq, ident(&sn(k)), ident(&sn(j))));
        }
        actions.push(closure(
            format!("reflect.{j}"),
            all(conj),
            vec![(c(j), green())],
        ));
    }

    let r = |j: usize| {
        let p = parent(j);
        or(
            and(
                bin(BinOp::Eq, ident(&c(j)), ident(&c(p))),
                bin(BinOp::Eq, ident(&sn(j)), ident(&sn(p))),
            ),
            and(
                bin(BinOp::Eq, ident(&c(j)), green()),
                bin(BinOp::Eq, ident(&c(p)), red()),
            ),
        )
    };
    let constraints = (1..n)
        .map(|j| {
            let p = parent(j);
            SynthConstraint {
                name: format!("R.{j}"),
                expr: r(j),
                pairs: vec![(c(j), c(p)), (sn(j), sn(p))],
                trigger: Some(bin(BinOp::Ne, ident(&sn(j)), ident(&sn(p)))),
            }
        })
        .collect();

    SynthSpec {
        name: format!("diffusing.{n}"),
        base: ProgramDef {
            name: format!("diffusing.{n}"),
            vars,
            roles: Vec::new(),
            actions,
        },
        goal: all((1..n).map(r).collect()),
        constraints,
    }
}

/// Proper tree coloring over a binary tree of `n` nodes with `colors`
/// colors: `R.j = (c.j ≠ c.(P.j))`, goal `S = (∀ j :: R.j)`, **no**
/// closure actions at all — the synthesized design must be silent inside
/// `S`. This decomposition has no hand-written design heritage in the
/// paper; the synthesizer derives the recoloring repair from scratch.
///
/// # Panics
///
/// Panics if `n < 2` or `colors < 2`.
pub fn coloring(n: usize, colors: i64) -> SynthSpec {
    assert!(n >= 2, "a tree needs at least two nodes");
    assert!(colors >= 2, "proper coloring needs at least two colors");
    let c = |j: usize| format!("c.{j}");
    let r = |j: usize| bin(BinOp::Ne, ident(&c(j)), ident(&c(parent(j))));
    SynthSpec {
        name: format!("coloring.{n}.c{colors}"),
        base: ProgramDef {
            name: format!("coloring.{n}.c{colors}"),
            vars: (0..n)
                .map(|j| var(c(j), DomainDef::Range(0, colors - 1)))
                .collect(),
            roles: Vec::new(),
            actions: Vec::new(),
        },
        goal: all((1..n).map(r).collect()),
        constraints: (1..n)
            .map(|j| SynthConstraint {
                name: format!("R.{j}"),
                expr: r(j),
                pairs: vec![(c(j), c(parent(j)))],
                trigger: None,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_lang::compile_def_with_processes;

    #[test]
    fn base_programs_compile_with_process_tags() {
        for spec in [token_ring_windowed(4, 3), diffusing(7), coloring(7, 3)] {
            let program = compile_def_with_processes(&spec.base)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert!(program.var_count() > 0);
        }
    }

    #[test]
    fn token_ring_base_has_only_the_increment() {
        let spec = token_ring_windowed(4, 3);
        assert_eq!(spec.base.actions.len(), 1);
        assert_eq!(spec.base.actions[0].name, "inc.0");
        assert_eq!(spec.constraints.len(), 6);
    }

    #[test]
    fn diffusing_base_is_the_wave_without_repairs() {
        let spec = diffusing(7);
        // initiate + one reflect per node, nothing that writes both a
        // child's color and session from the parent.
        assert_eq!(spec.base.actions.len(), 8);
        assert!(spec.base.actions.iter().all(|a| a.assigns.len() <= 2));
    }

    #[test]
    fn coloring_base_is_empty() {
        let spec = coloring(7, 3);
        assert!(spec.base.actions.is_empty());
        assert_eq!(spec.constraints.len(), 6);
    }
}
