//! Regenerate the committed token-ring golden design:
//!
//! ```sh
//! cargo run -p nonmask-synth --example golden_token_ring \
//!     > crates/synth/golden/token_ring.txt
//! ```
//!
//! CI re-synthesizes the ring in release mode and diffs against the
//! committed file, so any grammar or selection change must update the
//! golden deliberately.

fn main() {
    let out = nonmask_synth::synthesize(
        &nonmask_synth::specs::token_ring_windowed(4, 3),
        &nonmask_synth::SynthOptions::default(),
        &nonmask_obs::Journal::disabled(),
    )
    .unwrap();
    print!("{}", out.render());
}
