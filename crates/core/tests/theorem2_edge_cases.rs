//! Theorem 2 edge cases: self-looping constraint graphs where the
//! linear preservation order is *non-unique*, and where *no* order
//! exists at all.
//!
//! Theorem 2's third antecedent asks, per graph node, for an ordering
//! `e1 … ek` of the convergence actions targeting the node such that for
//! `i < j` the action of `ej` preserves the constraint of `ei`. Two
//! boundary situations matter and neither is exercised by the worked
//! protocols (whose nodes each carry exactly one repair action):
//!
//! 1. **Every order works.** Two repairs on one node that mutually
//!    preserve each other's constraints — the precedence relation is
//!    empty, any permutation is a witness, and the theorem must still
//!    apply (non-uniqueness is fine; the theorem asks for existence).
//! 2. **No order works.** Two repairs that mutually *destroy* each
//!    other's constraints — the precedence relation is cyclic, the
//!    theorem must be rejected with a reason naming the node, and the
//!    ground-truth model check confirms the design really livelocks.

use nonmask::graph::{ConstraintGraph, ConstraintRef, NodePartition, Shape};
use nonmask::program::{ActionId, Domain, Predicate, Program, VarId};
use nonmask::{Design, TheoremOutcome};

/// Whether `action` preserves `constraint` in `program`: from every
/// state where the constraint holds and the guard is enabled, the
/// successor still satisfies the constraint. (Brute force over the
/// 4-state spaces used here — an independent check of the same property
/// the verifier discharges with its preservation oracle.)
fn preserves(program: &Program, action: ActionId, constraint: &Predicate) -> bool {
    let act = program.action(action);
    let mut state = program.min_state();
    loop {
        if constraint.holds(&state) && act.enabled(&state) {
            let next = act.successor(&state);
            if !constraint.holds(&next) {
                return false;
            }
        }
        // Advance the 2-bool odometer.
        let vars: Vec<VarId> = program.var_ids().collect();
        let mut done = true;
        for &v in &vars {
            if state.get(v) == 0 {
                state.set(v, 1);
                done = false;
                break;
            }
            state.set(v, 0);
        }
        if done {
            return true;
        }
    }
}

/// Two self-looping repairs that commute: `fix-x` re-establishes
/// `x = false` without touching `y`, and vice versa.
fn commuting_design() -> (
    Program,
    Predicate,
    Predicate,
    ActionId,
    ActionId,
    NodePartition,
) {
    let mut b = Program::builder("selfloop-commuting");
    let x = b.var("x", Domain::Bool);
    let y = b.var("y", Domain::Bool);
    let fix_x = b.convergence_action(
        "fix-x",
        [x],
        [x],
        move |s| s.get_bool(x),
        move |s| s.set_bool(x, false),
    );
    let fix_y = b.convergence_action(
        "fix-y",
        [y],
        [y],
        move |s| s.get_bool(y),
        move |s| s.set_bool(y, false),
    );
    let program = b.build();
    let cx = Predicate::new("c.x", [x], move |s| !s.get_bool(x));
    let cy = Predicate::new("c.y", [y], move |s| !s.get_bool(y));
    let partition = NodePartition::new().group("xy", [x, y]);
    (program, cx, cy, fix_x, fix_y, partition)
}

/// Two self-looping repairs that mutually destroy each other: `fix-x`
/// re-establishes `x = false` but flips `y` on, and vice versa.
fn destructive_design() -> (
    Program,
    Predicate,
    Predicate,
    ActionId,
    ActionId,
    NodePartition,
) {
    let mut b = Program::builder("selfloop-destructive");
    let x = b.var("x", Domain::Bool);
    let y = b.var("y", Domain::Bool);
    let fix_x = b.convergence_action(
        "fix-x",
        [x, y],
        [x, y],
        move |s| s.get_bool(x),
        move |s| {
            s.set_bool(x, false);
            s.set_bool(y, true);
        },
    );
    let fix_y = b.convergence_action(
        "fix-y",
        [x, y],
        [x, y],
        move |s| s.get_bool(y),
        move |s| {
            s.set_bool(y, false);
            s.set_bool(x, true);
        },
    );
    let program = b.build();
    let cx = Predicate::new("c.x", [x], move |s| !s.get_bool(x));
    let cy = Predicate::new("c.y", [y], move |s| !s.get_bool(y));
    let partition = NodePartition::new().group("xy", [x, y]);
    (program, cx, cy, fix_x, fix_y, partition)
}

#[test]
fn commuting_self_loops_verify_under_theorem_2() {
    let (program, cx, cy, fix_x, fix_y, partition) = commuting_design();
    let design = Design::builder(program)
        .partition(partition)
        .constraint("c.x", cx, fix_x)
        .constraint("c.y", cy, fix_y)
        .build()
        .expect("well-formed design");
    let report = design.verify().expect("verification runs");
    assert_eq!(report.shape, Shape::SelfLooping);
    assert!(
        matches!(report.theorem, TheoremOutcome::Theorem2 { .. }),
        "expected Theorem 2, got {} ({:?})",
        report.theorem.name(),
        report.theorem
    );
    assert!(report.is_stabilizing(), "the design converges for real");
}

#[test]
fn the_commuting_preservation_order_is_non_unique() {
    let (program, cx, cy, fix_x, fix_y, partition) = commuting_design();
    // Both actions preserve both constraints, so the precedence relation
    // is empty and *every* permutation is a linear preservation order.
    for (action, constraint) in [(fix_x, &cx), (fix_x, &cy), (fix_y, &cx), (fix_y, &cy)] {
        assert!(preserves(&program, action, constraint));
    }

    let graph = ConstraintGraph::derive(
        &program,
        &partition,
        &[(fix_x, ConstraintRef(0)), (fix_y, ConstraintRef(1))],
    )
    .expect("derivable graph");
    assert_eq!(graph.node_count(), 1);
    assert!(graph.edges().iter().all(|e| e.is_self_loop()));

    let node = graph.node_ids().next().unwrap();
    let constraints = [&cx, &cy];
    let order = graph
        .linear_preservation_order(node, |a, c| preserves(&program, a, constraints[c.0]))
        .expect("an order exists");
    assert_eq!(order.len(), 2);
    // The reversed order is a witness too: for every i < j, action(ej)
    // preserves constraint(ei). Non-uniqueness in the flesh.
    let reversed: Vec<_> = order.iter().rev().copied().collect();
    for i in 0..reversed.len() {
        for j in (i + 1)..reversed.len() {
            let later = graph.edge_ref(reversed[j]);
            let earlier = graph.edge_ref(reversed[i]);
            assert!(preserves(
                &program,
                later.action(),
                constraints[earlier.constraint().0]
            ));
        }
    }
}

#[test]
fn mutually_destructive_self_loops_are_rejected_with_a_reason() {
    let (program, cx, cy, fix_x, fix_y, partition) = destructive_design();
    // Sanity: each action destroys the *other* constraint, so no linear
    // preservation order can exist.
    assert!(!preserves(&program, fix_x, &cy));
    assert!(!preserves(&program, fix_y, &cx));

    let design = Design::builder(program.clone())
        .partition(partition.clone())
        .constraint("c.x", cx.clone(), fix_x)
        .constraint("c.y", cy.clone(), fix_y)
        .build()
        .expect("well-formed design");
    let report = design.verify().expect("verification runs");
    let TheoremOutcome::NotApplicable { reasons } = &report.theorem else {
        panic!("expected rejection, got {}", report.theorem.name());
    };
    assert!(
        reasons
            .iter()
            .any(|r| r.contains("no linear preservation order")),
        "reasons should name the missing order: {reasons:?}"
    );
    assert!(
        reasons.iter().any(|r| r.contains("xy")),
        "reasons should name the offending node: {reasons:?}"
    );
    // The rejection is not a false negative of the sufficient condition:
    // the two repairs really do livelock (x=1 ⇄ y=1 forever), so the
    // ground-truth model check refuses convergence as well.
    assert!(!report.is_stabilizing());

    // And the graph layer agrees directly: the precedence relation is
    // cyclic, so no order exists.
    let graph = ConstraintGraph::derive(
        &program,
        &partition,
        &[(fix_x, ConstraintRef(0)), (fix_y, ConstraintRef(1))],
    )
    .expect("derivable graph");
    let node = graph.node_ids().next().unwrap();
    let constraints = [&cx, &cy];
    assert!(graph
        .linear_preservation_order(node, |a, c| preserves(&program, a, constraints[c.0]))
        .is_none());
}

#[test]
fn a_single_self_loop_is_trivially_ordered() {
    // Degenerate boundary: one repair on one node — the order is the
    // singleton, Theorem 2 applies without any preservation obligation.
    let mut b = Program::builder("selfloop-single");
    let x = b.var("x", Domain::Bool);
    let fix_x = b.convergence_action(
        "fix-x",
        [x],
        [x],
        move |s| s.get_bool(x),
        move |s| s.set_bool(x, false),
    );
    let program = b.build();
    let cx = Predicate::new("c.x", [x], move |s| !s.get_bool(x));
    let design = Design::builder(program)
        .partition(NodePartition::new().group("x", [x]))
        .constraint("c.x", cx, fix_x)
        .build()
        .expect("well-formed design");
    let report = design.verify().expect("verification runs");
    assert!(
        matches!(report.theorem, TheoremOutcome::Theorem2 { .. }),
        "got {}",
        report.theorem.name()
    );
    assert!(report.is_stabilizing());
}
