//! Convergence stairs (Section 7; Gouda & Multari).
//!
//! When the constraint graph for the full fault span `T` is cyclic, one of
//! the paper's refinements is staged convergence: a chain of closed
//! predicates `T = R_0 ⊇ R_1 ⊇ … ⊇ R_n = S` such that from each `R_i`
//! every computation reaches `R_{i+1}` ("a convergence stair of height
//! two" for `n = 2`). Each stage may be validated with a (possibly
//! different) theorem, because the constraint graph *restricted to the
//! stage's states* can be simpler than the global one.

use nonmask_checker::{
    closure, convergence::check_convergence, CheckError, ConvergenceResult, Fairness, StateSpace,
    Violation,
};
use nonmask_program::{Predicate, Program, State};

/// A chain of predicates from the fault span down to the invariant.
#[derive(Debug, Clone)]
pub struct ConvergenceStair {
    stages: Vec<Predicate>,
}

/// The outcome of verifying one stage of a stair.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Index of the stage (`0` = from the fault span).
    pub stage: usize,
    /// A closure violation of the stage's *target* predicate, if any
    /// (each `R_i` must be closed for the stair to be meaningful).
    pub target_closed: Option<Violation>,
    /// Convergence of this stage.
    pub convergence: ConvergenceResult,
    /// A state where the stage's source holds but not the *previous*
    /// stage's source — stairs must be descending chains (`R_{i+1} ⊆ R_i`);
    /// `None` when the inclusion holds.
    pub inclusion_witness: Option<State>,
}

/// The outcome of verifying a whole stair.
#[derive(Debug, Clone)]
pub struct StairReport {
    /// Per-stage outcomes, in descent order.
    pub stages: Vec<StageReport>,
}

impl StairReport {
    /// Whether every stage is closed, included in its predecessor, and
    /// converges.
    pub fn ok(&self) -> bool {
        self.stages.iter().all(|s| {
            s.target_closed.is_none() && s.convergence.converges() && s.inclusion_witness.is_none()
        })
    }
}

impl ConvergenceStair {
    /// Build a stair from `stages`, highest (the fault span) first, lowest
    /// (the invariant) last.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two stages are supplied.
    pub fn new(stages: impl IntoIterator<Item = Predicate>) -> Self {
        let stages: Vec<Predicate> = stages.into_iter().collect();
        assert!(
            stages.len() >= 2,
            "a stair needs at least a top and a bottom"
        );
        ConvergenceStair { stages }
    }

    /// The stair's height (number of convergence stages).
    pub fn height(&self) -> usize {
        self.stages.len() - 1
    }

    /// The stage predicates, highest first.
    pub fn stages(&self) -> &[Predicate] {
        &self.stages
    }

    /// Verify every stage: `R_{i+1} ⊆ R_i`, `R_{i+1}` closed, and
    /// convergence from `R_i` to `R_{i+1}` under `fairness`.
    ///
    /// # Errors
    ///
    /// [`CheckError::WorkerFailed`] if a stage predicate or an action body
    /// panics mid-scan.
    pub fn verify(
        &self,
        space: &StateSpace,
        program: &Program,
        fairness: Fairness,
    ) -> Result<StairReport, CheckError> {
        let mut reports = Vec::new();
        for i in 0..self.stages.len() - 1 {
            let from = &self.stages[i];
            let to = &self.stages[i + 1];
            let inclusion_witness = space
                .ids()
                .map(|id| space.state(id))
                .find(|s| to.holds(s) && !from.holds(s));
            reports.push(StageReport {
                stage: i,
                target_closed: closure::is_closed(space, program, to)?,
                convergence: check_convergence(space, program, from, to, fairness)?,
                inclusion_witness,
            });
        }
        Ok(StairReport { stages: reports })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_program::{Domain, Program};

    /// Countdown program: converges through x<=2 to x=0.
    fn program() -> Program {
        let mut b = Program::builder("down");
        let x = b.var("x", Domain::range(0, 5));
        b.convergence_action(
            "dec",
            [x],
            [x],
            move |s| s.get(x) > 0,
            move |s| {
                let v = s.get(x);
                s.set(x, v - 1);
            },
        );
        b.build()
    }

    #[test]
    fn two_stage_stair_verifies() {
        let p = program();
        let x = p.var_by_name("x").unwrap();
        let space = StateSpace::enumerate(&p).unwrap();
        let stair = ConvergenceStair::new([
            Predicate::always_true(),
            Predicate::new("x<=2", [x], move |s| s.get(x) <= 2),
            Predicate::new("x=0", [x], move |s| s.get(x) == 0),
        ]);
        assert_eq!(stair.height(), 2);
        let report = stair.verify(&space, &p, Fairness::WeaklyFair).unwrap();
        assert!(report.ok(), "{report:?}");
        assert_eq!(report.stages.len(), 2);
    }

    #[test]
    fn non_descending_stair_reports_witness() {
        let p = program();
        let x = p.var_by_name("x").unwrap();
        let space = StateSpace::enumerate(&p).unwrap();
        // Second stage x<=4 is NOT a subset of first stage x<=2.
        let stair = ConvergenceStair::new([
            Predicate::new("x<=2", [x], move |s| s.get(x) <= 2),
            Predicate::new("x<=4", [x], move |s| s.get(x) <= 4),
        ]);
        let report = stair.verify(&space, &p, Fairness::WeaklyFair).unwrap();
        assert!(!report.ok());
        assert!(report.stages[0].inclusion_witness.is_some());
    }

    #[test]
    fn unclosed_stage_reported() {
        // x alternates 0 <-> 1 when y is involved; use a program whose
        // action breaks an intermediate predicate.
        let mut b = Program::builder("bounce");
        let x = b.var("x", Domain::range(0, 3));
        b.closure_action(
            "bump-to-3",
            [x],
            [x],
            move |s| s.get(x) == 1,
            move |s| s.set(x, 3),
        );
        b.convergence_action(
            "drop",
            [x],
            [x],
            move |s| s.get(x) > 1,
            move |s| s.set(x, 0),
        );
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        // Intermediate stage x<=1 is not closed: bump-to-3 leaves it.
        let stair = ConvergenceStair::new([
            Predicate::always_true(),
            Predicate::new("x<=1", [x], move |s| s.get(x) <= 1),
        ]);
        let report = stair.verify(&space, &p, Fairness::WeaklyFair).unwrap();
        assert!(report.stages[0].target_closed.is_some());
        assert!(!report.ok());
    }

    #[test]
    #[should_panic(expected = "at least a top and a bottom")]
    fn single_stage_panics() {
        let _ = ConvergenceStair::new([Predicate::always_true()]);
    }
}
