//! Candidate triples `(p, S, T)`.

use nonmask_checker::{closure, CheckError, StateSpace, Violation};
use nonmask_program::{Predicate, Program, State};

/// A candidate triple `(p, S, T)`: a program whose (closure) actions are
/// meant to preserve both the invariant `S` and the fault-span `T`
/// (Section 3, "The design problem").
///
/// The design problem is then: given a candidate triple, design convergence
/// actions such that the augmented program is `T`-tolerant for `S`. Use
/// [`crate::Design`] for the full workflow; `CandidateTriple` is the
/// entry-level object for checking the premise.
#[derive(Debug, Clone)]
pub struct CandidateTriple {
    program: Program,
    invariant: Predicate,
    fault_span: Predicate,
}

impl CandidateTriple {
    /// Bundle a program with its invariant `S` and fault span `T`.
    pub fn new(program: Program, invariant: Predicate, fault_span: Predicate) -> Self {
        CandidateTriple {
            program,
            invariant,
            fault_span,
        }
    }

    /// A stabilizing candidate: the fault span is `true` (Section 5).
    pub fn stabilizing(program: Program, invariant: Predicate) -> Self {
        Self::new(program, invariant, Predicate::always_true())
    }

    /// The program `p`.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The invariant `S`.
    pub fn invariant(&self) -> &Predicate {
        &self.invariant
    }

    /// The fault span `T`.
    pub fn fault_span(&self) -> &Predicate {
        &self.fault_span
    }

    /// Whether this triple is *masking*: `S` and `T` denote the same set of
    /// states (checked extensionally over `space`).
    pub fn is_masking(&self, space: &StateSpace) -> bool {
        let mut scratch = space.scratch_state();
        space.ids().all(|id| {
            space.decode_state(id, &mut scratch);
            self.invariant.holds(&scratch) == self.fault_span.holds(&scratch)
        })
    }

    /// Check the defining premise: every action preserves `S` and `T`.
    ///
    /// Returns `(s_violation, t_violation)`; both `None` means the triple
    /// is a valid candidate.
    ///
    /// # Errors
    ///
    /// [`CheckError::WorkerFailed`] if a predicate or action body panics
    /// mid-scan.
    pub fn check_closure(
        &self,
        space: &StateSpace,
    ) -> Result<(Option<Violation>, Option<Violation>), CheckError> {
        Ok((
            closure::is_closed(space, &self.program, &self.invariant)?,
            closure::is_closed(space, &self.program, &self.fault_span)?,
        ))
    }

    /// Check `S ⇒ T` extensionally; returns a counterexample state where
    /// `S` holds but `T` does not.
    pub fn check_span_contains_invariant(&self, space: &StateSpace) -> Option<State> {
        space
            .ids()
            .map(|id| space.state(id))
            .find(|s| self.invariant.holds(s) && !self.fault_span.holds(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_program::Domain;

    fn setup() -> (Program, Predicate, Predicate) {
        let mut b = Program::builder("p");
        let x = b.var("x", Domain::range(0, 3));
        b.closure_action(
            "dec",
            [x],
            [x],
            move |s| s.get(x) > 0,
            move |s| {
                let v = s.get(x);
                s.set(x, v - 1);
            },
        );
        let p = b.build();
        let s = Predicate::new("x<=1", [x], move |st| st.get(x) <= 1);
        let t = Predicate::new("x<=3", [x], move |st| st.get(x) <= 3);
        (p, s, t)
    }

    #[test]
    fn valid_candidate() {
        let (p, s, t) = setup();
        let triple = CandidateTriple::new(p, s, t);
        let space = StateSpace::enumerate(triple.program()).unwrap();
        let (sv, tv) = triple.check_closure(&space).unwrap();
        assert!(sv.is_none() && tv.is_none());
        assert!(triple.check_span_contains_invariant(&space).is_none());
        assert!(!triple.is_masking(&space));
    }

    #[test]
    fn broken_invariant_detected() {
        let (p, _, t) = setup();
        let x = p.var_by_name("x").unwrap();
        let s = Predicate::new("x=2", [x], move |st| st.get(x) == 2);
        let triple = CandidateTriple::new(p, s, t);
        let space = StateSpace::enumerate(triple.program()).unwrap();
        let (sv, tv) = triple.check_closure(&space).unwrap();
        assert!(sv.is_some(), "dec leaves x=2");
        assert!(tv.is_none());
    }

    #[test]
    fn stabilizing_has_true_span() {
        let (p, s, _) = setup();
        let triple = CandidateTriple::stabilizing(p, s);
        let space = StateSpace::enumerate(triple.program()).unwrap();
        assert!(triple
            .fault_span()
            .holds(&space.state(space.ids().next().unwrap())));
        assert!(triple.check_span_contains_invariant(&space).is_none());
    }

    #[test]
    fn masking_when_s_equals_t() {
        let (p, s, _) = setup();
        let triple = CandidateTriple::new(p, s.clone(), s);
        let space = StateSpace::enumerate(triple.program()).unwrap();
        assert!(triple.is_masking(&space));
    }

    #[test]
    fn span_must_contain_invariant() {
        let (p, _, _) = setup();
        let x = p.var_by_name("x").unwrap();
        let s = Predicate::new("x<=2", [x], move |st| st.get(x) <= 2);
        let t = Predicate::new("x<=1", [x], move |st| st.get(x) <= 1);
        let triple = CandidateTriple::new(p, s, t);
        let space = StateSpace::enumerate(triple.program()).unwrap();
        let witness = triple.check_span_contains_invariant(&space).unwrap();
        assert_eq!(witness.slots()[0], 2);
    }
}
