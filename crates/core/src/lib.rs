//! # nonmask — constraint satisfaction as a basis for nonmasking fault-tolerance
//!
//! A Rust implementation of the design method of Arora, Gouda & Varghese,
//! *Constraint Satisfaction as a Basis for Designing Nonmasking
//! Fault-Tolerance* (1994).
//!
//! ## The method
//!
//! A program `p` is **`T`-tolerant for `S`** (invariant `S`, fault-span `T`,
//! `S ⇒ T`) iff:
//!
//! - **Closure** — both `S` and `T` are closed under `p`'s actions, and
//! - **Convergence** — every computation of `p` from a `T`-state reaches an
//!   `S`-state.
//!
//! `S = T` is *masking* fault-tolerance; `S ⊂ T` is *nonmasking*; `T = true`
//! is *stabilizing*. To design such programs, the invariant `S` is
//! decomposed into **constraints**, each paired with a **convergence
//! action** `¬c → establish c`, while **closure actions** perform the
//! intended computation. The paper's Theorems 1–3 give sufficient
//! conditions — phrased over the [constraint graph](nonmask_graph) — under
//! which the combined program converges.
//!
//! ## This crate
//!
//! - [`Constraint`] — a named predicate paired with its convergence action.
//! - [`CandidateTriple`] — `(p, S, T)` with mechanical closure checking.
//! - [`Design`] / [`DesignBuilder`] — the design workflow: program +
//!   constraints + node partition (+ optional [layering](nonmask_graph::Layering)),
//!   verified end-to-end by [`Design::verify`], which both applies the
//!   paper's sufficient conditions *and* model-checks the conclusion.
//! - [`ToleranceReport`] / [`TheoremOutcome`] — what held and which theorem
//!   applied.
//! - [`ConvergenceStair`] — Section 7's staged convergence (Gouda–Multari).
//!
//! ## Example
//!
//! Designing and verifying a two-constraint stabilizing program (the
//! paper's Section 4 example):
//!
//! ```
//! use nonmask::{Design, TheoremOutcome};
//! use nonmask_program::{Domain, Predicate, Program};
//! use nonmask_graph::NodePartition;
//!
//! let mut b = Program::builder("xyz");
//! let x = b.var("x", Domain::range(0, 3));
//! let y = b.var("y", Domain::range(0, 3));
//! let z = b.var("z", Domain::range(0, 3));
//! // Convergence actions: change y if x = y; raise z if x > z.
//! let fix_y = b.convergence_action("fix-y", [x, y], [y],
//!     move |s| s.get(x) == s.get(y),
//!     move |s| { let v = s.get(y); s.set(y, (v + 1) % 4); });
//! let fix_z = b.convergence_action("fix-z", [x, z], [z],
//!     move |s| s.get(x) > s.get(z),
//!     move |s| { let v = s.get(x); s.set(z, v); });
//! let program = b.build();
//!
//! let c_neq = Predicate::new("x!=y", [x, y], move |s| s.get(x) != s.get(y));
//! let c_le = Predicate::new("x<=z", [x, z], move |s| s.get(x) <= s.get(z));
//!
//! let design = Design::builder(program)
//!     .partition(NodePartition::new().group("x", [x]).group("y", [y]).group("z", [z]))
//!     .constraint("x!=y", c_neq, fix_y)
//!     .constraint("x<=z", c_le, fix_z)
//!     .build()
//!     .unwrap();
//!
//! let report = design.verify().unwrap();
//! assert!(report.is_tolerant());
//! assert!(matches!(report.theorem, TheoremOutcome::Theorem1 { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraint;
pub mod design;
pub mod report;
pub mod stair;
pub mod triple;

pub use constraint::Constraint;
pub use design::{Design, DesignBuilder, DesignError};
pub use nonmask_checker::{CheckCounters, CheckOptions};
pub use report::{ClosureReport, StateCounts, TheoremOutcome, ToleranceReport, VerifyTimings};
pub use stair::{ConvergenceStair, StageReport, StairReport};
pub use triple::CandidateTriple;

// Re-export the sibling crates under their natural names so that `nonmask`
// works as the single dependency of downstream code.
pub use nonmask_checker as checker;
pub use nonmask_graph as graph;
pub use nonmask_program as program;
