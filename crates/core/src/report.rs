//! Verification reports.

use std::time::Duration;

use nonmask_checker::{CheckCounters, ConvergenceResult, Violation};
use nonmask_graph::{EdgeId, NodeId, Shape};

/// Outcome of the closure checks (the Closure requirement of Section 3).
#[derive(Debug, Clone)]
pub struct ClosureReport {
    /// Violation of `S`-closure, if any.
    pub invariant: Option<Violation>,
    /// Violation of `T`-closure, if any.
    pub fault_span: Option<Violation>,
    /// Per constraint: a state in `T ∧ ¬c` where the paired convergence
    /// action is *not* enabled (the action fails to "independently check"
    /// its constraint), if any.
    pub unguarded_constraints: Vec<(usize, nonmask_program::State)>,
    /// Per constraint: a violation of "the convergence action establishes
    /// its constraint" (executing from `T ∧ guard` must yield `c`), if any.
    pub non_establishing: Vec<(usize, Violation)>,
}

impl ClosureReport {
    /// Whether every closure obligation holds.
    pub fn ok(&self) -> bool {
        self.invariant.is_none()
            && self.fault_span.is_none()
            && self.unguarded_constraints.is_empty()
            && self.non_establishing.is_empty()
    }
}

/// Which of the paper's sufficient conditions the design satisfies.
#[derive(Debug, Clone)]
pub enum TheoremOutcome {
    /// Theorem 1: out-tree constraint graph, closure actions preserve every
    /// constraint. `ranks[i]` is the rank of graph node `i`.
    Theorem1 {
        /// Node ranks per the proof of Theorem 1.
        ranks: Vec<u32>,
    },
    /// Theorem 2: self-looping constraint graph with a linear preservation
    /// order of the convergence actions targeting each node.
    Theorem2 {
        /// The witnessing order per node.
        orders: Vec<(NodeId, Vec<EdgeId>)>,
    },
    /// Theorem 3: hierarchical partition; per layer, a self-looping graph
    /// with per-node linear orders, and all lower layers preserved above.
    Theorem3 {
        /// Number of layers in the witnessing partition.
        layers: usize,
    },
    /// No sufficient condition applies; the reasons list what failed.
    /// (The design may still be tolerant — the model-check result in
    /// [`ToleranceReport::convergence`] is authoritative.)
    NotApplicable {
        /// Human-readable reasons each theorem's side conditions failed.
        reasons: Vec<String>,
    },
}

impl TheoremOutcome {
    /// Whether some theorem's sufficient conditions hold.
    pub fn applies(&self) -> bool {
        !matches!(self, TheoremOutcome::NotApplicable { .. })
    }

    /// Short display name, e.g. `"Theorem 1"`.
    pub fn name(&self) -> &'static str {
        match self {
            TheoremOutcome::Theorem1 { .. } => "Theorem 1",
            TheoremOutcome::Theorem2 { .. } => "Theorem 2",
            TheoremOutcome::Theorem3 { .. } => "Theorem 3",
            TheoremOutcome::NotApplicable { .. } => "none",
        }
    }
}

/// The full verdict of [`crate::Design::verify`]: the paper's method-level
/// conditions *and* the ground-truth model check.
#[derive(Debug, Clone)]
pub struct ToleranceReport {
    /// The constraint graph's shape.
    pub shape: Shape,
    /// Closure obligations.
    pub closure: ClosureReport,
    /// Which theorem's sufficient conditions hold (method-level).
    pub theorem: TheoremOutcome,
    /// Ground truth: convergence from `T` to `S` under the paper's weakly
    /// fair daemon.
    pub convergence: ConvergenceResult,
    /// Convergence under an unfair daemon (Section 8 remarks the derived
    /// programs need no fairness; this field checks that claim).
    pub convergence_unfair: ConvergenceResult,
    /// Worst-case number of moves outside `S` before convergence (finite
    /// exactly when unfair convergence holds), `None` if unbounded.
    pub worst_case_moves: Option<u64>,
    /// Number of states in `S`, in `T`, and in total (diagnostics).
    pub state_counts: StateCounts,
    /// Per-pass work counters (how much state space the verdict rests
    /// on). Implements [`nonmask_obs::CounterSet`](CheckCounters), so
    /// `report.counters.emit(&journal)` journals every field.
    pub counters: CheckCounters,
    /// Wall-clock time spent in each verification phase.
    pub timings: VerifyTimings,
}

/// Wall-clock breakdown of a [`crate::Design::verify`] run (diagnostics;
/// the values depend on [`crate::CheckOptions::threads`], nothing else in
/// the report does).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyTimings {
    /// Enumerating the state space (`None` when a pre-built space was
    /// passed to [`crate::Design::verify_with`]).
    pub enumerate: Option<Duration>,
    /// Evaluating `S`, `T`, and every constraint into per-state bit caches.
    pub predicate_eval: Duration,
    /// The closure obligations (part 1 of the report).
    pub closure: Duration,
    /// The theorem side conditions (part 2).
    pub theorem: Duration,
    /// Ground-truth convergence under both daemons (part 3).
    pub convergence: Duration,
    /// The worst-case move bound (part 3).
    pub bounds: Duration,
    /// Everything above, end to end.
    pub total: Duration,
}

/// State-count diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateCounts {
    /// States satisfying the invariant `S`.
    pub invariant: usize,
    /// States satisfying the fault span `T`.
    pub fault_span: usize,
    /// All states.
    pub total: usize,
}

impl ToleranceReport {
    /// The definition of `T`-tolerance for `S`: closure holds and every
    /// (weakly fair) computation from `T` converges to `S`.
    pub fn is_tolerant(&self) -> bool {
        self.closure.invariant.is_none()
            && self.closure.fault_span.is_none()
            && self.convergence.converges()
    }

    /// Whether the design is *stabilizing*: tolerant with `T` covering the
    /// whole state space.
    pub fn is_stabilizing(&self) -> bool {
        self.is_tolerant() && self.state_counts.fault_span == self.state_counts.total
    }

    /// One-paragraph human-readable summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "constraint graph: {} | theorem: {} | closure: {} | convergence (fair): {} | convergence (unfair): {}",
            self.shape,
            self.theorem.name(),
            if self.closure.ok() { "ok" } else { "VIOLATED" },
            if self.convergence.converges() { "ok" } else { "FAILS" },
            if self.convergence_unfair.converges() { "ok" } else { "fails" },
        ));
        if let Some(m) = self.worst_case_moves {
            out.push_str(&format!(" | worst-case moves: {m}"));
        }
        out.push_str(&format!(
            " | |S|={} |T|={} |states|={}",
            self.state_counts.invariant, self.state_counts.fault_span, self.state_counts.total
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_outcome_names() {
        assert_eq!(
            TheoremOutcome::Theorem1 { ranks: vec![] }.name(),
            "Theorem 1"
        );
        assert_eq!(
            TheoremOutcome::Theorem2 { orders: vec![] }.name(),
            "Theorem 2"
        );
        assert_eq!(TheoremOutcome::Theorem3 { layers: 2 }.name(), "Theorem 3");
        let na = TheoremOutcome::NotApplicable { reasons: vec![] };
        assert_eq!(na.name(), "none");
        assert!(!na.applies());
        assert!(TheoremOutcome::Theorem3 { layers: 2 }.applies());
    }

    #[test]
    fn closure_report_ok() {
        let r = ClosureReport {
            invariant: None,
            fault_span: None,
            unguarded_constraints: vec![],
            non_establishing: vec![],
        };
        assert!(r.ok());
    }
}
