//! Constraints: the pieces of a decomposed invariant.

use nonmask_program::{ActionId, Predicate};

/// One constraint of the invariant `S`, paired with the convergence action
/// that independently checks and establishes it (Section 3: "for each
/// constraint `c` in `S` we design a convergence action that independently
/// checks `c` and, if need be, establishes `c` while preserving `T`").
#[derive(Debug, Clone)]
pub struct Constraint {
    name: String,
    predicate: Predicate,
    action: ActionId,
}

impl Constraint {
    /// Pair `predicate` with the convergence action `action` that
    /// establishes it.
    pub fn new(name: impl Into<String>, predicate: Predicate, action: ActionId) -> Self {
        Constraint {
            name: name.into(),
            predicate,
            action,
        }
    }

    /// The constraint's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The constraint predicate.
    pub fn predicate(&self) -> &Predicate {
        &self.predicate
    }

    /// The convergence action establishing this constraint.
    pub fn action(&self) -> ActionId {
        self.action
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let p = Predicate::always_true();
        let c = Constraint::new("c0", p, ActionId::from_index(3));
        assert_eq!(c.name(), "c0");
        assert_eq!(c.action(), ActionId::from_index(3));
        assert!(c.predicate().holds(&nonmask_program::State::zeroed(0)));
    }
}
