//! The design workflow: program + constraints → verified tolerance.

use std::collections::HashMap;
use std::time::Instant;

use nonmask_checker::{
    bounds, closure, convergence::check_convergence_bits_stats, Bitset, CheckCounters, CheckError,
    CheckOptions, Fairness, SpaceError, StateSpace, Violation,
};
use nonmask_graph::{ConstraintGraph, ConstraintRef, GraphError, Layering, NodePartition, Shape};
use nonmask_program::{ActionId, ActionKind, Predicate, Program};

use crate::constraint::Constraint;
use crate::report::{ClosureReport, StateCounts, TheoremOutcome, ToleranceReport, VerifyTimings};

/// Errors raised while building or verifying a [`Design`].
#[derive(Debug, Clone)]
pub enum DesignError {
    /// Two constraints share the same convergence action; the paper
    /// requires a bijection between constraints and convergence actions.
    DuplicateAction(ActionId),
    /// A constraint references an action id that is not in the program.
    UnknownAction(ActionId),
    /// The constraint graph could not be derived.
    Graph(GraphError),
    /// The state space could not be enumerated.
    Space(SpaceError),
    /// A checker pass failed — today this means a caller-supplied closure
    /// (predicate, guard, or action body) panicked inside a worker.
    Check(CheckError),
}

impl std::fmt::Display for DesignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesignError::DuplicateAction(a) => {
                write!(f, "action {a} is the convergence action of two constraints")
            }
            DesignError::UnknownAction(a) => write!(f, "action {a} is not part of the program"),
            DesignError::Graph(e) => write!(f, "constraint graph: {e}"),
            DesignError::Space(e) => write!(f, "state space: {e}"),
            DesignError::Check(e) => write!(f, "checker: {e}"),
        }
    }
}

impl std::error::Error for DesignError {}

impl From<GraphError> for DesignError {
    fn from(e: GraphError) -> Self {
        DesignError::Graph(e)
    }
}

impl From<SpaceError> for DesignError {
    fn from(e: SpaceError) -> Self {
        DesignError::Space(e)
    }
}

impl From<CheckError> for DesignError {
    fn from(e: CheckError) -> Self {
        DesignError::Check(e)
    }
}

/// A complete design in the paper's method: a program whose invariant is
/// the conjunction of the fault span `T` and a set of [`Constraint`]s, a
/// node partition for the constraint graph, and an optional
/// [layering](Layering) for Theorem 3.
///
/// Built with [`Design::builder`]; verified end-to-end with
/// [`Design::verify`]. See the [crate docs](crate) for a worked example.
#[derive(Debug, Clone)]
pub struct Design {
    program: Program,
    constraints: Vec<Constraint>,
    fault_span: Predicate,
    partition: NodePartition,
    layering: Option<Layering>,
    invariant_override: Option<Predicate>,
    options: CheckOptions,
}

impl Design {
    /// Start building a design around `program`.
    pub fn builder(program: Program) -> DesignBuilder {
        DesignBuilder {
            program,
            constraints: Vec::new(),
            fault_span: Predicate::always_true(),
            partition: None,
            layering: None,
            invariant_override: None,
            options: CheckOptions::default(),
        }
    }

    /// The underlying program (closure + convergence actions).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The constraints whose conjunction (with `T`) is the invariant.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The fault span `T`.
    pub fn fault_span(&self) -> &Predicate {
        &self.fault_span
    }

    /// The node partition used for the constraint graph.
    pub fn partition(&self) -> &NodePartition {
        &self.partition
    }

    /// The layering supplied for Theorem 3, if any.
    pub fn layering(&self) -> Option<&Layering> {
        self.layering.as_ref()
    }

    /// The checker options (worker threads, state limit) used by
    /// [`Design::verify`]. Defaults to auto-detected parallelism; see
    /// [`DesignBuilder::threads`].
    pub fn options(&self) -> CheckOptions {
        self.options
    }

    /// This design with different checker options (e.g. to re-verify with
    /// another thread count — the verdict is identical by construction,
    /// only the [`VerifyTimings`] change).
    pub fn with_options(mut self, options: CheckOptions) -> Self {
        self.options = options;
        self
    }

    /// The invariant `S`.
    ///
    /// By default `S = T ∧ (∀ i :: c_i)` (Section 3: "the constraints in
    /// `S` are chosen such that their conjunction together with `T`
    /// equivales `S`"). Designs built with
    /// [`DesignBuilder::invariant_override`] use the supplied predicate
    /// instead — the paper's token ring is such a design: its second-layer
    /// constraints (`x.j = x.(j+1)`) *imply* the second conjunct of `S`
    /// without being part of it.
    pub fn invariant(&self) -> Predicate {
        if let Some(s) = &self.invariant_override {
            return s.clone();
        }
        let all = Predicate::all(
            "constraints",
            self.constraints.iter().map(Constraint::predicate),
        );
        self.fault_span.and(&all).named("S")
    }

    /// Derive the constraint graph of the design's convergence actions.
    ///
    /// # Errors
    ///
    /// [`GraphError`] when some convergence action's reads/writes cannot be
    /// placed on the partition.
    pub fn constraint_graph(&self) -> Result<ConstraintGraph, GraphError> {
        let pairs: Vec<(ActionId, ConstraintRef)> = self
            .constraints
            .iter()
            .enumerate()
            .map(|(i, c)| (c.action(), ConstraintRef(i)))
            .collect();
        ConstraintGraph::derive(&self.program, &self.partition, &pairs)
    }

    /// Enumerate the state space and run [`Design::verify_with`].
    ///
    /// # Errors
    ///
    /// [`DesignError::Space`] for unbounded or oversized programs;
    /// [`DesignError::Graph`] if the constraint graph cannot be derived;
    /// [`DesignError::Check`] if a predicate, guard, or action body panics
    /// inside a checker worker.
    pub fn verify(&self) -> Result<ToleranceReport, DesignError> {
        let started = Instant::now();
        let space = StateSpace::enumerate_with_options(&self.program, self.options)?;
        let enumerate = started.elapsed();
        let mut report = self.verify_with(&space)?;
        report.timings.enumerate = Some(enumerate);
        report.timings.total += enumerate;
        Ok(report)
    }

    /// Verify the design against a pre-enumerated state space.
    ///
    /// Produces a [`ToleranceReport`] combining:
    ///
    /// 1. **Closure checks** — `S` and `T` closed; each convergence action
    ///    guards exactly its constraint's violation and establishes the
    ///    constraint.
    /// 2. **Method-level theorem checks** — which of Theorems 1–3 applies
    ///    (structural shape conditions from the graph crate, semantic
    ///    preservation obligations discharged by the checker). For merged
    ///    (closure+convergence) actions the closure-role obligation is
    ///    checked on invariant states, mirroring the paper's observation
    ///    that the merged action coincides with the closure action there.
    /// 3. **Ground truth** — direct model checking of convergence under
    ///    both weakly fair and unfair daemons, and the worst-case number of
    ///    moves outside `S`.
    ///
    /// # Errors
    ///
    /// [`DesignError::Graph`] if the constraint graph cannot be derived;
    /// [`DesignError::Check`] if a predicate, guard, or action body panics
    /// inside a checker worker.
    pub fn verify_with(&self, space: &StateSpace) -> Result<ToleranceReport, DesignError> {
        let started = Instant::now();
        let graph = self.constraint_graph()?;
        let shape = graph.shape();
        let s = self.invariant();
        let t = &self.fault_span;
        let p = &self.program;
        let opts = self.options;

        // Predicate-evaluation caches, shared by every pass below: `S`,
        // `T`, and each constraint are evaluated exactly once per state
        // (in parallel), and all later obligations are bit tests.
        let eval_started = Instant::now();
        let s_bits = Bitset::for_predicate(space, &s, opts)?;
        let t_bits = Bitset::for_predicate(space, t, opts)?;
        let c_bits: Vec<Bitset> = self
            .constraints
            .iter()
            .map(|c| Bitset::for_predicate(space, c.predicate(), opts))
            .collect::<Result<_, _>>()?;
        let predicate_eval = eval_started.elapsed();

        // --- 1. Closure obligations -----------------------------------
        let closure_started = Instant::now();
        let closure_report = self.check_closure_bits(space, &s_bits, &t_bits, &c_bits)?;
        let closure_time = closure_started.elapsed();

        // --- 2. Theorem side conditions --------------------------------
        // Memoized conditional-preservation oracle over the bit caches.
        // `tag` keys the `assuming` set: 0 = T, 1 = S, 2+layer = Theorem
        // 3's per-layer assumption.
        let theorem_started = Instant::now();
        let mut memo: HashMap<(ActionId, usize, u8), bool> = HashMap::new();
        let mut cache_hits: u64 = 0;
        let mut cache_misses: u64 = 0;
        // The graph crate's order-search callbacks return `bool`, so the
        // oracle cannot propagate a `CheckError` directly; the first failure
        // is parked here (answering `false`) and re-raised below, after the
        // theorem selection unwinds.
        let mut oracle_error: Option<CheckError> = None;
        let mut preserves_under = |a: ActionId, ci: usize, assuming: &Bitset, tag: u8| -> bool {
            match memo.entry((a, ci, tag)) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    cache_hits += 1;
                    *e.get()
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    cache_misses += 1;
                    match closure::preserves_given_bits(space, a, &c_bits[ci], assuming, opts) {
                        Ok(violation) => *slot.insert(violation.is_none()),
                        Err(e) => {
                            if oracle_error.is_none() {
                                oracle_error = Some(e);
                            }
                            *slot.insert(false)
                        }
                    }
                }
            }
        };

        let mut reasons: Vec<String> = Vec::new();

        // Structural: every constraint must read only within its edge's two
        // node labels (this is what makes the rank argument structural).
        let mut reads_ok = true;
        for (i, c) in self.constraints.iter().enumerate() {
            let edge = graph
                .edge_ids()
                .map(|e| *graph.edge_ref(e))
                .find(|e| e.constraint() == ConstraintRef(i))
                .expect("one edge per constraint");
            let allowed: Vec<_> = graph
                .node_ref(edge.from())
                .vars()
                .iter()
                .chain(graph.node_ref(edge.to()).vars().iter())
                .copied()
                .collect();
            for r in c.predicate().reads() {
                if !allowed.contains(r) {
                    reads_ok = false;
                    reasons.push(format!(
                        "constraint `{}` reads {} outside its edge's node labels",
                        c.name(),
                        p.var(*r).name()
                    ));
                }
            }
        }

        // Closure-role preservation: Closure actions on T-states, Combined
        // actions on S-states.
        let mut closure_preserve_ok = true;
        for a in p.action_ids() {
            let (assuming, tag): (&Bitset, u8) = match p.action(a).kind() {
                ActionKind::Closure => (&t_bits, 0),
                ActionKind::Combined => (&s_bits, 1),
                ActionKind::Convergence => continue,
            };
            for ci in 0..self.constraints.len() {
                if p.action(a).kind() == ActionKind::Combined && self.constraints[ci].action() == a
                {
                    continue; // its own constraint is its convergence target
                }
                if !preserves_under(a, ci, assuming, tag) {
                    closure_preserve_ok = false;
                    reasons.push(format!(
                        "action `{}` does not preserve constraint `{}`",
                        p.action(a).name(),
                        self.constraints[ci].name()
                    ));
                }
            }
        }

        let theorem = self.select_theorem(
            &graph,
            shape,
            &t_bits,
            &s_bits,
            &c_bits,
            reads_ok,
            closure_preserve_ok,
            &mut preserves_under,
            &mut reasons,
        );
        let theorem_time = theorem_started.elapsed();
        if let Some(e) = oracle_error {
            return Err(DesignError::Check(e));
        }

        // --- 3. Ground truth -------------------------------------------
        // Both daemons share the same `S`/`T` bit caches; no predicate is
        // re-evaluated between the two convergence passes and the bound.
        let conv_started = Instant::now();
        let (conv_fair, fair_stats) =
            check_convergence_bits_stats(space, p, &t_bits, &s_bits, Fairness::WeaklyFair, opts)?;
        let (conv_unfair, unfair_stats) =
            check_convergence_bits_stats(space, p, &t_bits, &s_bits, Fairness::Unfair, opts)?;
        let convergence_time = conv_started.elapsed();
        let bounds_started = Instant::now();
        let worst = bounds::worst_case_moves_bits(space, &t_bits, &s_bits, opts)?;
        let bounds_time = bounds_started.elapsed();

        let state_counts = StateCounts {
            invariant: s_bits.count_ones(),
            fault_span: t_bits.count_ones(),
            total: space.len(),
        };

        // Work counters: convergence figures are summed over the two
        // daemon passes; the CSR-row figure counts whole-space scans (one
        // per distinct preservation query, two closure checks per action,
        // and the two per-constraint obligation sweeps).
        let states = space.len() as u64;
        let bitset_builds = 2 + self.constraints.len() as u64;
        let scan_count =
            cache_misses + 2 * p.action_count() as u64 + 2 * self.constraints.len() as u64;
        let counters = CheckCounters {
            states,
            transitions: space.transition_count() as u64,
            bitset_builds,
            states_decoded: bitset_builds * states,
            csr_rows_visited: scan_count * states,
            region_states: fair_stats.region_states + unfair_stats.region_states,
            peeled_states: fair_stats.peeled_states + unfair_stats.peeled_states,
            sccs_found: fair_stats.sccs_found + unfair_stats.sccs_found,
            cache_hits,
            cache_misses,
            // Design::verify runs fully resident; the out-of-core figures
            // are populated only by frontier/segmented entry points.
            segments_built: 0,
            frontier_rounds: 0,
            frontier_evals: 0,
        };

        Ok(ToleranceReport {
            shape,
            closure: closure_report,
            theorem,
            convergence: conv_fair,
            convergence_unfair: conv_unfair,
            worst_case_moves: worst,
            state_counts,
            counters,
            timings: VerifyTimings {
                enumerate: None,
                predicate_eval,
                closure: closure_time,
                theorem: theorem_time,
                convergence: convergence_time,
                bounds: bounds_time,
                total: started.elapsed(),
            },
        })
    }

    /// The closure obligations over the shared predicate caches. The
    /// convergence action's enabledness is read off the transition table
    /// (a `(action, successor)` pair exists exactly when the guard holds),
    /// so no guard or predicate is re-evaluated here.
    fn check_closure_bits(
        &self,
        space: &StateSpace,
        s_bits: &Bitset,
        t_bits: &Bitset,
        c_bits: &[Bitset],
    ) -> Result<ClosureReport, CheckError> {
        let p = &self.program;
        let opts = self.options;
        let invariant = closure::is_closed_bits(space, p, s_bits, opts)?;
        let fault_span = closure::is_closed_bits(space, p, t_bits, opts)?;

        let mut unguarded = Vec::new();
        let mut non_establishing = Vec::new();
        for (i, c) in self.constraints.iter().enumerate() {
            let aid = c.action();
            // ¬c ∧ T must enable the convergence action.
            if let Some(id) = space.ids().find(|&id| {
                t_bits.contains(id)
                    && !c_bits[i].contains(id)
                    && !space.successors(id).actions().contains(&aid)
            }) {
                unguarded.push((i, space.state(id)));
            }
            // Executing from T ∧ guard must establish c.
            for id in space.ids() {
                if !t_bits.contains(id) {
                    continue;
                }
                let Some((_, succ)) = space.successors(id).iter().find(|&(a, _)| a == aid) else {
                    continue;
                };
                if !c_bits[i].contains(succ) {
                    non_establishing.push((
                        i,
                        Violation {
                            action: aid,
                            before: space.state(id),
                            after: space.state(succ),
                        },
                    ));
                    break;
                }
            }
        }

        Ok(ClosureReport {
            invariant,
            fault_span,
            unguarded_constraints: unguarded,
            non_establishing,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn select_theorem(
        &self,
        graph: &ConstraintGraph,
        shape: Shape,
        t_bits: &Bitset,
        s_bits: &Bitset,
        c_bits: &[Bitset],
        reads_ok: bool,
        closure_preserve_ok: bool,
        preserves_under: &mut impl FnMut(ActionId, usize, &Bitset, u8) -> bool,
        reasons: &mut Vec<String>,
    ) -> TheoremOutcome {
        // Theorem 1: out-tree shape + the closure/read conditions.
        if shape == Shape::OutTree && reads_ok && closure_preserve_ok {
            let ranks = graph.ranks().expect("out-trees are acyclic");
            return TheoremOutcome::Theorem1 { ranks };
        }
        if shape != Shape::OutTree {
            reasons.push(format!("constraint graph is {shape}, not an out-tree"));
        }

        // Theorem 2: self-looping + linear preservation orders.
        if shape != Shape::Cyclic && reads_ok && closure_preserve_ok {
            let mut orders = Vec::new();
            let mut all_ordered = true;
            for node in graph.node_ids() {
                match graph
                    .linear_preservation_order(node, |a, c| preserves_under(a, c.0, t_bits, 0))
                {
                    Some(order) => orders.push((node, order)),
                    None => {
                        all_ordered = false;
                        reasons.push(format!(
                            "no linear preservation order for the actions targeting node `{}`",
                            graph.node_ref(node).name()
                        ));
                    }
                }
            }
            if all_ordered {
                return TheoremOutcome::Theorem2 { orders };
            }
        } else if shape == Shape::Cyclic {
            reasons.push("constraint graph is cyclic; Theorem 2 does not apply".to_string());
        }

        // Theorem 3: requires an explicit layering.
        let Some(layering) = &self.layering else {
            reasons.push("no layering supplied; Theorem 3 not attempted".to_string());
            return TheoremOutcome::NotApplicable {
                reasons: std::mem::take(reasons),
            };
        };

        let mut ok = true;
        for layer in 0..layering.len() {
            // `assuming`: T ∧ all constraints of lower layers, composed
            // bitwise from the shared per-state caches — no predicate is
            // re-evaluated per layer.
            // Preservation is required while the program is still
            // converging (outside `S`): this mirrors the paper's token-ring
            // observation that the root's closure action "is not enabled
            // when the first conjunct holds but the second does not" — once
            // `S` holds, closure actions are free to rearrange constraint
            // values as long as `S` itself is preserved (checked
            // separately).
            let mut assuming = t_bits.and(&s_bits.not());
            for c in layering.below(layer) {
                assuming = assuming.and(&c_bits[c.0]);
            }

            // (c) per-layer graph is self-looping.
            let (layer_graph, layer_shape) = layering.layer_graph(graph, layer);
            if layer_shape == Shape::Cyclic {
                ok = false;
                reasons.push(format!("layer {layer}'s constraint graph is cyclic"));
                continue;
            }

            // (a) closure actions preserve this layer's constraints given
            // lower layers; combined actions likewise given lower layers ∧
            // their own constraint.
            for cref in &layering.layers()[layer] {
                let ci = cref.0;
                for a in self.program.action_ids() {
                    let kind = self.program.action(a).kind();
                    let is_this_constraint = self.constraints[ci].action() == a;
                    let applicable = match kind {
                        ActionKind::Closure => true,
                        // (b) convergence (and merged) actions of *higher*
                        // layers must preserve this layer.
                        ActionKind::Convergence | ActionKind::Combined => {
                            !is_this_constraint
                                && self
                                    .constraints
                                    .iter()
                                    .position(|c| c.action() == a)
                                    .and_then(|j| layering.layer_of(ConstraintRef(j)))
                                    .is_some_and(|l| l > layer)
                        }
                    };
                    if applicable && !preserves_under(a, ci, &assuming, 2 + layer as u8) {
                        ok = false;
                        reasons.push(format!(
                            "layer {layer}: action `{}` does not preserve constraint `{}` given lower layers",
                            self.program.action(a).name(),
                            self.constraints[ci].name()
                        ));
                    }
                }
            }

            // (d) per-node linear orders within the layer, over *adjacent*
            // edges (Theorem 3's fourth antecedent).
            for node in layer_graph.node_ids() {
                if layer_graph
                    .linear_preservation_order_adjacent(node, |a, c| {
                        preserves_under(a, c.0, &assuming, 2 + layer as u8)
                    })
                    .is_none()
                {
                    ok = false;
                    reasons.push(format!(
                        "layer {layer}: no linear order for actions targeting node `{}`",
                        layer_graph.node_ref(node).name()
                    ));
                }
            }
        }

        if ok {
            TheoremOutcome::Theorem3 {
                layers: layering.len(),
            }
        } else {
            TheoremOutcome::NotApplicable {
                reasons: std::mem::take(reasons),
            }
        }
    }
}

/// Incremental construction of a [`Design`]; see [`Design::builder`].
#[derive(Debug)]
pub struct DesignBuilder {
    program: Program,
    constraints: Vec<Constraint>,
    fault_span: Predicate,
    partition: Option<NodePartition>,
    layering: Option<Layering>,
    invariant_override: Option<Predicate>,
    options: CheckOptions,
}

impl DesignBuilder {
    /// Set the fault span `T` (defaults to `true`, i.e. a stabilizing
    /// design).
    pub fn fault_span(mut self, t: Predicate) -> Self {
        self.fault_span = t;
        self
    }

    /// Set the node partition (defaults to
    /// [`NodePartition::by_process`]).
    pub fn partition(mut self, partition: NodePartition) -> Self {
        self.partition = Some(partition);
        self
    }

    /// Add a constraint and its convergence action.
    pub fn constraint(
        mut self,
        name: impl Into<String>,
        predicate: Predicate,
        action: ActionId,
    ) -> Self {
        self.constraints
            .push(Constraint::new(name, predicate, action));
        self
    }

    /// Supply a hierarchical partition of the constraints for Theorem 3.
    pub fn layering(mut self, layering: Layering) -> Self {
        self.layering = Some(layering);
        self
    }

    /// Use `s` as the invariant instead of the conjunction of `T` and the
    /// constraints (for designs whose constraints imply, rather than
    /// equal, the invariant — see [`Design::invariant`]).
    pub fn invariant_override(mut self, s: Predicate) -> Self {
        self.invariant_override = Some(s);
        self
    }

    /// Set the checker options (worker threads and state limit) used by
    /// [`Design::verify`]. Defaults to [`CheckOptions::default`].
    pub fn options(mut self, options: CheckOptions) -> Self {
        self.options = options;
        self
    }

    /// Set the number of worker threads for every state-space sweep
    /// (enumeration, predicate evaluation, closure, convergence, bounds).
    ///
    /// `0` (the default) auto-detects via
    /// [`std::thread::available_parallelism`]; `1` forces fully serial
    /// checking. The verification *verdict* is bit-identical for every
    /// thread count — only the [`VerifyTimings`]
    /// change. Small state spaces (< a few thousand states) are always
    /// checked on the calling thread regardless of this setting.
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = threads;
        self
    }

    /// Finish, validating the constraint/action bijection.
    ///
    /// # Errors
    ///
    /// [`DesignError::DuplicateAction`] if two constraints share an action;
    /// [`DesignError::UnknownAction`] for out-of-range action ids.
    pub fn build(self) -> Result<Design, DesignError> {
        let mut seen = std::collections::HashSet::new();
        for c in &self.constraints {
            if c.action().index() >= self.program.action_count() {
                return Err(DesignError::UnknownAction(c.action()));
            }
            if !seen.insert(c.action()) {
                return Err(DesignError::DuplicateAction(c.action()));
            }
        }
        let partition = self
            .partition
            .unwrap_or_else(|| NodePartition::by_process(&self.program));
        Ok(Design {
            program: self.program,
            constraints: self.constraints,
            fault_span: self.fault_span,
            partition,
            layering: self.layering,
            invariant_override: self.invariant_override,
            options: self.options,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_program::Domain;

    /// The Section 4 / Section 6 "good" design: fix `x != y` by bumping y,
    /// fix `x <= z` by raising z. Out-tree graph; Theorem 1.
    fn good_xyz() -> Design {
        let mut b = Program::builder("xyz");
        let x = b.var("x", Domain::range(0, 3));
        let y = b.var("y", Domain::range(0, 3));
        let z = b.var("z", Domain::range(0, 3));
        let fix_y = b.convergence_action(
            "fix-y",
            [x, y],
            [y],
            move |s| s.get(x) == s.get(y),
            move |s| {
                let v = s.get(y);
                s.set(y, (v + 1) % 4);
            },
        );
        let fix_z = b.convergence_action(
            "fix-z",
            [x, z],
            [z],
            move |s| s.get(x) > s.get(z),
            move |s| {
                let v = s.get(x);
                s.set(z, v);
            },
        );
        let program = b.build();
        let c_neq = Predicate::new("x!=y", [x, y], move |s| s.get(x) != s.get(y));
        let c_le = Predicate::new("x<=z", [x, z], move |s| s.get(x) <= s.get(z));
        Design::builder(program)
            .partition(
                NodePartition::new()
                    .group("x", [x])
                    .group("y", [y])
                    .group("z", [z]),
            )
            .constraint("x!=y", c_neq, fix_y)
            .constraint("x<=z", c_le, fix_z)
            .build()
            .unwrap()
    }

    /// The Section 6 "bad" design: both convergence actions write `x` and
    /// can violate each other forever.
    fn bad_xyz() -> Design {
        let mut b = Program::builder("xyz-bad");
        let x = b.var("x", Domain::range(0, 3));
        let y = b.var("y", Domain::range(0, 3));
        let z = b.var("z", Domain::range(0, 3));
        let fix_neq = b.convergence_action(
            "fix-neq-by-x",
            [x, y],
            [x],
            move |s| s.get(x) == s.get(y),
            move |s| {
                let v = s.get(x);
                s.set(x, (v + 1) % 4);
            },
        );
        let fix_le = b.convergence_action(
            "fix-le-by-x",
            [x, z],
            [x],
            move |s| s.get(x) > s.get(z),
            move |s| {
                let v = s.get(z);
                s.set(x, v);
            },
        );
        let program = b.build();
        let c_neq = Predicate::new("x!=y", [x, y], move |s| s.get(x) != s.get(y));
        let c_le = Predicate::new("x<=z", [x, z], move |s| s.get(x) <= s.get(z));
        Design::builder(program)
            .partition(
                NodePartition::new()
                    .group("x", [x])
                    .group("y", [y])
                    .group("z", [z]),
            )
            .constraint("x!=y", c_neq, fix_neq)
            .constraint("x<=z", c_le, fix_le)
            .build()
            .unwrap()
    }

    #[test]
    fn good_design_is_theorem1_tolerant() {
        let d = good_xyz();
        let report = d.verify().unwrap();
        assert!(report.closure.ok(), "{:?}", report.closure);
        assert!(matches!(report.theorem, TheoremOutcome::Theorem1 { .. }));
        assert!(report.convergence.converges());
        assert!(report.convergence_unfair.converges());
        assert!(report.is_tolerant());
        assert!(report.is_stabilizing());
        assert!(report.worst_case_moves.is_some());
        assert_eq!(report.shape, Shape::OutTree);
        assert!(report.summary().contains("Theorem 1"));
    }

    #[test]
    fn invariant_is_conjunction() {
        let d = good_xyz();
        let s = d.invariant();
        let p = d.program();
        assert!(s.holds(&p.state_from([0, 1, 2]).unwrap()));
        assert!(!s.holds(&p.state_from([1, 1, 2]).unwrap()), "x=y violates");
        assert!(!s.holds(&p.state_from([2, 1, 0]).unwrap()), "x>z violates");
    }

    #[test]
    fn bad_design_diverges() {
        let d = bad_xyz();
        let report = d.verify().unwrap();
        // The two actions write the same node: both edges target x, and the
        // actions violate each other's constraint, so no theorem applies …
        assert!(!report.theorem.applies());
        // … and the program really can livelock (model-check ground truth).
        assert!(!report.convergence.converges());
        assert!(!report.is_tolerant());
    }

    #[test]
    fn duplicate_action_rejected() {
        let mut b = Program::builder("p");
        let x = b.var("x", Domain::Bool);
        let a = b.convergence_action("a", [x], [x], |_| true, |_| {});
        let program = b.build();
        let pred = Predicate::new("x", [x], move |s| s.get_bool(x));
        let result = Design::builder(program)
            .partition(NodePartition::new().group("x", [x]))
            .constraint("c1", pred.clone(), a)
            .constraint("c2", pred, a)
            .build();
        assert!(matches!(result, Err(DesignError::DuplicateAction(_))));
    }

    #[test]
    fn unknown_action_rejected() {
        let mut b = Program::builder("p");
        let x = b.var("x", Domain::Bool);
        let program = b.build();
        let pred = Predicate::new("x", [x], move |s| s.get_bool(x));
        let result = Design::builder(program)
            .partition(NodePartition::new().group("x", [x]))
            .constraint("c", pred, ActionId::from_index(7))
            .build();
        assert!(matches!(result, Err(DesignError::UnknownAction(_))));
    }

    #[test]
    fn unguarded_constraint_reported() {
        // The convergence action's guard misses part of ¬c.
        let mut b = Program::builder("p");
        let x = b.var("x", Domain::range(0, 2));
        let fix = b.convergence_action(
            "fix",
            [x],
            [x],
            move |s| s.get(x) == 1,
            move |s| s.set(x, 0),
        );
        let program = b.build();
        let c = Predicate::new("x=0", [x], move |s| s.get(x) == 0);
        let d = Design::builder(program)
            .partition(NodePartition::new().group("x", [x]))
            .constraint("x=0", c, fix)
            .build()
            .unwrap();
        let report = d.verify().unwrap();
        // ¬c at x=2 but fix is only enabled at x=1.
        assert_eq!(report.closure.unguarded_constraints.len(), 1);
        assert!(!report.closure.ok());
        assert!(!report.convergence.converges(), "x=2 deadlocks outside S");
    }

    #[test]
    fn non_establishing_action_reported() {
        // The convergence action runs but does not establish its constraint.
        let mut b = Program::builder("p");
        let x = b.var("x", Domain::range(0, 2));
        let bogus = b.convergence_action(
            "bogus",
            [x],
            [x],
            move |s| s.get(x) > 0,
            move |s| s.set(x, 2),
        );
        let program = b.build();
        let c = Predicate::new("x=0", [x], move |s| s.get(x) == 0);
        let d = Design::builder(program)
            .partition(NodePartition::new().group("x", [x]))
            .constraint("x=0", c, bogus)
            .build()
            .unwrap();
        let report = d.verify().unwrap();
        assert_eq!(report.closure.non_establishing.len(), 1);
        assert!(!report.convergence.converges());
    }

    #[test]
    fn cyclic_layer_is_rejected_with_reason() {
        use nonmask_graph::{ConstraintRef, Layering};
        // Two constraints whose repairs write each other's node: a 2-cycle.
        // Putting BOTH in the same layer keeps the layer graph cyclic, so
        // Theorem 3 must not apply, with a reason saying why.
        let mut b = Program::builder("cycle");
        let x = b.var("x", Domain::Bool);
        let y = b.var("y", Domain::Bool);
        let fix_x = b.convergence_action(
            "fix-x",
            [x, y],
            [x],
            move |s| !s.get_bool(x),
            move |s| s.set_bool(x, true),
        );
        let fix_y = b.convergence_action(
            "fix-y",
            [x, y],
            [y],
            move |s| !s.get_bool(y),
            move |s| s.set_bool(y, true),
        );
        let program = b.build();
        let cx = Predicate::new("x", [x], move |s| s.get_bool(x));
        let cy = Predicate::new("y", [y], move |s| s.get_bool(y));
        let design = Design::builder(program)
            .partition(NodePartition::new().group("x", [x]).group("y", [y]))
            .constraint("x", cx, fix_x)
            .constraint("y", cy, fix_y)
            .layering(Layering::single([ConstraintRef(0), ConstraintRef(1)]))
            .build()
            .unwrap();
        let graph = design.constraint_graph().unwrap();
        assert_eq!(graph.shape(), Shape::Cyclic);
        let report = design.verify().unwrap();
        let TheoremOutcome::NotApplicable { reasons } = &report.theorem else {
            panic!(
                "cyclic single layer cannot satisfy Theorem 3: {:?}",
                report.theorem
            );
        };
        assert!(reasons.iter().any(|r| r.contains("cyclic")), "{reasons:?}");
        // The design is nevertheless tolerant — each repair only
        // strengthens, so ground truth converges (the conditions are
        // sufficient, not necessary).
        assert!(report.convergence.converges());
        assert!(report.is_tolerant());
    }

    #[test]
    fn split_layers_rescue_the_cyclic_graph() {
        use nonmask_graph::{ConstraintRef, Layering};
        // The same two-constraint cycle as above, but with one constraint
        // per layer: each layer's graph is a single edge, and the repairs
        // preserve each other's constraints, so Theorem 3 applies.
        let mut b = Program::builder("cycle2");
        let x = b.var("x", Domain::Bool);
        let y = b.var("y", Domain::Bool);
        let fix_x = b.convergence_action(
            "fix-x",
            [x, y],
            [x],
            move |s| !s.get_bool(x),
            move |s| s.set_bool(x, true),
        );
        let fix_y = b.convergence_action(
            "fix-y",
            [x, y],
            [y],
            move |s| !s.get_bool(y),
            move |s| s.set_bool(y, true),
        );
        let program = b.build();
        let cx = Predicate::new("x", [x], move |s| s.get_bool(x));
        let cy = Predicate::new("y", [y], move |s| s.get_bool(y));
        let design = Design::builder(program)
            .partition(NodePartition::new().group("x", [x]).group("y", [y]))
            .constraint("x", cx, fix_x)
            .constraint("y", cy, fix_y)
            .layering(Layering::new([vec![ConstraintRef(0)], vec![ConstraintRef(1)]]).unwrap())
            .build()
            .unwrap();
        let report = design.verify().unwrap();
        assert!(
            matches!(report.theorem, TheoremOutcome::Theorem3 { layers: 2 }),
            "{:?}",
            report.theorem
        );
        assert!(report.is_tolerant());
    }

    #[test]
    fn verify_with_accepts_prebuilt_space() {
        use nonmask_checker::StateSpace;
        let d = good_xyz();
        let space = StateSpace::enumerate(d.program()).unwrap();
        let a = d.verify_with(&space).unwrap();
        let b = d.verify().unwrap();
        assert_eq!(a.is_tolerant(), b.is_tolerant());
        assert_eq!(a.worst_case_moves, b.worst_case_moves);
    }

    #[test]
    fn summary_renders_unbounded_moves() {
        let report = bad_xyz().verify().unwrap();
        assert!(report.worst_case_moves.is_none());
        assert!(report.summary().contains("FAILS"));
        assert!(!report.summary().contains("worst-case moves:"));
    }

    #[test]
    fn invariant_override_is_used() {
        let mut b = Program::builder("ovr");
        let x = b.var("x", Domain::Bool);
        let fix = b.convergence_action(
            "fix",
            [x],
            [x],
            move |s| !s.get_bool(x),
            move |s| s.set_bool(x, true),
        );
        let program = b.build();
        let c = Predicate::new("x", [x], move |s| s.get_bool(x));
        let design = Design::builder(program)
            .partition(NodePartition::new().group("x", [x]))
            .constraint("x", c, fix)
            .invariant_override(Predicate::always_true().named("S-override"))
            .build()
            .unwrap();
        assert_eq!(design.invariant().name(), "S-override");
        let report = design.verify().unwrap();
        // With S = true, every state is invariant and convergence is
        // trivial.
        assert_eq!(report.state_counts.invariant, report.state_counts.total);
        assert!(report.is_tolerant());
    }

    #[test]
    fn default_partition_is_by_process() {
        use nonmask_program::ProcessId;
        let mut b = Program::builder("p");
        let x = b.var_of("x", Domain::Bool, ProcessId(0));
        let fix = b.convergence_action(
            "fix",
            [x],
            [x],
            move |s| !s.get_bool(x),
            move |s| s.set_bool(x, true),
        );
        let program = b.build();
        let c = Predicate::new("x", [x], move |s| s.get_bool(x));
        let d = Design::builder(program)
            .constraint("x", c, fix)
            .build()
            .unwrap();
        assert_eq!(d.partition().len(), 1);
        let report = d.verify().unwrap();
        assert!(report.is_tolerant());
    }
}
