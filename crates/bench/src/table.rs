//! A minimal fixed-width table renderer for experiment reports.

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new<S: Into<String>>(
        title: impl Into<String>,
        header: impl IntoIterator<Item = S>,
    ) -> Self {
        Table {
            title: title.into(),
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header's column count).
    ///
    /// # Panics
    ///
    /// Panics on a column-count mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", ["name", "value"]);
        t.row(["short", "1"]).row(["a-much-longer-name", "22"]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("a-much-longer-name  22"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new("t", ["a", "b"]).row(["only-one"]);
    }
}
