//! The reproduction experiment harness.
//!
//! Each `f1`/`e1`…`e10` function regenerates one experiment from
//! EXPERIMENTS.md (the per-experiment index lives in DESIGN.md §5) and
//! returns its result as a rendered table plus machine-readable rows. The
//! `experiments` binary runs them from the command line:
//!
//! ```text
//! cargo run -p nonmask-bench --bin experiments -- all
//! cargo run -p nonmask-bench --bin experiments -- e3 e8
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use table::Table;

/// The identifiers of all experiments, in presentation order.
pub const ALL: &[&str] = &[
    "f1", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14",
    "e15", "e16",
];

/// Run one experiment by id, returning its rendered report.
///
/// # Panics
///
/// Panics on an unknown id (callers validate against [`ALL`]).
pub fn run(id: &str) -> String {
    match id {
        "f1" => experiments::verify::f1(),
        "e1" => experiments::verify::e1(),
        "e2" => experiments::verify::e2(),
        "e3" => experiments::verify::e3(),
        "e4" => experiments::dynamics::e4(),
        "e5" => experiments::dynamics::e5(),
        "e6" => experiments::dynamics::e6(),
        "e7" => experiments::faults::e7(),
        "e8" => experiments::verify::e8(),
        "e9" => experiments::refinement::e9(),
        "e10" => experiments::verify::e10(),
        "e11" => experiments::nonmasking::e11(),
        "e12" => experiments::cost::e12(),
        "e13" => experiments::cost::e13(),
        "e14" => experiments::cost::e14(),
        "e15" => experiments::netlat::e15(),
        "e16" => experiments::conformance::e16(),
        other => panic!("unknown experiment id `{other}`; known: {ALL:?}"),
    }
}
