//! Mechanical re-verification of the paper's claims.

use nonmask::Design;
use nonmask_checker::{check_convergence, Fairness, StateSpace};
use nonmask_program::Predicate;
use nonmask_protocols::atomic::AtomicActions;
use nonmask_protocols::diffusing::DiffusingComputation;
use nonmask_protocols::token_ring::{windowed_design, TokenRing};
use nonmask_protocols::{xyz, Tree};

use crate::table::Table;

fn yn(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

fn verdict_row(name: &str, design: &Design, t: &mut Table) {
    let graph = design.constraint_graph().expect("derivable graph");
    let report = design.verify().expect("bounded state space");
    t.row([
        name.to_string(),
        graph.shape().to_string(),
        report.theorem.name().to_string(),
        yn(report.closure.invariant.is_none() && report.closure.fault_span.is_none()).to_string(),
        yn(report.convergence.converges()).to_string(),
        yn(report.convergence_unfair.converges()).to_string(),
        report
            .worst_case_moves
            .map_or("∞".to_string(), |m| m.to_string()),
        report.state_counts.total.to_string(),
    ]);
}

const VERDICT_HEADER: [&str; 8] = [
    "design",
    "graph shape",
    "theorem",
    "closure",
    "conv(fair)",
    "conv(unfair)",
    "worst moves",
    "|states|",
];

/// F1 — reproduce the paper's §4 constraint-graph figure.
pub fn f1() -> String {
    let (design, _) = xyz::out_tree().expect("xyz design");
    let graph = design.constraint_graph().expect("derivable graph");
    let mut t = Table::new(
        "F1: the §4 constraint graph of {x!=y, x<=z}",
        ["edge", "from", "to", "constraint", "self-loop"],
    );
    for (i, e) in graph.edges().iter().enumerate() {
        t.row([
            format!("e{i}"),
            graph.node_ref(e.from()).name().to_string(),
            graph.node_ref(e.to()).name().to_string(),
            design.constraints()[e.constraint().0].name().to_string(),
            yn(e.is_self_loop()).to_string(),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "shape: {}\n\nDOT:\n{}",
        graph.shape(),
        graph.to_dot(design.program())
    ));
    out
}

/// E1 — verify the §5.1 diffusing computation end-to-end on small trees.
pub fn e1() -> String {
    let mut t = Table::new(
        "E1: stabilizing diffusing computation (§5.1, Theorem 1)",
        VERDICT_HEADER,
    );
    for (name, tree) in [
        ("chain-3", Tree::chain(3)),
        ("chain-5", Tree::chain(5)),
        ("star-5", Tree::star(5)),
        ("binary-5", Tree::binary(5)),
        ("binary-7(graph only)", Tree::binary(7)),
    ] {
        let dc = DiffusingComputation::new(&tree);
        let design = dc.design().expect("diffusing design");
        if name.contains("graph only") {
            // 4^7 = 16384 states is fine, but keep one row demonstrating
            // the structural result alone for a bigger tree.
            let graph = design.constraint_graph().expect("derivable graph");
            t.row([
                name.to_string(),
                graph.shape().to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                design
                    .program()
                    .state_space_size()
                    .expect("bounded")
                    .to_string(),
            ]);
        } else {
            verdict_row(name, &design, &mut t);
        }
    }
    t.render()
}

/// E2 — verify the §7.1 token ring: the layered (windowed) design via
/// Theorem 3, and Dijkstra's mod-K protocol against the one-privilege
/// invariant.
pub fn e2() -> String {
    let mut t = Table::new(
        "E2a: windowed token ring (paper's layered design, Theorem 3)",
        VERDICT_HEADER,
    );
    for (n, m) in [(3, 2), (3, 3), (4, 3)] {
        let (design, _) = windowed_design(n, m).expect("windowed design");
        verdict_row(&format!("windowed n={n} m={m}"), &design, &mut t);
    }
    let mut out = t.render();

    let mut t2 = Table::new(
        "E2b: Dijkstra mod-K ring, invariant = exactly one privilege",
        [
            "ring",
            "S closed",
            "conv(fair)",
            "conv(unfair)",
            "worst moves",
            "|S|",
            "|states|",
        ],
    );
    for (n, k) in [(3, 3), (4, 4), (5, 5)] {
        let ring = TokenRing::new(n, k);
        let space = StateSpace::enumerate(ring.program()).expect("bounded");
        let s = ring.invariant();
        let t_pred = Predicate::always_true();
        let closed = nonmask_checker::is_closed(&space, ring.program(), &s)
            .expect("closure")
            .is_none();
        let fair = check_convergence(&space, ring.program(), &t_pred, &s, Fairness::WeaklyFair)
            .expect("convergence");
        let unfair = check_convergence(&space, ring.program(), &t_pred, &s, Fairness::Unfair)
            .expect("convergence");
        let moves =
            nonmask_checker::worst_case_moves(&space, ring.program(), &t_pred, &s).expect("bounds");
        t2.row([
            format!("n={n} k={k}"),
            yn(closed).to_string(),
            yn(fair.converges()).to_string(),
            yn(unfair.converges()).to_string(),
            moves.map_or("∞".into(), |m| m.to_string()),
            space.count_satisfying(&s).expect("count").to_string(),
            space.len().to_string(),
        ]);
    }
    out.push('\n');
    out.push_str(&t2.render());
    out
}

/// E3 — the interference ablation: the paper's good designs converge, the
/// bad ones livelock.
pub fn e3() -> String {
    let mut t = Table::new(
        "E3a: §4/§6 xyz designs — good vs bad convergence actions",
        VERDICT_HEADER,
    );
    let (good, _) = xyz::out_tree().expect("xyz");
    let (ordered, _) = xyz::ordered().expect("xyz");
    let (bad, _) = xyz::interfering().expect("xyz");
    verdict_row("out-tree (fix y, z)", &good, &mut t);
    verdict_row("ordered (both fix x, one decreases)", &ordered, &mut t);
    verdict_row("interfering (both fix x carelessly)", &bad, &mut t);
    let mut out = t.render();

    let mut t2 = Table::new(
        "E3b: diffusing computation with parent-writing repairs (edges reversed)",
        ["tree", "conv(fair)", "conv(unfair)"],
    );
    for (name, tree) in [
        ("chain-3", Tree::chain(3)),
        ("star-3", Tree::star(3)),
        ("binary-5", Tree::binary(5)),
    ] {
        let (program, invariant) = DiffusingComputation::misdesigned(&tree);
        let space = StateSpace::enumerate(&program).expect("bounded");
        let t_pred = Predicate::always_true();
        let fair = check_convergence(&space, &program, &t_pred, &invariant, Fairness::WeaklyFair)
            .expect("convergence");
        let unfair = check_convergence(&space, &program, &t_pred, &invariant, Fairness::Unfair)
            .expect("convergence");
        t2.row([
            name.to_string(),
            yn(fair.converges()).to_string(),
            yn(unfair.converges()).to_string(),
        ]);
    }
    out.push('\n');
    out.push_str(&t2.render());
    out
}

/// E8 — the §8 fairness remark: the paper's derived programs converge
/// even without fairness; the atomic-action protocol shows that this is a
/// property of those designs, not of the method.
pub fn e8() -> String {
    let mut t = Table::new(
        "E8: convergence vs daemon fairness (§8 remark)",
        [
            "protocol",
            "conv(weakly fair)",
            "conv(unfair)",
            "needs fairness",
        ],
    );
    let mut row = |name: &str, program: &nonmask_program::Program, s: &Predicate| {
        let space = StateSpace::enumerate(program).expect("bounded");
        let t_pred = Predicate::always_true();
        let fair = check_convergence(&space, program, &t_pred, s, Fairness::WeaklyFair)
            .expect("convergence");
        let unfair =
            check_convergence(&space, program, &t_pred, s, Fairness::Unfair).expect("convergence");
        t.row([
            name.to_string(),
            yn(fair.converges()).to_string(),
            yn(unfair.converges()).to_string(),
            yn(fair.converges() && !unfair.converges()).to_string(),
        ]);
    };

    let dc = DiffusingComputation::new(&Tree::binary(4));
    row("diffusing binary-4", dc.program(), &dc.invariant());
    let ring = TokenRing::new(4, 4);
    row("token ring n=4 k=4", ring.program(), &ring.invariant());
    let (wdesign, _) = windowed_design(3, 3).expect("windowed");
    row(
        "windowed ring n=3 m=3",
        wdesign.program(),
        &wdesign.invariant(),
    );
    let aa = AtomicActions::new(4);
    row("atomic actions n=4", aa.program(), &aa.invariant());
    let (ordered, _) = xyz::ordered().expect("xyz");
    row("xyz ordered", ordered.program(), &ordered.invariant());
    t.render()
}

/// E10 — the method beyond the paper's two worked designs: every protocol
/// in the repository through the same verification pipeline.
pub fn e10() -> String {
    let mut t = Table::new(
        "E10: the design pipeline across all protocols",
        VERDICT_HEADER,
    );
    let (g, _) = xyz::out_tree().expect("xyz");
    verdict_row("xyz out-tree", &g, &mut t);
    let (o, _) = xyz::ordered().expect("xyz");
    verdict_row("xyz ordered", &o, &mut t);
    let dc = DiffusingComputation::new(&Tree::binary(5));
    verdict_row("diffusing binary-5", &dc.design().expect("design"), &mut t);
    let (w, _) = windowed_design(4, 3).expect("windowed");
    verdict_row("windowed ring n=4 m=3", &w, &mut t);
    let aa = AtomicActions::new(4);
    verdict_row("atomic actions n=4", &aa.design().expect("design"), &mut t);
    t.render()
}

/// Theorems actually applied per design (used by tests asserting the
/// method-level outcomes match DESIGN.md's table).
pub fn applied_theorems() -> Vec<(String, &'static str)> {
    let mut out = Vec::new();
    let mut push = |name: &str, design: &Design| {
        let report = design.verify().expect("verifiable");
        out.push((name.to_string(), report.theorem.name()));
    };
    let (g, _) = xyz::out_tree().expect("xyz");
    push("xyz-out-tree", &g);
    let (o, _) = xyz::ordered().expect("xyz");
    push("xyz-ordered", &o);
    let (b, _) = xyz::interfering().expect("xyz");
    push("xyz-interfering", &b);
    let dc = DiffusingComputation::new(&Tree::binary(5));
    push("diffusing", &dc.design().expect("design"));
    let (w, _) = windowed_design(3, 3).expect("windowed");
    push("token-ring-windowed", &w);
    let aa = AtomicActions::new(4);
    push("atomic", &aa.design().expect("design"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_reproduces_the_figure() {
        let out = f1();
        assert!(out.contains("x!=y"));
        assert!(out.contains("x<=z"));
        assert!(out.contains("out-tree"));
        assert!(out.contains("digraph"));
    }

    #[test]
    fn theorem_assignment_matches_design_doc() {
        let got = applied_theorems();
        let expect = [
            ("xyz-out-tree", "Theorem 1"),
            ("xyz-ordered", "Theorem 2"),
            ("xyz-interfering", "none"),
            ("diffusing", "Theorem 1"),
            ("token-ring-windowed", "Theorem 3"),
            ("atomic", "Theorem 3"),
        ];
        for (name, theorem) in expect {
            let found = got
                .iter()
                .find(|(n, _)| n == name)
                .expect("protocol present");
            assert_eq!(found.1, theorem, "{name}");
        }
    }

    #[test]
    fn e3_shows_the_contrast() {
        let out = e3();
        // The interfering design's row ends with the no/no convergence
        // verdict and an unbounded worst case.
        assert!(out.contains("interfering"));
        assert!(out.contains('∞'));
    }

    #[test]
    fn e8_isolates_the_fairness_need() {
        let out = e8();
        let lines: Vec<&str> = out.lines().collect();
        let atomic = lines
            .iter()
            .find(|l| l.starts_with("atomic actions"))
            .expect("atomic row");
        assert!(atomic.trim_end().ends_with("yes"), "{atomic}");
        let ring = lines
            .iter()
            .find(|l| l.starts_with("token ring"))
            .expect("ring row");
        assert!(ring.trim_end().ends_with("no"), "{ring}");
    }
}
