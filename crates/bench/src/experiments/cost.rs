//! E12 — expected vs worst-case convergence cost; E13 — network
//! sensitivity of the message-passing refinement.

use nonmask_checker::{expected_moves, worst_case_moves, StateSpace};
use nonmask_program::scheduler::Random;
use nonmask_program::{Executor, Predicate, RunConfig};
use nonmask_protocols::diffusing::DiffusingComputation;
use nonmask_protocols::token_ring::TokenRing;
use nonmask_protocols::Tree;
use nonmask_sim::{EventConfig, EventSim, Refinement, SimConfig, Simulation};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::Table;

/// E12 — the adversarial worst case (longest region path) vs the expected
/// cost under a uniformly random daemon (absorbing Markov chain) vs the
/// empirical mean of simulated runs. The gap quantifies how pessimistic
/// the rank-style bounds are in practice.
pub fn e12() -> String {
    let mut t = Table::new(
        "E12: worst-case vs expected vs simulated convergence moves",
        [
            "protocol",
            "worst (adversarial)",
            "expected max (random daemon)",
            "expected mean",
            "simulated mean (200 runs)",
        ],
    );

    let mut row = |name: &str, program: &nonmask_program::Program, s: &Predicate| {
        let space = StateSpace::enumerate(program).expect("bounded");
        let t_pred = Predicate::always_true();
        let worst = worst_case_moves(&space, program, &t_pred, s).expect("bounds");
        let em = expected_moves(&space, program, &t_pred, s, 1e-10, 100_000);
        // Simulated mean over uniformly random starts and schedules.
        let mut rng = StdRng::seed_from_u64(3);
        let mut total = 0u64;
        const RUNS: u64 = 200;
        for seed in 0..RUNS {
            let start = program.random_state(&mut rng);
            let report = Executor::new(program).run(
                start,
                &mut Random::seeded(seed),
                &RunConfig::default().stop_when(s, 1).max_steps(1_000_000),
            );
            total += report.steps;
        }
        t.row([
            name.to_string(),
            worst.map_or("∞".into(), |m| m.to_string()),
            format!("{:.2}", em.max()),
            format!("{:.2}", em.mean()),
            format!("{:.2}", total as f64 / RUNS as f64),
        ]);
    };

    for n in [3usize, 4, 5] {
        let ring = TokenRing::new(n, n as i64);
        row(
            &format!("token ring n={n}"),
            ring.program(),
            &ring.invariant(),
        );
    }
    for (name, tree) in [("chain-4", Tree::chain(4)), ("binary-5", Tree::binary(5))] {
        let dc = DiffusingComputation::new(&tree);
        row(&format!("diffusing {name}"), dc.program(), &dc.invariant());
    }
    t.render()
}

/// E13 — how message delay and loss stretch stabilization in the
/// refinement: median rounds to re-stabilize the n=6 token ring from a
/// fixed corrupt state, over a grid of `max_delay × loss_rate`.
pub fn e13() -> String {
    let mut t = Table::new(
        "E13: token ring (n=6) re-stabilization rounds vs network conditions",
        ["max_delay \\ loss", "loss=0.0", "loss=0.2", "loss=0.5"],
    );
    let ring = TokenRing::new(6, 6);
    let refinement = Refinement::new(ring.program()).expect("refinable");
    let corrupt = ring
        .program()
        .state_from([5, 2, 0, 4, 1, 3])
        .expect("in domain");

    for max_delay in [1u64, 2, 4, 8] {
        let mut cells = vec![format!("delay<={max_delay}")];
        for loss in [0.0f64, 0.2, 0.5] {
            let mut rounds: Vec<u64> = (0..7u64)
                .map(|seed| {
                    let config = SimConfig {
                        seed,
                        loss_rate: loss,
                        max_delay,
                        max_rounds: 100_000,
                        ..SimConfig::default()
                    };
                    let mut sim = Simulation::new(
                        ring.program(),
                        refinement.clone(),
                        corrupt.clone(),
                        config,
                    );
                    let report = sim.run_until_stable(&ring.invariant(), 3);
                    report.stabilized_at_round.unwrap_or(u64::MAX)
                })
                .collect();
            rounds.sort_unstable();
            let median = rounds[rounds.len() / 2];
            cells.push(if median == u64::MAX {
                "(never)".to_string()
            } else {
                median.to_string()
            });
        }
        t.row(cells);
    }
    t.render()
}

/// E14 — fully asynchronous execution: the event-driven engine sweeps the
/// ratio of message latency to process speed. Stabilization (in virtual
/// time) degrades gracefully as the network becomes slower than the
/// processes; convergence is never lost.
pub fn e14() -> String {
    let mut t = Table::new(
        "E14: event-driven stabilization (virtual time) vs latency/wake ratio",
        [
            "mean latency / wake",
            "ring n=6 median t",
            "diffusing binary-7 median t",
        ],
    );
    let ring = TokenRing::new(6, 6);
    let ring_ref = Refinement::new(ring.program()).expect("refinable");
    let ring_corrupt = ring
        .program()
        .state_from([5, 2, 0, 4, 1, 3])
        .expect("in domain");
    let dc = DiffusingComputation::new(&Tree::binary(7));
    let dc_ref = Refinement::new(dc.program()).expect("refinable");
    let mut dc_corrupt = dc.initial_state();
    for j in [1usize, 3, 4, 6] {
        dc_corrupt.set(dc.color_var(j), nonmask_protocols::diffusing::RED);
        dc_corrupt.set(dc.session_var(j), (j % 2) as i64);
    }

    for ratio in [0.1f64, 0.5, 2.0, 8.0] {
        let median = |program: &nonmask_program::Program,
                      refinement: &Refinement,
                      corrupt: &nonmask_program::State,
                      s: &Predicate|
         -> String {
            let mut times: Vec<f64> = (0..7u64)
                .map(|seed| {
                    let config = EventConfig {
                        seed,
                        mean_wake_interval: 1.0,
                        mean_latency: ratio,
                        ..EventConfig::default()
                    };
                    let mut sim =
                        EventSim::new(program, refinement.clone(), corrupt.clone(), config);
                    sim.run_until_stable(s, 10.0, 1_000_000.0)
                        .stabilized_at
                        .unwrap_or(f64::INFINITY)
                })
                .collect();
            times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            let m = times[times.len() / 2];
            if m.is_finite() {
                format!("{m:.1}")
            } else {
                "(never)".to_string()
            }
        };
        t.row([
            format!("{ratio}"),
            median(ring.program(), &ring_ref, &ring_corrupt, &ring.invariant()),
            median(dc.program(), &dc_ref, &dc_corrupt, &dc.invariant()),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_never_exceeds_worst() {
        let ring = TokenRing::new(4, 4);
        let s = ring.invariant();
        let space = StateSpace::enumerate(ring.program()).unwrap();
        let worst = worst_case_moves(&space, ring.program(), &Predicate::always_true(), &s)
            .expect("bounds")
            .expect("finite") as f64;
        let em = expected_moves(
            &space,
            ring.program(),
            &Predicate::always_true(),
            &s,
            1e-10,
            100_000,
        );
        assert!(em.converged());
        assert!(
            em.max() <= worst + 1e-9,
            "E_max {} <= worst {}",
            em.max(),
            worst
        );
        assert!(em.mean() <= em.max());
    }

    #[test]
    fn e13_stabilizes_under_all_conditions() {
        let out = e13();
        assert!(!out.contains("(never)"), "{out}");
    }

    #[test]
    fn e14_stabilizes_at_all_ratios() {
        let out = e14();
        assert!(!out.contains("(never)"), "{out}");
    }
}
