//! Shared-memory vs message-passing vs real-thread execution (E9).

use nonmask_program::scheduler::RoundRobin;
use nonmask_program::{Executor, Predicate, Program, RunConfig, State};
use nonmask_protocols::diffusing::DiffusingComputation;
use nonmask_protocols::token_ring::TokenRing;
use nonmask_protocols::Tree;
use nonmask_sim::threaded::run_threaded_until;
use nonmask_sim::{Refinement, SimConfig, Simulation};

use crate::table::Table;

fn compare(t: &mut Table, name: &str, program: &Program, s: &Predicate, corrupt: State) {
    // Shared memory: the paper's model, round-robin daemon.
    let shared = Executor::new(program).run(
        corrupt.clone(),
        &mut RoundRobin::new(),
        &RunConfig::default().stop_when(s, 1).max_steps(1_000_000),
    );

    // Message passing: cached neighbour state, one action per process per
    // round, heartbeats every round.
    let refinement = Refinement::new(program).expect("refinable");
    let mut sim = Simulation::new(
        program,
        refinement.clone(),
        corrupt.clone(),
        SimConfig::default(),
    );
    let mp = sim.run_until_stable(s, 3);

    // Real threads: lock-per-variable, low-atomicity reads, stopping at
    // the first consistent snapshot inside S.
    let threaded = run_threaded_until(program, &refinement, &corrupt, 50_000_000, Some(s));
    let threaded_ok = threaded.stopped_on_predicate && s.holds(&threaded.final_state);

    t.row([
        name.to_string(),
        shared.steps.to_string(),
        mp.stabilized_at_round
            .map_or("(none)".into(), |r| r.to_string()),
        mp.messages_delivered.to_string(),
        threaded.steps.to_string(),
        if threaded_ok { "yes" } else { "NO" }.to_string(),
    ]);
}

/// E9 — the §8 refinement remark, measured: the same corrupted start is
/// driven to `S` under (a) the paper's shared-memory model, (b) the
/// round-based message-passing refinement, and (c) an actually-concurrent
/// lock-per-variable execution.
pub fn e9() -> String {
    let mut t = Table::new(
        "E9: shared memory vs message passing vs threads",
        [
            "protocol",
            "shared-mem steps to S",
            "msg-passing rounds to S",
            "messages",
            "threaded steps to S",
            "threaded reached S",
        ],
    );

    let ring = TokenRing::new(5, 5);
    let corrupt = ring
        .program()
        .state_from([3, 1, 4, 1, 2])
        .expect("in domain");
    compare(
        &mut t,
        "token ring n=5",
        ring.program(),
        &ring.invariant(),
        corrupt,
    );

    let ring8 = TokenRing::new(8, 8);
    let corrupt8 = ring8
        .program()
        .state_from([7, 3, 1, 6, 2, 5, 0, 4])
        .expect("in domain");
    compare(
        &mut t,
        "token ring n=8",
        ring8.program(),
        &ring8.invariant(),
        corrupt8,
    );

    let dc = DiffusingComputation::new(&Tree::binary(7));
    let mut corrupt_dc = dc.initial_state();
    for j in [1usize, 3, 4, 6] {
        corrupt_dc.set(dc.color_var(j), nonmask_protocols::diffusing::RED);
        corrupt_dc.set(dc.session_var(j), (j % 2) as i64);
    }
    compare(
        &mut t,
        "diffusing binary-7",
        dc.program(),
        &dc.invariant(),
        corrupt_dc,
    );

    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_all_models_stabilize() {
        let out = e9();
        assert!(
            !out.contains("(none)"),
            "message passing stabilized:\n{out}"
        );
        assert!(!out.contains(" NO"), "threaded runs ended inside S:\n{out}");
    }
}
