//! Cross-layer conformance corpus: divergences between the executable
//! layers and the checker (E16).

use nonmask_conform::{default_specs, run_corpus, CorpusConfig};
use nonmask_obs::Journal;

use crate::table::Table;

/// E16 — the differential conformance sweep: every simulator and
/// socket-runtime step of the fixed-seed smoke corpus (the same corpus
/// CI runs via `nonmask-run conform --smoke`) is replayed through the
/// checker's step oracle; designated repairs must re-establish their
/// attributed constraints and reliable runs must stabilize inside the
/// checker's worst-case bound plus granularity slack. Expected
/// divergences: **zero** — any nonzero count is a bug in one of the
/// three layers, and the harness shrinks its fault schedule to a
/// minimal reproducer.
pub fn e16() -> String {
    let mut t = Table::new(
        "E16: cross-layer conformance corpus (divergences expected: 0)",
        [
            "protocol",
            "states",
            "bound",
            "sim runs",
            "net runs",
            "steps validated",
            "repairs observed",
            "worst observed",
            "divergent",
        ],
    );

    let specs = default_specs();
    // Base seed 1 matches the CLI default, so this table reproduces the
    // CI smoke gate bit for bit.
    let report = run_corpus(&specs, &CorpusConfig::smoke(1), &Journal::disabled())
        .expect("corpus infrastructure");

    for protocol in &report.protocols {
        let (mut sim, mut net, mut repairs, mut steps) = (0usize, 0usize, 0u64, 0u64);
        let mut worst = 0u64;
        for run in &protocol.runs {
            match run.layer {
                "sim" => sim += 1,
                _ => net += 1,
            }
            repairs += run.report.repairs_observed;
            steps += run.report.steps_checked;
            if let Some(observed) = run.report.observed {
                worst = worst.max(observed);
            }
        }
        t.row([
            protocol.name.clone(),
            protocol.states.to_string(),
            protocol
                .bound
                .map_or_else(|| "unavailable".to_string(), |b| b.to_string()),
            sim.to_string(),
            net.to_string(),
            steps.to_string(),
            repairs.to_string(),
            worst.to_string(),
            protocol.divergent().count().to_string(),
        ]);
    }
    t.row([
        "total".to_string(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        report.steps_checked().to_string(),
        String::new(),
        String::new(),
        report.divergent_runs().to_string(),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unit-sized slice of the corpus stays divergence-free.
    #[test]
    fn a_small_corpus_slice_has_zero_divergences() {
        let config = CorpusConfig {
            base_seed: 1,
            sim_runs: 6,
            net_runs: 0,
            sim_only: true,
        };
        let report =
            run_corpus(&default_specs(), &config, &Journal::disabled()).expect("infrastructure");
        assert_eq!(report.divergent_runs(), 0, "{}", report.render());
    }
}
