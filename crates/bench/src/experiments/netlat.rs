//! Wall-clock convergence latency over real sockets vs frame-loss rate
//! (E15).

use std::time::Duration;

use nonmask_net::{run, FaultConfig, NetConfig};
use nonmask_protocols::token_ring::TokenRing;

use crate::table::Table;

const LOSS_RATES: &[f64] = &[0.0, 0.2, 0.4, 0.6];
const TRIALS: u64 = 5;

/// A config tuned so the *network* dominates the measurement: heartbeats
/// are infrequent (a lost update stays lost for ~51 ms of wall clock, so
/// loss costs real repair time) and the detector window is short (its
/// fixed detection floor stays small next to the repair time).
fn config(seed: u64, loss: f64) -> NetConfig {
    NetConfig {
        seed,
        faults: FaultConfig {
            seed,
            drop_rate: loss,
            corrupt_rate: loss / 4.0,
            duplicate_rate: loss / 8.0,
            delay_rate: loss / 4.0,
            max_delay_ticks: 8,
        },
        heartbeat_every: 256,
        detector: nonmask_net::DetectorConfig {
            stable_for: Duration::from_millis(30),
            stable_fraction: 0.9,
            ..nonmask_net::DetectorConfig::default()
        },
        timeout: Duration::from_secs(30),
        ..NetConfig::default()
    }
}

/// E15 — convergence latency vs loss rate, measured on the socket
/// runtime: a 5-process token ring is started from the same corrupted
/// state on TCP loopback and the runtime detector reports the wall-clock
/// time until the one-privilege invariant stabilizes. As frames drop,
/// repair rides on ever-sparser surviving heartbeats, so the latency
/// tail climbs with loss (a trial that loses a critical token pass waits
/// out whole heartbeat periods) while the protocol still converges every
/// time — nonmasking tolerance with a measurable, bounded price.
pub fn e15() -> String {
    let mut t = Table::new(
        "E15: socket-runtime convergence latency vs frame loss (token ring n=5)",
        [
            "loss rate",
            "converged",
            "median latency (ms)",
            "max latency (ms)",
            "frames dropped",
            "frames rejected",
        ],
    );

    let ring = TokenRing::new(5, 5);
    for &loss in LOSS_RATES {
        let mut latencies: Vec<f64> = Vec::new();
        let mut converged = 0u64;
        let mut dropped = 0u64;
        let mut rejected = 0u64;
        for trial in 0..TRIALS {
            // The same corrupted start for every loss rate (the rates must
            // solve the same convergence problem); the fault schedule
            // varies per trial via the seed.
            let seed = 1 + trial;
            let initial = ring
                .program()
                .state_from([3, 1, 4, 1, 2])
                .expect("in domain");
            let report = run(
                ring.program(),
                &initial,
                &ring.invariant(),
                &config(seed, loss),
            )
            .expect("token ring is refinable");
            if report.converged {
                converged += 1;
                let latency = report.episodes[0].latency().expect("converged episode");
                latencies.push(latency.as_secs_f64() * 1e3);
            }
            dropped += report.nodes.iter().map(|n| n.counters.dropped).sum::<u64>();
            rejected += report
                .nodes
                .iter()
                .map(|n| n.counters.rejected)
                .sum::<u64>();
        }
        latencies.sort_by(f64::total_cmp);
        let median = latencies
            .get(latencies.len() / 2)
            .map_or("(timeout)".to_owned(), |l| format!("{l:.1}"));
        let max = latencies
            .last()
            .map_or("(timeout)".to_owned(), |l| format!("{l:.1}"));
        t.row([
            format!("{:.0}%", loss * 100.0),
            format!("{converged}/{TRIALS}"),
            median,
            max,
            dropped.to_string(),
            rejected.to_string(),
        ]);
    }

    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_converges_at_every_loss_rate() {
        let out = e15();
        assert!(
            !out.contains("(timeout)"),
            "every trial converged within the budget:\n{out}"
        );
        assert!(!out.contains("0/"), "no loss rate lost every trial:\n{out}");
    }
}
