//! E11 — genuinely *nonmasking* (non-stabilizing) tolerance with a
//! mechanically derived fault span.
//!
//! Everything up to here verified *stabilizing* designs (`T = true`). The
//! paper's framework is more general: `T` is "the set of states that the
//! program can reach in the presence of faults" (§3). Here the fault model
//! is restricted — only some variables can be corrupted — and `T` is
//! *computed* as the reachability closure of `S` under program + fault
//! actions. The result is a strict sandwich `S ⊂ T ⊂ true`, closure of the
//! derived `T`, and convergence from `T` back to `S`: the textbook
//! nonmasking picture.

use nonmask_checker::{
    check_convergence, compute_fault_span, is_closed, worst_case_moves, Fairness, StateSpace,
};
use nonmask_program::{Action, ActionKind, State};
use nonmask_protocols::diffusing::{DiffusingComputation, RED};
use nonmask_protocols::token_ring::windowed_design;
use nonmask_protocols::Tree;

use crate::table::Table;

fn yn(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

/// E11 — see the module docs.
pub fn e11() -> String {
    let mut t = Table::new(
        "E11: derived fault spans — nonmasking (non-stabilizing) tolerance",
        [
            "protocol / fault model",
            "|S|",
            "|T| (derived)",
            "|states|",
            "T closed",
            "conv T->S",
            "worst moves from T",
        ],
    );

    // Windowed token ring; faults corrupt only the LAST node's counter.
    {
        let (design, handles) = windowed_design(3, 3).expect("windowed");
        let program = design.program();
        let space = StateSpace::enumerate(program).expect("bounded");
        let s = design.invariant();
        let last = handles.x[2];
        let faults: Vec<Action> = (0..=3)
            .map(|v| {
                Action::new(
                    format!("fault: x.2 := {v}"),
                    ActionKind::Closure,
                    [last],
                    [last],
                    |_: &State| true,
                    move |st: &mut State| st.set(last, v),
                )
            })
            .collect();
        let span = compute_fault_span(&space, program, &s, &faults).expect("span");
        let t_pred = span.to_predicate(&space, "T");
        let closed = is_closed(&space, program, &t_pred)
            .expect("closure")
            .is_none();
        let conv = check_convergence(&space, program, &t_pred, &s, Fairness::WeaklyFair)
            .expect("convergence");
        let moves = worst_case_moves(&space, program, &t_pred, &s).expect("bounds");
        t.row([
            "windowed ring n=3 / corrupt x.2 only".to_string(),
            space.count_satisfying(&s).expect("count").to_string(),
            span.len().to_string(),
            space.len().to_string(),
            yn(closed).to_string(),
            yn(conv.converges()).to_string(),
            moves.map_or("∞".into(), |m| m.to_string()),
        ]);
    }

    // Diffusing computation; faults corrupt only leaf colors.
    {
        let tree = Tree::binary(5);
        let dc = DiffusingComputation::new(&tree);
        let space = StateSpace::enumerate(dc.program()).expect("bounded");
        let s = dc.invariant();
        let mut faults = Vec::new();
        for j in 0..tree.len() {
            if tree.is_leaf(j) {
                let c = dc.color_var(j);
                faults.push(Action::new(
                    format!("fault: redden leaf {j}"),
                    ActionKind::Closure,
                    [c],
                    [c],
                    |_: &State| true,
                    move |st: &mut State| st.set(c, RED),
                ));
            }
        }
        let span = compute_fault_span(&space, dc.program(), &s, &faults).expect("span");
        let t_pred = span.to_predicate(&space, "T");
        let closed = is_closed(&space, dc.program(), &t_pred)
            .expect("closure")
            .is_none();
        let conv = check_convergence(&space, dc.program(), &t_pred, &s, Fairness::WeaklyFair)
            .expect("convergence");
        let moves = worst_case_moves(&space, dc.program(), &t_pred, &s).expect("bounds");
        t.row([
            "diffusing binary-5 / redden leaves".to_string(),
            space.count_satisfying(&s).expect("count").to_string(),
            span.len().to_string(),
            space.len().to_string(),
            yn(closed).to_string(),
            yn(conv.converges()).to_string(),
            moves.map_or("∞".into(), |m| m.to_string()),
        ]);
    }

    let mut out = t.render();
    out.push_str(
        "\nBoth rows exhibit S ⊂ T ⊂ true: tolerance is nonmasking but not\nstabilizing — exactly the §3 taxonomy between masking (S = T) and\nstabilizing (T = true).\n",
    );
    out
}

/// A reusable sandwich check for tests: returns `(|S|, |T|, |states|)` for
/// the windowed-ring row.
pub fn ring_sandwich() -> (usize, usize, usize) {
    let (design, handles) = windowed_design(3, 3).expect("windowed");
    let program = design.program();
    let space = StateSpace::enumerate(program).expect("bounded");
    let s = design.invariant();
    let last = handles.x[2];
    let faults: Vec<Action> = (0..=3)
        .map(|v| {
            Action::new(
                format!("fault: x.2 := {v}"),
                ActionKind::Closure,
                [last],
                [last],
                |_: &State| true,
                move |st: &mut State| st.set(last, v),
            )
        })
        .collect();
    let span = compute_fault_span(&space, program, &s, &faults).expect("span");
    (
        space.count_satisfying(&s).expect("count"),
        span.len(),
        space.len(),
    )
}

/// The same check exposed as a [`nonmask_program::Predicate`]-level helper
/// used by tests.
pub fn ring_span_is_closed() -> bool {
    let (design, handles) = windowed_design(3, 3).expect("windowed");
    let program = design.program();
    let space = StateSpace::enumerate(program).expect("bounded");
    let s = design.invariant();
    let last = handles.x[2];
    let faults: Vec<Action> = (0..=3)
        .map(|v| {
            Action::new(
                "fault",
                ActionKind::Closure,
                [last],
                [last],
                |_: &State| true,
                move |st: &mut State| st.set(last, v),
            )
        })
        .collect();
    let span = compute_fault_span(&space, program, &s, &faults).expect("span");
    let t_pred = span.to_predicate(&space, "T");
    is_closed(&space, program, &t_pred)
        .expect("closure")
        .is_none()
        && check_convergence(&space, program, &t_pred, &s, Fairness::WeaklyFair)
            .expect("convergence")
            .converges()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sandwich_is_strict() {
        let (s, t, total) = ring_sandwich();
        assert!(s < t, "S strictly inside T");
        assert!(t < total, "T strictly inside the state space");
    }

    #[test]
    fn derived_span_is_closed_and_convergent() {
        assert!(ring_span_is_closed());
    }
}
