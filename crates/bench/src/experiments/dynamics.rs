//! Convergence-cost measurements.

use nonmask_checker::{check_convergence, worst_case_moves, Fairness, StateSpace};
use nonmask_program::scheduler::{Random, RoundRobin};
use nonmask_program::{Executor, Predicate, RunConfig};
use nonmask_protocols::diffusing::DiffusingComputation;
use nonmask_protocols::three_state::ThreeState;
use nonmask_protocols::token_ring::TokenRing;
use nonmask_protocols::Tree;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::Table;

/// E4 — the rank argument of Theorem 1, measured: after corrupting `k`
/// nodes of a diffusing computation, how many merged propagate/repair
/// executions occur before `S` first holds, against the rank-sum bound
/// `Σ_j rank(j)` (each edge's action quiesces in rank order).
pub fn e4() -> String {
    let mut t = Table::new(
        "E4: diffusing recovery cost vs the Theorem-1 rank argument",
        [
            "tree",
            "corrupted",
            "steps to S",
            "combined execs",
            "Σ ranks (non-root)",
        ],
    );
    for (name, tree) in [
        ("chain-6", Tree::chain(6)),
        ("star-6", Tree::star(6)),
        ("binary-7", Tree::binary(7)),
        ("binary-15", Tree::binary(15)),
    ] {
        let dc = DiffusingComputation::new(&tree);
        let design = dc.design().expect("design");
        let graph = design.constraint_graph().expect("graph");
        let ranks = graph.ranks().expect("out-tree ranks");
        let rank_sum: u32 = graph.edges().iter().map(|e| ranks[e.to().index()]).sum();
        let s = dc.invariant();
        let mut rng = StdRng::seed_from_u64(11);
        for k in [1, tree.len() / 2, tree.len()] {
            // Start legitimate, corrupt k random nodes' variables.
            let mut state = dc.initial_state();
            for _ in 0..k {
                let j = rand::Rng::gen_range(&mut rng, 0..tree.len());
                let cv = dc.color_var(j);
                let sv = dc.session_var(j);
                state.set(cv, dc.program().var(cv).domain().sample(&mut rng));
                state.set(sv, dc.program().var(sv).domain().sample(&mut rng));
            }
            let report = Executor::new(dc.program()).run(
                state,
                &mut RoundRobin::new(),
                &RunConfig::default().stop_when(&s, 1).max_steps(100_000),
            );
            t.row([
                name.to_string(),
                k.to_string(),
                report.steps.to_string(),
                report.kind_counts.combined.to_string(),
                rank_sum.to_string(),
            ]);
        }
    }
    t.render()
}

/// E5 — diffusing-computation convergence scaling: message-passing rounds
/// to re-stabilize after corrupting half the nodes, per tree shape and
/// size (median of 5 seeds).
pub fn e5() -> String {
    use nonmask_sim::{Refinement, SimConfig, Simulation};
    let mut t = Table::new(
        "E5: diffusing re-stabilization vs tree size/shape (message passing)",
        ["shape", "n", "height", "median rounds", "median messages"],
    );
    type TreeMaker = fn(usize) -> Tree;
    let shapes: [(&str, TreeMaker); 3] = [
        ("chain", Tree::chain),
        ("star", Tree::star),
        ("binary", Tree::binary),
    ];
    for (shape, mk) in shapes {
        for n in [3usize, 7, 15, 31] {
            let tree = mk(n);
            let dc = DiffusingComputation::new(&tree);
            let refinement = Refinement::new(dc.program()).expect("refinable");
            let mut rounds = Vec::new();
            let mut messages = Vec::new();
            for seed in 0..5u64 {
                let mut sim = Simulation::new(
                    dc.program(),
                    refinement.clone(),
                    dc.initial_state(),
                    SimConfig {
                        seed,
                        ..SimConfig::default()
                    },
                );
                for _ in 0..3 {
                    sim.round();
                }
                for j in 0..n / 2 + 1 {
                    sim.corrupt_process(j * 2 % n);
                }
                let before_msgs = sim.messages_delivered();
                let report = sim.run_until_stable(&dc.invariant(), 3);
                rounds.push(
                    report
                        .stabilized_at_round
                        .map_or(u64::MAX, |r| report.rounds.min(r + 3)),
                );
                messages.push(report.messages_delivered - before_msgs);
            }
            rounds.sort_unstable();
            messages.sort_unstable();
            t.row([
                shape.to_string(),
                n.to_string(),
                tree.height().to_string(),
                rounds[2].to_string(),
                messages[2].to_string(),
            ]);
        }
    }
    t.render()
}

/// E6 — token-ring stabilization cost vs ring size, plus the K-vs-n
/// stabilization crossover (Dijkstra's `K >= n` condition, probed
/// exhaustively).
pub fn e6() -> String {
    let mut t = Table::new(
        "E6a: token-ring stabilization cost (random corrupt starts, k=n)",
        [
            "n",
            "median steps to S",
            "max steps (20 trials)",
            "worst-case bound (checker)",
        ],
    );
    for n in [3usize, 4, 5, 6, 8] {
        let ring = TokenRing::new(n, n as i64);
        let s = ring.invariant();
        let mut steps: Vec<u64> = Vec::new();
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..20u64 {
            let state = ring.program().random_state(&mut rng);
            let report = Executor::new(ring.program()).run(
                state,
                &mut Random::seeded(trial),
                &RunConfig::default().stop_when(&s, 1).max_steps(1_000_000),
            );
            steps.push(report.steps);
        }
        steps.sort_unstable();
        let bound = if n <= 5 {
            let space = StateSpace::enumerate(ring.program()).expect("bounded");
            worst_case_moves(&space, ring.program(), &Predicate::always_true(), &s)
                .expect("bounds")
                .map_or("∞".to_string(), |m| m.to_string())
        } else {
            "(state space too large)".to_string()
        };
        t.row([
            n.to_string(),
            steps[steps.len() / 2].to_string(),
            steps[steps.len() - 1].to_string(),
            bound,
        ]);
    }
    let mut out = t.render();

    let mut t2 = Table::new(
        "E6b: does the mod-K ring stabilize? (weakly fair daemon, exhaustive)",
        ["n \\ k", "k=2", "k=3", "k=4", "k=5"],
    );
    for n in [3usize, 4, 5] {
        let mut cells = vec![format!("n={n}")];
        for k in [2i64, 3, 4, 5] {
            let ring = TokenRing::new(n, k);
            let space = StateSpace::enumerate(ring.program()).expect("bounded");
            let r = check_convergence(
                &space,
                ring.program(),
                &Predicate::always_true(),
                &ring.invariant(),
                Fairness::WeaklyFair,
            )
            .expect("convergence");
            cells.push(if r.converges() { "yes" } else { "NO" }.to_string());
        }
        t2.row(cells);
    }
    out.push('\n');
    out.push_str(&t2.render());

    let mut t3 = Table::new(
        "E6c: Dijkstra's three-state line vs the mod-K ring (worst-case moves, exhaustive)",
        ["n", "3-state line", "K-state ring (k=n)"],
    );
    for n in [3usize, 4, 5] {
        let ts = ThreeState::new(n);
        let ts_space = StateSpace::enumerate(ts.program()).expect("bounded");
        let ts_bound = worst_case_moves(
            &ts_space,
            ts.program(),
            &Predicate::always_true(),
            &ts.invariant(),
        )
        .expect("bounds");
        let ring = TokenRing::new(n, n as i64);
        let ring_space = StateSpace::enumerate(ring.program()).expect("bounded");
        let ring_bound = worst_case_moves(
            &ring_space,
            ring.program(),
            &Predicate::always_true(),
            &ring.invariant(),
        )
        .expect("bounds");
        t3.row([
            n.to_string(),
            ts_bound.map_or("∞".into(), |m| m.to_string()),
            ring_bound.map_or("∞".into(), |m| m.to_string()),
        ]);
    }
    out.push('\n');
    out.push_str(&t3.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_stabilizes_every_trial() {
        // Rendering would hide a MaxSteps run as a huge number; re-run one
        // configuration and assert stabilization directly.
        let tree = Tree::binary(7);
        let dc = DiffusingComputation::new(&tree);
        let s = dc.invariant();
        let mut state = dc.initial_state();
        state.set(dc.color_var(3), nonmask_protocols::diffusing::RED);
        let report = Executor::new(dc.program()).run(
            state,
            &mut RoundRobin::new(),
            &RunConfig::default().stop_when(&s, 1).max_steps(100_000),
        );
        assert!(report.stop.is_stabilized() || s.holds(&report.final_state));
    }

    #[test]
    fn e6_crossover_has_failures_and_successes() {
        let out = e6();
        assert!(out.contains("NO"), "small k fails:\n{out}");
        assert!(out.contains("yes"), "k >= n succeeds:\n{out}");
    }
}
