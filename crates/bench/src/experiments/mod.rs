//! Experiment implementations, grouped by kind.
//!
//! - [`verify`] — mechanical re-verification of the paper's claims
//!   (F1, E1, E2, E3, E8, E10).
//! - [`dynamics`] — convergence-cost measurements (E4, E5, E6).
//! - [`faults`] — availability under sustained fault load (E7).
//! - [`refinement`] — shared memory vs message passing vs threads (E9).
//! - [`nonmasking`] — derived fault spans, S ⊂ T ⊂ true (E11).
//! - [`cost`] — expected vs worst-case moves; network sensitivity (E12, E13).
//! - [`netlat`] — socket-runtime convergence latency vs frame loss (E15).
//! - [`conformance`] — cross-layer differential conformance corpus (E16).

pub mod conformance;
pub mod cost;
pub mod dynamics;
pub mod faults;
pub mod netlat;
pub mod nonmasking;
pub mod refinement;
pub mod verify;
