//! Availability under sustained fault load (the nonmasking degradation
//! curve).

use nonmask_program::scheduler::Random;
use nonmask_program::{Executor, RunConfig, TransientCorruption};
use nonmask_protocols::atomic::AtomicActions;
use nonmask_protocols::diffusing::DiffusingComputation;
use nonmask_protocols::token_ring::TokenRing;
use nonmask_protocols::Tree;

use crate::table::Table;

/// Fault rates swept by E7.
pub const RATES: [f64; 5] = [0.001, 0.01, 0.05, 0.1, 0.2];

/// Steps per availability measurement.
pub const STEPS: u64 = 30_000;

/// E7 — fraction of execution steps spent inside the invariant while
/// transient corruption strikes at a given per-step rate. Nonmasking
/// tolerance promises availability degrading smoothly with fault load
/// (§1's motivation), not a hard mask.
pub fn e7() -> String {
    let mut t = Table::new(
        format!("E7: availability (fraction of {STEPS} steps inside S) vs fault rate"),
        [
            "protocol",
            "rate=0.001",
            "rate=0.01",
            "rate=0.05",
            "rate=0.1",
            "rate=0.2",
        ],
    );

    let mut measure = |name: &str,
                       program: &nonmask_program::Program,
                       s: &nonmask_program::Predicate,
                       initial: nonmask_program::State| {
        let mut cells = vec![name.to_string()];
        for (i, &rate) in RATES.iter().enumerate() {
            // Average over seeds: individual runs are heavy-tailed (one
            // unlucky corruption burst can dominate a whole run).
            let mut total = 0.0;
            const SEEDS: u64 = 5;
            for seed in 0..SEEDS {
                let mut faults =
                    TransientCorruption::new(rate, rand::split_seed(seed, 1_000 + i as u64));
                let report = Executor::new(program).run_with_faults(
                    initial.clone(),
                    &mut Random::seeded(77 + seed),
                    &mut faults,
                    &RunConfig::default().max_steps(STEPS).watch(s),
                );
                total += report.availability(0).unwrap_or(0.0);
            }
            cells.push(format!("{:.3}", total / SEEDS as f64));
        }
        t.row(cells);
    };

    let ring = TokenRing::new(5, 5);
    measure(
        "token ring n=5",
        ring.program(),
        &ring.invariant(),
        ring.initial_state(),
    );

    let dc = DiffusingComputation::new(&Tree::binary(7));
    measure(
        "diffusing binary-7",
        dc.program(),
        &dc.invariant(),
        dc.initial_state(),
    );

    let aa = AtomicActions::new(4);
    measure(
        "atomic actions n=4",
        aa.program(),
        &aa.invariant(),
        aa.initial_state(),
    );

    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Availability at low fault rates is near-perfect and degrades
    /// monotonically-ish with the rate (allow small noise).
    #[test]
    fn availability_degrades_with_rate() {
        let ring = TokenRing::new(4, 4);
        let s = ring.invariant();
        let mut avail = Vec::new();
        for (i, rate) in [0.001, 0.2].into_iter().enumerate() {
            let mut faults = TransientCorruption::new(rate, 10 + i as u64);
            let report = Executor::new(ring.program()).run_with_faults(
                ring.initial_state(),
                &mut Random::seeded(3),
                &mut faults,
                &RunConfig::default().max_steps(10_000).watch(&s),
            );
            avail.push(report.availability(0).unwrap());
        }
        assert!(
            avail[0] > 0.9,
            "low fault rate: high availability, got {}",
            avail[0]
        );
        assert!(
            avail[0] > avail[1],
            "higher rate degrades availability: {avail:?}"
        );
    }
}
