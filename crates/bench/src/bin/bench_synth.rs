//! S1 synthesis figures: candidate throughput, attribution-prune ratio,
//! and certification oracle sweeps saved versus unpruned enumeration,
//! emitted as `BENCH_synth.json`.
//!
//! ```text
//! bench_synth                   # full run
//! bench_synth --smoke           # the three paper instances (CI-sized)
//! bench_synth --check           # fail on savings/distance regressions
//! bench_synth --out FILE        # write the JSON somewhere else
//! ```
//!
//! # What is measured
//!
//! Each instance runs [`synthesize`] end to end — grammar, pooled
//! enumeration, implication-lattice classification, attribution prune,
//! certification battery, selection, final `Design::verify` — and
//! reports the synthesizer's own work accounting next to wall clock:
//!
//! - `candidates_per_second`: grammar candidates processed per wall
//!   second (the headline throughput figure);
//! - `prune_ratio`: fraction of candidates the single attribution sweep
//!   eliminates before any per-candidate oracle work;
//! - `oracle_savings`: full-space certification sweeps an unpruned
//!   enumeration would spend, divided by the sweeps actually spent. The
//!   battery never short-circuits, so the two cost models are symmetric
//!   and the ratio is attributable to the prune alone.
//!
//! With `--check`, the token-ring instance must keep `oracle_savings >=
//! 10` (the committed gate) and every instance must synthesize at ideal
//! distance 0 (each chosen guard exactly the required region).

use std::process::ExitCode;
use std::time::Instant;

use nonmask_obs::Journal;
use nonmask_synth::{specs, synthesize, SynthOptions, SynthSpec};

/// Which runs include the instance.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Tier {
    /// Always measured (the paper's three instances, CI-sized).
    Smoke,
    /// Default runs: larger instances of the same families.
    Full,
}

struct Instance {
    name: &'static str,
    spec: SynthSpec,
    tier: Tier,
    /// `--check`: minimum oracle-savings factor (0 = ungated).
    min_savings: f64,
}

fn instances(tier: Tier) -> Vec<Instance> {
    let mut all = vec![
        Instance {
            name: "token-ring-n4-m3",
            spec: specs::token_ring_windowed(4, 3),
            tier: Tier::Smoke,
            min_savings: 10.0,
        },
        Instance {
            name: "diffusing-7",
            spec: specs::diffusing(7),
            tier: Tier::Smoke,
            min_savings: 0.0,
        },
        Instance {
            name: "coloring-7-c3",
            spec: specs::coloring(7, 3),
            tier: Tier::Smoke,
            min_savings: 0.0,
        },
        Instance {
            name: "token-ring-n5-m4",
            spec: specs::token_ring_windowed(5, 4),
            tier: Tier::Full,
            min_savings: 10.0,
        },
        Instance {
            name: "coloring-9-c3",
            spec: specs::coloring(9, 3),
            tier: Tier::Full,
            min_savings: 0.0,
        },
    ];
    all.retain(|i| tier == Tier::Full || i.tier == Tier::Smoke);
    all
}

struct Row {
    name: &'static str,
    states: u64,
    candidates: u64,
    survivors: u64,
    certified: u64,
    oracle_calls: u64,
    oracle_calls_unpruned: u64,
    oracle_savings: f64,
    prune_ratio: f64,
    verify_attempts: u64,
    distance: u64,
    theorem: String,
    worst_case_moves: Option<u64>,
    wall_seconds: f64,
    candidates_per_second: f64,
    min_savings: f64,
}

fn measure(inst: &Instance) -> Result<Row, String> {
    let start = Instant::now();
    let out = synthesize(&inst.spec, &SynthOptions::default(), &Journal::disabled())
        .map_err(|e| format!("{}: {e}", inst.name))?;
    let wall = start.elapsed().as_secs_f64();
    if !out.report.is_tolerant() {
        return Err(format!("{}: synthesized design is not tolerant", inst.name));
    }
    let m = out.metrics;
    Ok(Row {
        name: inst.name,
        states: m.states,
        candidates: m.candidates,
        survivors: m.survivors,
        certified: m.certified,
        oracle_calls: m.oracle_calls,
        oracle_calls_unpruned: m.oracle_calls_unpruned,
        oracle_savings: m.oracle_calls_unpruned as f64 / m.oracle_calls.max(1) as f64,
        prune_ratio: 1.0 - m.survivors as f64 / m.candidates.max(1) as f64,
        verify_attempts: m.verify_attempts,
        distance: out.distance,
        theorem: out.report.theorem.name().to_string(),
        worst_case_moves: out.report.worst_case_moves,
        wall_seconds: wall,
        candidates_per_second: m.candidates as f64 / wall.max(1e-9),
        min_savings: inst.min_savings,
    })
}

fn emit(rows: &[Row], mode: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"bench-synth-v1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"instances\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"states\": {},\n", r.states));
        out.push_str(&format!("      \"candidates\": {},\n", r.candidates));
        out.push_str(&format!("      \"survivors\": {},\n", r.survivors));
        out.push_str(&format!("      \"certified\": {},\n", r.certified));
        out.push_str(&format!("      \"oracle_calls\": {},\n", r.oracle_calls));
        out.push_str(&format!(
            "      \"oracle_calls_unpruned\": {},\n",
            r.oracle_calls_unpruned
        ));
        out.push_str(&format!(
            "      \"oracle_savings\": {:.2},\n",
            r.oracle_savings
        ));
        out.push_str(&format!("      \"prune_ratio\": {:.3},\n", r.prune_ratio));
        out.push_str(&format!(
            "      \"verify_attempts\": {},\n",
            r.verify_attempts
        ));
        out.push_str(&format!("      \"distance\": {},\n", r.distance));
        out.push_str(&format!("      \"theorem\": \"{}\",\n", r.theorem));
        match r.worst_case_moves {
            Some(w) => out.push_str(&format!("      \"worst_case_moves\": {w},\n")),
            None => out.push_str("      \"worst_case_moves\": null,\n"),
        }
        out.push_str(&format!("      \"wall_seconds\": {:.3},\n", r.wall_seconds));
        out.push_str(&format!(
            "      \"candidates_per_second\": {:.0}\n",
            r.candidates_per_second
        ));
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_synth.json".to_string());
    let (tier, mode) = if smoke {
        (Tier::Smoke, "smoke")
    } else {
        (Tier::Full, "full")
    };

    println!(
        "{:<18} {:>9} {:>10} {:>9} {:>9} {:>8} {:>10} {:>8} {:>8}",
        "instance",
        "states",
        "candidates",
        "survivors",
        "oracle",
        "unpruned",
        "savings",
        "wall s",
        "cand/s"
    );
    let mut rows = Vec::new();
    let mut failed = false;
    for inst in instances(tier) {
        let r = match measure(&inst) {
            Ok(r) => r,
            Err(msg) => {
                eprintln!("FAIL {msg}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "{:<18} {:>9} {:>10} {:>9} {:>9} {:>8} {:>9.1}x {:>8.3} {:>8.0}",
            r.name,
            r.states,
            r.candidates,
            r.survivors,
            r.oracle_calls,
            r.oracle_calls_unpruned,
            r.oracle_savings,
            r.wall_seconds,
            r.candidates_per_second
        );
        if check {
            if r.min_savings > 0.0 && r.oracle_savings < r.min_savings {
                eprintln!(
                    "FAIL {}: oracle savings {:.1}x below the committed gate {:.0}x",
                    r.name, r.oracle_savings, r.min_savings
                );
                failed = true;
            }
            if r.distance != 0 {
                eprintln!(
                    "FAIL {}: ideal-stabilization distance {} (expected 0)",
                    r.name, r.distance
                );
                failed = true;
            }
        }
        rows.push(r);
    }
    let json = emit(&rows, mode);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
