//! F2 fleet figures: multi-tenant throughput (instances/s, steps/s),
//! per-tenant footprint, verdict-cache hit rate, and stabilization-latency
//! percentiles versus the checker's certified bounds, emitted as
//! `BENCH_fleet.json`.
//!
//! ```text
//! bench_fleet                   # full run (1M+ tenants)
//! bench_fleet --smoke           # CI-sized (100k tenants)
//! bench_fleet --check           # fail on violations or footprint/cache regressions
//! bench_fleet --out FILE        # write the JSON somewhere else
//! ```
//!
//! # What is measured
//!
//! Each population runs [`run_fleet`] end to end: per-tenant fault
//! streams split from one master seed, batch-stepped slabs over the
//! work-stealing pool, first-tenant-pays verdict caching. Reported per
//! population:
//!
//! - `instances_per_second` / `steps_per_second`: throughput;
//! - `bytes_per_instance`: resident state + metadata per tenant;
//! - `cache_hit_rate`: verdict-cache hits over lookups;
//! - `p50_steps` / `p99_steps` / `max_latency`: final-episode
//!   stabilization latency, compared per configuration against the
//!   checker's `worst_case_moves` bound.
//!
//! With `--check`, every population must show zero violations (no stuck,
//! exhausted, or over-bound tenants), `bytes_per_instance <= 64` for the
//! ring populations, and a cache hit rate above 99.9%; additionally the
//! smoke population is re-run under a different worker count and slab
//! size and its deterministic digest must not move.

use std::process::ExitCode;

use nonmask_fleet::{run_fleet, FleetConfig, FleetProtocol, FleetReport};
use nonmask_obs::Journal;

/// Which runs include the population.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Tier {
    /// Always measured (CI-sized).
    Smoke,
    /// Default runs: the million-tenant populations.
    Full,
}

struct Population {
    name: &'static str,
    config: FleetConfig,
    tier: Tier,
    /// `--check`: maximum bytes/instance (0 = ungated).
    max_bytes: u64,
}

fn populations(tier: Tier) -> Vec<Population> {
    let mut all = vec![
        Population {
            name: "ring-mix-100k",
            config: FleetConfig {
                protocols: FleetProtocol::ring_mix(),
                tenants: 100_000,
                master_seed: 0xF1EE_7001,
                faults_per_tenant: 2,
                ..FleetConfig::default()
            },
            tier: Tier::Smoke,
            max_bytes: 64,
        },
        Population {
            name: "mixed-100k",
            config: FleetConfig {
                protocols: FleetProtocol::mixed(),
                tenants: 100_000,
                master_seed: 0xF1EE_7002,
                faults_per_tenant: 2,
                ..FleetConfig::default()
            },
            tier: Tier::Smoke,
            max_bytes: 0,
        },
        Population {
            name: "ring-mix-1m",
            config: FleetConfig {
                protocols: FleetProtocol::ring_mix(),
                tenants: 1_000_000,
                master_seed: 0xF1EE_7003,
                faults_per_tenant: 2,
                ..FleetConfig::default()
            },
            tier: Tier::Full,
            max_bytes: 64,
        },
        Population {
            name: "mixed-1m",
            config: FleetConfig {
                protocols: FleetProtocol::mixed(),
                tenants: 1_000_000,
                master_seed: 0xF1EE_7004,
                faults_per_tenant: 3,
                ..FleetConfig::default()
            },
            tier: Tier::Full,
            max_bytes: 0,
        },
    ];
    all.retain(|p| tier == Tier::Full || p.tier == Tier::Smoke);
    all
}

fn emit(rows: &[(&'static str, FleetReport)], mode: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"bench-fleet-v1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"populations\": [\n");
    for (i, (name, r)) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{name}\",\n"));
        out.push_str(&format!("      \"report\": {}\n", r.to_json()));
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Re-run the population under inverted scheduling knobs and compare
/// digests: the determinism spot check `--check` enforces.
fn digest_moves_under_rescheduling(pop: &Population, baseline: &FleetReport) -> bool {
    let mut alt = pop.config.clone();
    alt.workers = if baseline.workers == 1 { 4 } else { 1 };
    alt.slab_size = if pop.config.slab_size == 512 {
        4096
    } else {
        512
    };
    match run_fleet(&alt, &Journal::disabled()) {
        Ok(report) => report.digest() != baseline.digest(),
        Err(_) => true,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_fleet.json".to_string());
    let (tier, mode) = if smoke {
        (Tier::Smoke, "smoke")
    } else {
        (Tier::Full, "full")
    };

    println!(
        "{:<14} {:>9} {:>12} {:>13} {:>7} {:>8} {:>5} {:>5} {:>8}",
        "population", "tenants", "inst/s", "steps/s", "B/inst", "hit rate", "p50", "p99", "wall s"
    );
    let mut rows: Vec<(&'static str, FleetReport)> = Vec::new();
    let mut failed = false;
    for pop in populations(tier) {
        let report = match run_fleet(&pop.config, &Journal::disabled()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("FAIL {}: {e}", pop.name);
                return ExitCode::FAILURE;
            }
        };
        println!(
            "{:<14} {:>9} {:>12.0} {:>13.0} {:>7} {:>7.4}% {:>5} {:>5} {:>8.3}",
            pop.name,
            report.tenants,
            report.instances_per_second(),
            report.steps_per_second(),
            report.bytes_per_instance,
            report.cache_hit_rate() * 100.0,
            report.histogram.percentile(50.0).unwrap_or(0),
            report.histogram.percentile(99.0).unwrap_or(0),
            report.wall.as_secs_f64(),
        );
        if check {
            if report.violations() != 0 {
                eprintln!(
                    "FAIL {}: {} verdict-contradicting tenants (stuck/exhausted/over-bound)",
                    pop.name,
                    report.violations()
                );
                failed = true;
            }
            if pop.max_bytes > 0 && report.bytes_per_instance > pop.max_bytes {
                eprintln!(
                    "FAIL {}: {} bytes/instance exceeds the {}-byte budget",
                    pop.name, report.bytes_per_instance, pop.max_bytes
                );
                failed = true;
            }
            if report.cache_hit_rate() < 0.999 {
                eprintln!(
                    "FAIL {}: cache hit rate {:.4} below 0.999",
                    pop.name,
                    report.cache_hit_rate()
                );
                failed = true;
            }
            if pop.tier == Tier::Smoke && digest_moves_under_rescheduling(&pop, &report) {
                eprintln!(
                    "FAIL {}: deterministic digest moved under different workers/slab size",
                    pop.name
                );
                failed = true;
            }
        }
        rows.push((pop.name, report));
    }
    let json = emit(&rows, mode);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
