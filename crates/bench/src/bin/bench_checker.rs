//! B1 perf baseline: state-space construction throughput and resident
//! memory of the CSR representation, emitted as `BENCH_checker.json`.
//!
//! ```text
//! bench_checker                 # full run (includes the 16.7M-state instances)
//! bench_checker --smoke         # small instances only (CI-sized, seconds)
//! bench_checker --check         # additionally fail if bytes/state regresses
//! bench_checker --out FILE      # write the JSON somewhere else
//! ```
//!
//! For every instance the run reports states/s and transitions/s of
//! enumeration, the CSR resident bytes per state
//! ([`StateSpace::resident_bytes`]), and the bytes per state of the seed
//! representation, computed from the same state and transition counts.
//! The seed's `StateSpace` held three parallel structures (see the v0
//! `crates/checker/src/space.rs`): a materialized `Vec<State>`, a
//! `HashMap<State, StateId>` reverse index with *owned cloned* keys, and
//! one `Vec<(ActionId, StateId)>` transition row per state:
//!
//! ```text
//! seed_bytes = n·(16 + 8·vars)      states column (fat Box<[i64]> + slots)
//!            + n·(16 + 8·vars)      cloned HashMap keys (heap)
//!            + (n·8/7)·(24 + 1)     hash buckets (key+id) + control bytes
//!            + n·24 + m·8           row Vec headers + 8-byte pairs
//! ```
//!
//! With `--check`, each instance's measured CSR bytes/state is compared
//! against the committed ceiling below; CI runs `--smoke --check` so a
//! representation regression (e.g. transitions growing back to 16 bytes)
//! fails the build.

use std::process::ExitCode;
use std::time::Instant;

use nonmask_checker::{CheckOptions, StateSpace};
use nonmask_program::Program;
use nonmask_protocols::diffusing::DiffusingComputation;
use nonmask_protocols::token_ring::TokenRing;
use nonmask_protocols::Tree;

/// One benchmark instance: a named program plus the committed ceiling on
/// CSR bytes per state (`--check` fails above it). Ceilings are ~15% over
/// the measured value on the reference container, so noise passes but a
/// layout regression (anything that adds bytes per transition) does not.
struct Instance {
    name: &'static str,
    program: Program,
    max_bytes_per_state: f64,
    smoke: bool,
}

fn instances(smoke_only: bool) -> Vec<Instance> {
    let mut all = vec![
        Instance {
            name: "token-ring-n5-k5",
            program: TokenRing::new(5, 5).program().clone(),
            max_bytes_per_state: 36.0,
            smoke: true,
        },
        Instance {
            name: "token-ring-n7-k7",
            program: TokenRing::new(7, 7).program().clone(),
            max_bytes_per_state: 52.0,
            smoke: true,
        },
        Instance {
            name: "diffusing-binary-9",
            program: DiffusingComputation::new(&Tree::binary(9))
                .program()
                .clone(),
            max_bytes_per_state: 78.0,
            smoke: true,
        },
        Instance {
            name: "token-ring-n8-k8",
            program: TokenRing::new(8, 8).program().clone(),
            max_bytes_per_state: 62.0,
            smoke: false,
        },
        Instance {
            name: "diffusing-binary-12",
            program: DiffusingComputation::new(&Tree::binary(12))
                .program()
                .clone(),
            max_bytes_per_state: 110.0,
            smoke: false,
        },
    ];
    if smoke_only {
        all.retain(|i| i.smoke);
    }
    all
}

struct Row {
    name: &'static str,
    states: usize,
    transitions: usize,
    enumerate_seconds: f64,
    states_per_second: f64,
    transitions_per_second: f64,
    resident_bytes: usize,
    bytes_per_state: f64,
    seed_bytes: u64,
    seed_bytes_per_state: f64,
    memory_reduction: f64,
    max_bytes_per_state: f64,
}

fn measure(inst: &Instance) -> Row {
    let started = Instant::now();
    let space = StateSpace::enumerate_with_options(&inst.program, CheckOptions::default())
        .expect("bench instances are bounded and fit the default budget");
    let secs = started.elapsed().as_secs_f64();

    let n = space.len();
    let m = space.transition_count();
    let vars = space.var_count();
    let resident = space.resident_bytes();
    // The seed representation (see the module docs): materialized states,
    // a hash index with owned keys, and nested transition rows. The hash
    // table is modeled at its 7/8 maximum load factor, i.e. a lower bound
    // on its true capacity.
    let state_bytes = 16 + 8 * vars as u64;
    let seed_bytes = n as u64 * state_bytes * 2   // Vec<State> + cloned keys
        + (n as u64 * 8).div_ceil(7) * 25         // buckets (24 B) + ctrl (1 B)
        + n as u64 * 24                           // row Vec headers
        + m as u64 * 8; // (ActionId, StateId) pairs

    Row {
        name: inst.name,
        states: n,
        transitions: m,
        enumerate_seconds: secs,
        states_per_second: n as f64 / secs,
        transitions_per_second: m as f64 / secs,
        resident_bytes: resident,
        bytes_per_state: resident as f64 / n as f64,
        seed_bytes,
        seed_bytes_per_state: seed_bytes as f64 / n as f64,
        memory_reduction: seed_bytes as f64 / resident as f64,
        max_bytes_per_state: inst.max_bytes_per_state,
    }
}

fn to_json(mode: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"bench-checker-v1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"instances\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"states\": {},\n",
                "      \"transitions\": {},\n",
                "      \"enumerate_seconds\": {:.3},\n",
                "      \"states_per_second\": {:.0},\n",
                "      \"transitions_per_second\": {:.0},\n",
                "      \"resident_bytes\": {},\n",
                "      \"bytes_per_state\": {:.2},\n",
                "      \"seed_bytes\": {},\n",
                "      \"seed_bytes_per_state\": {:.2},\n",
                "      \"memory_reduction\": {:.2},\n",
                "      \"max_bytes_per_state\": {:.1}\n",
                "    }}{}\n",
            ),
            r.name,
            r.states,
            r.transitions,
            r.enumerate_seconds,
            r.states_per_second,
            r.transitions_per_second,
            r.resident_bytes,
            r.bytes_per_state,
            r.seed_bytes,
            r.seed_bytes_per_state,
            r.memory_reduction,
            r.max_bytes_per_state,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_checker.json".to_string());

    println!(
        "{:<22} {:>12} {:>12} {:>9} {:>12} {:>13} {:>8} {:>8} {:>7}",
        "instance",
        "states",
        "transitions",
        "enum s",
        "states/s",
        "trans/s",
        "B/state",
        "seed B/s",
        "reduce"
    );
    let mut rows = Vec::new();
    let mut failed = false;
    for inst in instances(smoke) {
        let r = measure(&inst);
        println!(
            "{:<22} {:>12} {:>12} {:>9.3} {:>12.0} {:>13.0} {:>8.2} {:>8.2} {:>6.2}x",
            r.name,
            r.states,
            r.transitions,
            r.enumerate_seconds,
            r.states_per_second,
            r.transitions_per_second,
            r.bytes_per_state,
            r.seed_bytes_per_state,
            r.memory_reduction,
        );
        if check && r.bytes_per_state > r.max_bytes_per_state {
            eprintln!(
                "FAIL {}: {:.2} bytes/state exceeds the committed ceiling {:.1}",
                r.name, r.bytes_per_state, r.max_bytes_per_state
            );
            failed = true;
        }
        rows.push(r);
    }

    let json = to_json(if smoke { "smoke" } else { "full" }, &rows);
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
