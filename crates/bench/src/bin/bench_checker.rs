//! B1 perf baseline: state-space construction throughput, resident memory
//! of the CSR representation, and out-of-core (segmented / frontier)
//! throughput, emitted as `BENCH_checker.json`.
//!
//! ```text
//! bench_checker                 # full run (includes the 16.7M-state instances)
//! bench_checker --smoke         # small instances only (CI-sized, seconds)
//! bench_checker --huge          # additionally the 2^28-state frontier instance
//! bench_checker --check         # fail on bytes/state or throughput-curve regressions
//! bench_checker --out FILE      # write the JSON somewhere else
//! ```
//!
//! # What is timed, and why setup is split out
//!
//! Enumeration is reported as three figures: `wall_seconds` (everything),
//! `build_seconds` (the CSR count + fill phases, taken from the checker's
//! own [`CsrPhase`](nonmask_obs::Event::CsrPhase) journal events), and
//! `setup_seconds` (the difference: allocating and zero-filling the
//! offsets/actions/succs columns, building the index, prefix-summing).
//! `states_per_second` divides by `build_seconds`, **not** wall clock:
//! the column allocations are one-time costs linear in the table size and
//! paid before any state is visited, so folding them into the rate made
//! the throughput curve appear to collapse on large instances when the
//! per-state work was in fact flat. The curve itself is gated: with
//! `--check`, within every protocol family the slowest instance's
//! **transitions/s** must stay within `2x` of the fastest's (instances
//! under 100k states are exempt — their timings are noise). The gate is
//! work-normalized on purpose: scaling a family up adds tree nodes, and
//! each node adds both variables to decode and enabled actions per state,
//! so states/s falls with size even at perfectly flat per-transition
//! throughput — a transition evaluated is the size-invariant unit of
//! enumeration work, and a scheduling or memory collapse shows up in it
//! directly.
//!
//! # Out-of-core figures
//!
//! Every resident instance is also swept through [`SegmentedSpace`]
//! (`seg_scan_seconds`, `segments`): the same transition relation built
//! segment-at-a-time by work-stealing workers and dropped after the scan.
//! Diffusing instances additionally run the frontier convergence check
//! ([`check_convergence_frontier_stats`]), which never materializes
//! transitions; `--huge` adds `diffusing-binary-14` (`4^14 = 2^28`
//! states), whose ~24 GB CSR table cannot exist under the default 8 GiB
//! budget, as a frontier-only instance.
//!
//! # The seed comparison
//!
//! `seed_bytes` models the v0 representation (materialized `Vec<State>`,
//! a `HashMap<State, StateId>` with owned cloned keys at 7/8 load factor,
//! one `Vec<(ActionId, StateId)>` row per state):
//!
//! ```text
//! seed_bytes = n·(16 + 8·vars)      states column (fat Box<[i64]> + slots)
//!            + n·(16 + 8·vars)      cloned HashMap keys (heap)
//!            + (n·8/7)·(24 + 1)     hash buckets (key+id) + control bytes
//!            + n·24 + m·8           row Vec headers + 8-byte pairs
//! ```

use std::process::ExitCode;
use std::time::Instant;

use nonmask_checker::{
    check_convergence_frontier_stats, CheckOptions, ConvergenceResult, Fairness, SegmentedSpace,
    SpaceIndex, StateSpace,
};
use nonmask_obs::{Event, Journal};
use nonmask_program::{Predicate, Program};
use nonmask_protocols::diffusing::DiffusingComputation;
use nonmask_protocols::token_ring::TokenRing;
use nonmask_protocols::Tree;

/// Which runs include the instance.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Tier {
    /// Always measured (CI-sized, seconds).
    Smoke,
    /// Default and `--huge` runs (the 16.7M-state instances).
    Full,
    /// `--huge` runs only (the 2^28-state frontier-only instance).
    Huge,
}

/// One benchmark instance. `max_bytes_per_state` is the committed ceiling
/// on CSR bytes per state (`--check` fails above it); ceilings are ~15%
/// over the measured value on the reference container, so noise passes
/// but a layout regression (anything that adds bytes per transition) does
/// not. `goal` enables the frontier convergence measurement (the
/// predicate the protocol converges to without fairness).
struct Instance {
    name: &'static str,
    /// Scaling-family key for the throughput-flatness gate.
    family: &'static str,
    program: Program,
    goal: Option<Predicate>,
    max_bytes_per_state: f64,
    tier: Tier,
    /// `false` for instances whose CSR table exceeds the default budget:
    /// only the frontier figures are measured.
    resident: bool,
}

fn instances(tier: Tier) -> Vec<Instance> {
    let mut all = vec![
        Instance {
            name: "token-ring-n5-k5",
            family: "token-ring",
            program: TokenRing::new(5, 5).program().clone(),
            goal: None,
            max_bytes_per_state: 36.0,
            tier: Tier::Smoke,
            resident: true,
        },
        Instance {
            name: "token-ring-n7-k7",
            family: "token-ring",
            program: TokenRing::new(7, 7).program().clone(),
            goal: None,
            max_bytes_per_state: 52.0,
            tier: Tier::Smoke,
            resident: true,
        },
        {
            let dc = DiffusingComputation::new(&Tree::binary(9));
            Instance {
                name: "diffusing-binary-9",
                family: "diffusing-binary",
                goal: Some(dc.invariant()),
                program: dc.program().clone(),
                max_bytes_per_state: 78.0,
                tier: Tier::Smoke,
                resident: true,
            }
        },
        Instance {
            name: "token-ring-n8-k8",
            family: "token-ring",
            program: TokenRing::new(8, 8).program().clone(),
            goal: None,
            max_bytes_per_state: 62.0,
            tier: Tier::Full,
            resident: true,
        },
        {
            let dc = DiffusingComputation::new(&Tree::binary(12));
            Instance {
                name: "diffusing-binary-12",
                family: "diffusing-binary",
                goal: Some(dc.invariant()),
                program: dc.program().clone(),
                max_bytes_per_state: 110.0,
                tier: Tier::Full,
                resident: true,
            }
        },
        {
            let dc = DiffusingComputation::new(&Tree::binary(14));
            Instance {
                name: "diffusing-binary-14",
                family: "diffusing-binary",
                goal: Some(dc.invariant()),
                program: dc.program().clone(),
                max_bytes_per_state: 0.0,
                tier: Tier::Huge,
                resident: false,
            }
        },
    ];
    all.retain(|i| match tier {
        Tier::Smoke => i.tier == Tier::Smoke,
        Tier::Full => i.tier != Tier::Huge,
        Tier::Huge => true,
    });
    all
}

/// Figures only resident instances have.
struct ResidentFigures {
    transitions: usize,
    wall_seconds: f64,
    setup_seconds: f64,
    build_seconds: f64,
    states_per_second: f64,
    transitions_per_second: f64,
    resident_bytes: usize,
    bytes_per_state: f64,
    seed_bytes: u64,
    seed_bytes_per_state: f64,
    memory_reduction: f64,
    max_bytes_per_state: f64,
    segments: usize,
    seg_scan_seconds: f64,
    seg_states_per_second: f64,
}

/// Figures from the frontier convergence check.
struct FrontierFigures {
    seconds: f64,
    rounds: u64,
    evals: u64,
    states_per_second: f64,
    verdict: &'static str,
}

struct Row {
    name: &'static str,
    family: &'static str,
    states: usize,
    resident: Option<ResidentFigures>,
    frontier: Option<FrontierFigures>,
}

/// Sum of the CSR count + fill phase durations, from the journal the
/// enumeration wrote. This is the per-state work; everything else in the
/// wall time is one-time setup (allocation, index construction).
fn build_micros(journal_lines: &str) -> u64 {
    journal_lines
        .lines()
        .filter_map(|l| Event::parse_line(l).ok())
        .filter_map(|r| match r.event {
            Event::CsrPhase { micros, .. } => Some(micros),
            _ => None,
        })
        .sum()
}

fn measure_resident(inst: &Instance, opts: CheckOptions) -> (usize, ResidentFigures) {
    let (journal, buffer) = Journal::memory();
    let started = Instant::now();
    let space = StateSpace::enumerate_journaled(&inst.program, opts, &journal)
        .expect("resident bench instances fit the default budget");
    let wall = started.elapsed().as_secs_f64();
    journal.flush();
    let build = build_micros(&buffer.contents()) as f64 / 1e6;

    let n = space.len();
    let m = space.transition_count();
    let vars = space.var_count();
    let resident = space.resident_bytes();
    // The seed representation (see the module docs). The hash table is
    // modeled at its 7/8 maximum load factor, i.e. a lower bound on its
    // true capacity.
    let state_bytes = 16 + 8 * vars as u64;
    let seed_bytes = n as u64 * state_bytes * 2   // Vec<State> + cloned keys
        + (n as u64 * 8).div_ceil(7) * 25         // buckets (24 B) + ctrl (1 B)
        + n as u64 * 24                           // row Vec headers
        + m as u64 * 8; // (ActionId, StateId) pairs
    drop(space);

    // The same relation, segment-at-a-time: built by work-stealing
    // workers, scanned, dropped. The count cross-checks the CSR build.
    let seg_space = SegmentedSpace::new(&inst.program, opts).expect("segment plans fit the budget");
    let seg_started = Instant::now();
    let per_segment = seg_space
        .scan(|_ti, seg| seg.transition_count() as u64)
        .expect("segmented scan of a resident-sized instance");
    let seg_secs = seg_started.elapsed().as_secs_f64();
    let seg_m: u64 = per_segment.iter().sum();
    assert_eq!(seg_m, m as u64, "segmented scan must see every transition");

    let figures = ResidentFigures {
        transitions: m,
        wall_seconds: wall,
        setup_seconds: (wall - build).max(0.0),
        build_seconds: build,
        states_per_second: n as f64 / build,
        transitions_per_second: m as f64 / build,
        resident_bytes: resident,
        bytes_per_state: resident as f64 / n as f64,
        seed_bytes,
        seed_bytes_per_state: seed_bytes as f64 / n as f64,
        memory_reduction: seed_bytes as f64 / resident as f64,
        max_bytes_per_state: inst.max_bytes_per_state,
        segments: seg_space.segment_count(),
        seg_scan_seconds: seg_secs,
        seg_states_per_second: n as f64 / seg_secs,
    };
    (n, figures)
}

fn measure_frontier(inst: &Instance, goal: &Predicate, opts: CheckOptions) -> FrontierFigures {
    let started = Instant::now();
    let (result, stats) = check_convergence_frontier_stats(
        &inst.program,
        &Predicate::always_true(),
        goal,
        Fairness::Unfair,
        opts,
        &Journal::disabled(),
    )
    .expect("frontier mode stays within the default budget");
    let secs = started.elapsed().as_secs_f64();
    FrontierFigures {
        seconds: secs,
        rounds: stats.rounds,
        evals: stats.evals,
        states_per_second: stats.convergence.region_states as f64 / secs,
        verdict: match result {
            ConvergenceResult::Converges => "converges",
            _ => "diverges",
        },
    }
}

fn measure(inst: &Instance, opts: CheckOptions) -> Row {
    let (states, resident) = if inst.resident {
        let (n, figures) = measure_resident(inst, opts);
        (n, Some(figures))
    } else {
        let index = SpaceIndex::of_program(&inst.program, opts)
            .expect("the index is O(variables), it always fits");
        (index.len(), None)
    };
    let frontier = inst
        .goal
        .as_ref()
        .map(|goal| measure_frontier(inst, goal, opts));
    Row {
        name: inst.name,
        family: inst.family,
        states,
        resident,
        frontier,
    }
}

fn to_json(mode: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"bench-checker-v2\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"instances\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"family\": \"{}\",\n", r.family));
        out.push_str(&format!(
            "      \"kind\": \"{}\",\n",
            if r.resident.is_some() {
                "resident"
            } else {
                "frontier-only"
            }
        ));
        out.push_str(&format!("      \"states\": {}", r.states));
        if let Some(f) = &r.resident {
            out.push_str(&format!(
                concat!(
                    ",\n",
                    "      \"transitions\": {},\n",
                    "      \"wall_seconds\": {:.3},\n",
                    "      \"setup_seconds\": {:.3},\n",
                    "      \"build_seconds\": {:.3},\n",
                    "      \"states_per_second\": {:.0},\n",
                    "      \"transitions_per_second\": {:.0},\n",
                    "      \"resident_bytes\": {},\n",
                    "      \"bytes_per_state\": {:.2},\n",
                    "      \"seed_bytes\": {},\n",
                    "      \"seed_bytes_per_state\": {:.2},\n",
                    "      \"memory_reduction\": {:.2},\n",
                    "      \"max_bytes_per_state\": {:.1},\n",
                    "      \"segments\": {},\n",
                    "      \"seg_scan_seconds\": {:.3},\n",
                    "      \"seg_states_per_second\": {:.0}",
                ),
                f.transitions,
                f.wall_seconds,
                f.setup_seconds,
                f.build_seconds,
                f.states_per_second,
                f.transitions_per_second,
                f.resident_bytes,
                f.bytes_per_state,
                f.seed_bytes,
                f.seed_bytes_per_state,
                f.memory_reduction,
                f.max_bytes_per_state,
                f.segments,
                f.seg_scan_seconds,
                f.seg_states_per_second,
            ));
        }
        if let Some(f) = &r.frontier {
            out.push_str(&format!(
                concat!(
                    ",\n",
                    "      \"frontier_seconds\": {:.3},\n",
                    "      \"frontier_rounds\": {},\n",
                    "      \"frontier_evals\": {},\n",
                    "      \"frontier_states_per_second\": {:.0},\n",
                    "      \"frontier_verdict\": \"{}\"",
                ),
                f.seconds, f.rounds, f.evals, f.states_per_second, f.verdict,
            ));
        }
        out.push_str(&format!(
            "\n    }}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Instances below this size are exempt from the flatness gate: their
/// build phases finish in about a millisecond, so their rates are noise.
const FLATNESS_MIN_STATES: usize = 100_000;

/// The committed throughput-curve gate: within one protocol family, the
/// slowest instance's transitions/s (the size-invariant unit of
/// enumeration work — see the module docs) must be within this factor of
/// the fastest's.
const FLATNESS_FACTOR: f64 = 2.0;

fn check_flatness(rows: &[Row]) -> bool {
    let mut ok = true;
    let mut families: Vec<&'static str> = rows.iter().map(|r| r.family).collect();
    families.dedup();
    for family in families {
        let rates: Vec<(&str, f64)> = rows
            .iter()
            .filter(|r| r.family == family && r.states >= FLATNESS_MIN_STATES)
            .filter_map(|r| {
                r.resident
                    .as_ref()
                    .map(|f| (r.name, f.transitions_per_second))
            })
            .collect();
        let Some((min_name, min)) = rates.iter().min_by(|a, b| a.1.total_cmp(&b.1)).copied() else {
            continue;
        };
        let (max_name, max) = rates
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .copied()
            .expect("nonempty");
        if max > min * FLATNESS_FACTOR {
            eprintln!(
                "FAIL {family}: transitions/s is not flat — {max_name} at {max:.0} \
                 is more than {FLATNESS_FACTOR}x {min_name} at {min:.0}"
            );
            ok = false;
        }
    }
    ok
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let huge = args.iter().any(|a| a == "--huge");
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_checker.json".to_string());
    let (tier, mode) = if smoke {
        (Tier::Smoke, "smoke")
    } else if huge {
        (Tier::Huge, "huge")
    } else {
        (Tier::Full, "full")
    };
    let opts = CheckOptions::default();

    println!(
        "{:<22} {:>12} {:>12} {:>8} {:>8} {:>12} {:>8} {:>9} {:>10}",
        "instance",
        "states",
        "transitions",
        "build s",
        "setup s",
        "states/s",
        "B/state",
        "seg s",
        "frontier s"
    );
    let mut rows = Vec::new();
    let mut failed = false;
    for inst in instances(tier) {
        let r = measure(&inst, opts);
        match &r.resident {
            Some(f) => println!(
                "{:<22} {:>12} {:>12} {:>8.3} {:>8.3} {:>12.0} {:>8.2} {:>9.3} {:>10}",
                r.name,
                r.states,
                f.transitions,
                f.build_seconds,
                f.setup_seconds,
                f.states_per_second,
                f.bytes_per_state,
                f.seg_scan_seconds,
                r.frontier
                    .as_ref()
                    .map(|fr| format!("{:.3}", fr.seconds))
                    .unwrap_or_else(|| "-".into()),
            ),
            None => println!(
                "{:<22} {:>12} {:>12} {:>8} {:>8} {:>12} {:>8} {:>9} {:>10}",
                r.name,
                r.states,
                "-",
                "-",
                "-",
                "-",
                "-",
                "-",
                r.frontier
                    .as_ref()
                    .map(|fr| format!("{:.3}", fr.seconds))
                    .unwrap_or_else(|| "-".into()),
            ),
        }
        if check {
            if let Some(f) = &r.resident {
                if f.bytes_per_state > f.max_bytes_per_state {
                    eprintln!(
                        "FAIL {}: {:.2} bytes/state exceeds the committed ceiling {:.1}",
                        r.name, f.bytes_per_state, f.max_bytes_per_state
                    );
                    failed = true;
                }
            }
            if let Some(f) = &r.frontier {
                if f.verdict != "converges" {
                    eprintln!("FAIL {}: frontier verdict is {}", r.name, f.verdict);
                    failed = true;
                }
            }
        }
        rows.push(r);
    }
    if check && !check_flatness(&rows) {
        failed = true;
    }

    let json = to_json(mode, &rows);
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
