//! Command-line driver for the reproduction experiments.
//!
//! ```text
//! experiments                      # run everything, print tables
//! experiments all                  # same
//! experiments e3 e8                # run selected experiments
//! experiments --list               # list experiment ids
//! experiments all --json out.json  # also write machine-readable results
//! ```

use std::process::ExitCode;

use nonmask_program::json::escape;

struct ExperimentResult<'a> {
    id: &'a str,
    report: String,
}

fn results_to_json(results: &[ExperimentResult<'_>]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  {{\n    \"id\": \"{}\",\n    \"report\": \"{}\"\n  }}{}\n",
            escape(r.id),
            escape(&r.report),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--list") {
        for id in nonmask_bench::ALL {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let mut json_path: Option<String> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--json" {
            let Some(path) = args.get(i + 1) else {
                eprintln!("--json needs a file path");
                return ExitCode::FAILURE;
            };
            json_path = Some(path.clone());
            i += 2;
        } else {
            selected.push(args[i].clone());
            i += 1;
        }
    }

    let ids: Vec<&str> = if selected.is_empty() || selected.iter().any(|a| a == "all") {
        nonmask_bench::ALL.to_vec()
    } else {
        let mut ids = Vec::new();
        for a in &selected {
            let a = a.as_str();
            if nonmask_bench::ALL.contains(&a) {
                ids.push(a);
            } else {
                eprintln!("unknown experiment `{a}`; known: {:?}", nonmask_bench::ALL);
                return ExitCode::FAILURE;
            }
        }
        ids
    };

    let mut results = Vec::new();
    for id in ids {
        println!("=============================================================");
        let report = nonmask_bench::run(id);
        println!("{report}");
        results.push(ExperimentResult { id, report });
    }

    if let Some(path) = json_path {
        let json = results_to_json(&results);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}
