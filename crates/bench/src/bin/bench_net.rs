//! N1 net-scale figures: convergence latency versus node count for the
//! reactor runtime, 10^2 → 10^4 token-ring nodes under crash-restart and
//! partition/heal churn, emitted as `BENCH_net.json`.
//!
//! ```text
//! bench_net                     # full curve (100, 1000, 10000 nodes)
//! bench_net --smoke             # CI-sized (1000 nodes, one trial)
//! bench_net --check             # fail on non-convergence or digest drift
//! bench_net --out FILE          # write the JSON somewhere else
//! ```
//!
//! # What is measured
//!
//! Each scale runs the K-state token ring (`k = n`) from a legitimate
//! initial state through a fixed churn schedule — crash-restart with an
//! arbitrary resurrection state, a half-ring partition that heals, a
//! second crash, a shifted partition — five detector episodes per trial.
//! The first episode is the detection floor (the state is already
//! legitimate; converging from a fully *arbitrary* state is Θ(n²) ring
//! moves, protocol physics that would swamp the runtime comparison at
//! 10^4 nodes — E15 and the conformance corpus cover arbitrary starts
//! at small n). The four churn episodes measure recovery from bounded
//! disturbances, the quantity that is comparable across scales. Episode
//! latencies are collected across trials into per-episode p50 and p99.
//! The transport is lossless here (the churn *is* the disturbance;
//! hostile fault-rate sweeps live in the E15 experiment), so every
//! episode is expected to converge and `--check` can gate on it.
//!
//! Two walls are reported per trial: `run_wall_s` starts at the hello
//! barrier (what episode latencies are measured against) and
//! `total_wall_s` includes setup — at 10^4 nodes, building `n` full
//! per-node views (the paper's local-view model, `O(n^2)` words) is the
//! dominant cost and is deliberately excluded from latency figures.
//!
//! With `--check`, every trial must converge without timing out, and a
//! scheduling-invariance digest (episode structure, crash count, final
//! invariant) at 100 nodes must be identical across shard counts 1 and 2
//! — the shard mesh is physical transport only and must not leak into
//! logical outcomes.

use std::process::ExitCode;
use std::time::Duration;

use nonmask_net::{run, DetectorConfig, NetConfig, NetEvent, NetReport};
use nonmask_protocols::token_ring::TokenRing;

/// One point on the latency-vs-N curve.
struct Scale {
    n: usize,
    trials: usize,
}

fn scales(smoke: bool) -> Vec<Scale> {
    if smoke {
        vec![Scale { n: 1000, trials: 1 }]
    } else {
        vec![
            Scale { n: 100, trials: 5 },
            Scale { n: 1000, trials: 5 },
            Scale {
                n: 10_000,
                trials: 2,
            },
        ]
    }
}

/// A legitimate initial state (all equal: the bottom machine holds the
/// one token), so the first episode measures the detection floor and
/// the churn episodes measure recovery in isolation.
fn legitimate_initial(n: usize) -> Vec<i64> {
    vec![0; n]
}

/// The churn schedule: two crash-restarts and two partitions, spaced by
/// the detector's own convergence gating (each event waits for the
/// previous episode to settle), for five episodes per trial.
fn churn(n: usize) -> Vec<NetEvent> {
    let half: Vec<usize> = (0..n).map(|i| usize::from(i >= n / 2)).collect();
    let shifted: Vec<usize> = (0..n)
        .map(|i| usize::from((i + n / 4) % n >= n / 2))
        .collect();
    vec![
        NetEvent::CrashRestart {
            node: n / 3,
            at_least: Duration::ZERO,
            down: Duration::from_millis(20),
        },
        NetEvent::Partition {
            groups: half,
            at_least: Duration::ZERO,
            heal_after: Duration::from_millis(30),
        },
        NetEvent::CrashRestart {
            node: 2 * n / 3,
            at_least: Duration::ZERO,
            down: Duration::from_millis(20),
        },
        NetEvent::Partition {
            groups: shifted,
            at_least: Duration::ZERO,
            heal_after: Duration::from_millis(30),
        },
    ]
}

fn config(n: usize, seed: u64, shards: usize) -> NetConfig {
    NetConfig {
        seed,
        shards,
        // Uniform timing across scales so the curve compares like with
        // like: fast ticks, short cooldown, sparse heartbeats (the
        // lossless transport needs them only to heal post-partition
        // staleness, and 10^4 nodes heartbeating densely would melt a
        // single-core box).
        tick: Duration::from_micros(500),
        cooldown_ticks: 2,
        heartbeat_every: 400,
        detector: DetectorConfig {
            stable_for: Duration::from_millis(120),
            stable_fraction: 0.9,
            ..DetectorConfig::default()
        },
        timeout: Duration::from_secs(120),
        events: churn(n),
        ..NetConfig::default()
    }
}

struct Trial {
    report: NetReport,
    total_wall: Duration,
    invariant_holds: bool,
}

fn run_trial(n: usize, seed: u64, shards: usize) -> Result<Trial, String> {
    let ring = TokenRing::new(n, n as i64);
    let initial = ring
        .program()
        .state_from(legitimate_initial(n))
        .expect("zeros are in domain");
    let t = std::time::Instant::now();
    let report = run(
        ring.program(),
        &initial,
        &ring.invariant(),
        &config(n, seed, shards),
    )
    .map_err(|e| format!("n={n} seed={seed}: {e}"))?;
    let invariant_holds = ring.invariant().holds(&report.final_state);
    Ok(Trial {
        report,
        total_wall: t.elapsed(),
        invariant_holds,
    })
}

/// FNV-1a over the scheduling-invariant outcome of a trial: episode
/// structure and convergence, crash bookkeeping, and the final-state
/// invariant. Latencies and traffic counters are wall-clock-dependent
/// and deliberately excluded.
fn digest(trial: &Trial) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let r = &trial.report;
    eat(&(r.nodes.len() as u64).to_le_bytes());
    eat(&[u8::from(r.converged), u8::from(trial.invariant_holds)]);
    eat(&(r.episodes.len() as u64).to_le_bytes());
    for e in &r.episodes {
        eat(e.label.as_bytes());
        eat(&[u8::from(e.latency().is_some())]);
    }
    let crashes: u64 = r.nodes.iter().map(|x| x.counters.crashes).sum();
    eat(&crashes.to_le_bytes());
    h
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

struct ScaleRow {
    n: usize,
    trials: Vec<Trial>,
}

impl ScaleRow {
    fn all_converged(&self) -> bool {
        self.trials
            .iter()
            .all(|t| t.report.converged && !t.report.timed_out && t.invariant_holds)
    }

    /// Per-episode latencies in ms across trials, by episode position.
    fn episode_latencies(&self) -> Vec<(String, Vec<f64>)> {
        let count = self
            .trials
            .iter()
            .map(|t| t.report.episodes.len())
            .max()
            .unwrap_or(0);
        (0..count)
            .map(|i| {
                let label = self
                    .trials
                    .iter()
                    .find_map(|t| t.report.episodes.get(i).map(|e| e.label.clone()))
                    .unwrap_or_default();
                let mut ms: Vec<f64> = self
                    .trials
                    .iter()
                    .filter_map(|t| t.report.episodes.get(i).and_then(|e| e.latency()))
                    .map(|d| d.as_secs_f64() * 1e3)
                    .collect();
                ms.sort_by(f64::total_cmp);
                (label, ms)
            })
            .collect()
    }
}

fn emit(rows: &[ScaleRow], mode: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"bench-net-v1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"scales\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"n\": {},\n", row.n));
        out.push_str(&format!("      \"trials\": {},\n", row.trials.len()));
        out.push_str(&format!(
            "      \"all_converged\": {},\n",
            row.all_converged()
        ));
        let runs: Vec<String> = row
            .trials
            .iter()
            .map(|t| format!("{:.3}", t.report.wall.as_secs_f64()))
            .collect();
        let totals: Vec<String> = row
            .trials
            .iter()
            .map(|t| format!("{:.3}", t.total_wall.as_secs_f64()))
            .collect();
        out.push_str(&format!("      \"run_wall_s\": [{}],\n", runs.join(", ")));
        out.push_str(&format!(
            "      \"total_wall_s\": [{}],\n",
            totals.join(", ")
        ));
        let sent: u64 = row
            .trials
            .iter()
            .flat_map(|t| &t.report.nodes)
            .map(|x| x.counters.sent)
            .sum();
        let steps: u64 = row
            .trials
            .iter()
            .flat_map(|t| &t.report.nodes)
            .map(|x| x.counters.steps)
            .sum();
        out.push_str(&format!("      \"frames_sent\": {sent},\n"));
        out.push_str(&format!("      \"actions_executed\": {steps},\n"));
        out.push_str("      \"episodes\": [\n");
        let episodes = row.episode_latencies();
        for (j, (label, ms)) in episodes.iter().enumerate() {
            let lats: Vec<String> = ms.iter().map(|v| format!("{v:.3}")).collect();
            out.push_str("        {\n");
            out.push_str(&format!("          \"label\": \"{label}\",\n"));
            out.push_str(&format!(
                "          \"p50_ms\": {:.3},\n",
                percentile(ms, 50.0)
            ));
            out.push_str(&format!(
                "          \"p99_ms\": {:.3},\n",
                percentile(ms, 99.0)
            ));
            out.push_str(&format!(
                "          \"latencies_ms\": [{}]\n",
                lats.join(", ")
            ));
            out.push_str(if j + 1 == episodes.len() {
                "        }\n"
            } else {
                "        },\n"
            });
        }
        out.push_str("      ]\n");
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// The `--check` shard-invariance gate: the same 100-node trial under 1
/// and 2 shards must produce identical scheduling-invariant digests.
fn digest_moves_under_resharding() -> Result<bool, String> {
    let one = run_trial(100, 0xBE7_0001, 1)?;
    let two = run_trial(100, 0xBE7_0001, 2)?;
    Ok(digest(&one) != digest(&two))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_net.json".to_string());
    let mode = if smoke { "smoke" } else { "full" };

    println!(
        "{:>6} {:>7} {:>10} {:>10} {:>9} {:>9} {:>10}",
        "n", "trials", "ep p50 ms", "ep p99 ms", "run s", "total s", "converged"
    );
    let mut rows: Vec<ScaleRow> = Vec::new();
    let mut failed = false;
    for scale in scales(smoke) {
        let mut trials = Vec::new();
        for t in 0..scale.trials {
            match run_trial(scale.n, 0xBE7_1000 + t as u64, 0) {
                Ok(trial) => trials.push(trial),
                Err(e) => {
                    eprintln!("FAIL {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let row = ScaleRow { n: scale.n, trials };
        let mut all_ms: Vec<f64> = row
            .episode_latencies()
            .into_iter()
            .flat_map(|(_, ms)| ms)
            .collect();
        all_ms.sort_by(f64::total_cmp);
        let run_s: f64 = row
            .trials
            .iter()
            .map(|t| t.report.wall.as_secs_f64())
            .sum::<f64>()
            / row.trials.len() as f64;
        let total_s: f64 = row
            .trials
            .iter()
            .map(|t| t.total_wall.as_secs_f64())
            .sum::<f64>()
            / row.trials.len() as f64;
        println!(
            "{:>6} {:>7} {:>10.1} {:>10.1} {:>9.3} {:>9.3} {:>10}",
            row.n,
            row.trials.len(),
            percentile(&all_ms, 50.0),
            percentile(&all_ms, 99.0),
            run_s,
            total_s,
            row.all_converged(),
        );
        if check && !row.all_converged() {
            eprintln!("FAIL n={}: an episode failed to converge", row.n);
            failed = true;
        }
        rows.push(row);
    }
    if check {
        match digest_moves_under_resharding() {
            Ok(false) => {}
            Ok(true) => {
                eprintln!("FAIL: logical-outcome digest moved between 1 and 2 shards");
                failed = true;
            }
            Err(e) => {
                eprintln!("FAIL resharding gate: {e}");
                failed = true;
            }
        }
    }
    let json = emit(&rows, mode);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
