//! Message-passing simulator round throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonmask_protocols::diffusing::DiffusingComputation;
use nonmask_protocols::token_ring::TokenRing;
use nonmask_protocols::Tree;
use nonmask_sim::{Refinement, SimConfig, Simulation};

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim-rounds");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));

    for n in [16usize, 64, 256] {
        let ring = TokenRing::new(n, n as i64);
        let refinement = Refinement::new(ring.program()).expect("refinable");
        group.bench_with_input(BenchmarkId::new("ring-100-rounds", n), &n, |b, _| {
            b.iter(|| {
                let mut sim = Simulation::new(
                    ring.program(),
                    refinement.clone(),
                    ring.initial_state(),
                    SimConfig::default(),
                );
                for _ in 0..100 {
                    sim.round();
                }
                sim.steps()
            })
        });
    }

    for n in [15usize, 63, 255] {
        let dc = DiffusingComputation::new(&Tree::binary(n));
        let refinement = Refinement::new(dc.program()).expect("refinable");
        group.bench_with_input(BenchmarkId::new("diffusing-100-rounds", n), &n, |b, _| {
            b.iter(|| {
                let mut sim = Simulation::new(
                    dc.program(),
                    refinement.clone(),
                    dc.initial_state(),
                    SimConfig::default(),
                );
                for _ in 0..100 {
                    sim.round();
                }
                sim.steps()
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
