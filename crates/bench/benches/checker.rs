//! Model-checker throughput: enumeration, closure, convergence, and the
//! hash-map-vs-arithmetic / thread-scaling comparisons of EXPERIMENTS.md.

use std::collections::HashMap;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nonmask_checker::{
    check_convergence, check_convergence_opts, is_closed, CheckOptions, Fairness, StateSpace,
};
use nonmask_program::{ActionId, Predicate, Program, State};
use nonmask_protocols::diffusing::DiffusingComputation;
use nonmask_protocols::token_ring::TokenRing;
use nonmask_protocols::Tree;

/// The seed's state-space construction, reproduced for comparison: states
/// in a `Vec`, a `HashMap<State, u32>` reverse index, and one hash lookup
/// per transition target.
fn enumerate_hashmap(p: &Program) -> (Vec<State>, Vec<Vec<(ActionId, u32)>>) {
    let states: Vec<State> = p.enumerate_states().expect("bounded").collect();
    let index: HashMap<&State, u32> = states
        .iter()
        .enumerate()
        .map(|(i, s)| (s, i as u32))
        .collect();
    let transitions: Vec<Vec<(ActionId, u32)>> = states
        .iter()
        .map(|st| {
            p.action_ids()
                .filter_map(|a| {
                    let act = p.action(a);
                    if !act.enabled(st) {
                        return None;
                    }
                    let succ = act.successor(st);
                    Some((a, *index.get(&succ).expect("domains are closed")))
                })
                .collect()
        })
        .collect();
    (states, transitions)
}

fn bench_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    group.sample_size(10);

    for (n, k) in [(3usize, 3i64), (4, 4), (5, 5)] {
        let ring = TokenRing::new(n, k);
        group.bench_with_input(BenchmarkId::new("enumerate/ring", n), &n, |b, _| {
            b.iter(|| StateSpace::enumerate(ring.program()).expect("bounded"))
        });
        let space = StateSpace::enumerate(ring.program()).expect("bounded");
        let s = ring.invariant();
        group.bench_with_input(BenchmarkId::new("closure/ring", n), &n, |b, _| {
            b.iter(|| is_closed(&space, ring.program(), &s))
        });
        group.bench_with_input(BenchmarkId::new("convergence/ring", n), &n, |b, _| {
            b.iter(|| {
                check_convergence(
                    &space,
                    ring.program(),
                    &Predicate::always_true(),
                    &s,
                    Fairness::WeaklyFair,
                )
            })
        });
    }

    let dc = DiffusingComputation::new(&Tree::binary(5));
    let design = dc.design().expect("design");
    group.bench_function("verify/diffusing-binary-5", |b| {
        b.iter(|| design.verify().expect("verifiable"))
    });

    group.finish();
}

/// State-space hot path: seed-style hash-map construction vs arithmetic
/// mixed-radix ids, and thread scaling of construction + convergence.
/// Token ring n=5,k=5 is 3125 states (just past the parallel threshold);
/// n=7,k=7 is 823543 states.
fn bench_space_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("space");
    group.sample_size(3);
    group.warm_up_time(Duration::from_millis(100));
    group.measurement_time(Duration::from_millis(500));

    for (n, k) in [(5usize, 5i64), (7, 7)] {
        let ring = TokenRing::new(n, k);

        group.bench_with_input(BenchmarkId::new("enumerate/hashmap", n), &n, |b, _| {
            b.iter(|| enumerate_hashmap(ring.program()))
        });
        for threads in [1usize, 2, 4, 8] {
            let opts = CheckOptions::default().threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("enumerate/arith-{threads}t"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        StateSpace::enumerate_with_options(ring.program(), opts).expect("bounded")
                    })
                },
            );
        }

        // Reverse lookup of every state: hash probe vs mixed-radix arithmetic.
        let space = StateSpace::enumerate(ring.program()).expect("bounded");
        let (states, _) = enumerate_hashmap(ring.program());
        let index: HashMap<&State, u32> = states
            .iter()
            .enumerate()
            .map(|(i, s)| (s, i as u32))
            .collect();
        group.bench_with_input(BenchmarkId::new("id-lookup/hashmap", n), &n, |b, _| {
            b.iter(|| {
                states
                    .iter()
                    .map(|s| *index.get(black_box(s)).unwrap() as u64)
                    .sum::<u64>()
            })
        });
        group.bench_with_input(BenchmarkId::new("id-lookup/arith", n), &n, |b, _| {
            b.iter(|| {
                states
                    .iter()
                    .map(|s| space.id_of(black_box(s)).unwrap().index() as u64)
                    .sum::<u64>()
            })
        });

        let s = ring.invariant();
        let t = Predicate::always_true();
        for threads in [1usize, 2, 4, 8] {
            let opts = CheckOptions::default().threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("convergence/{threads}t"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        check_convergence_opts(
                            &space,
                            ring.program(),
                            &t,
                            &s,
                            Fairness::WeaklyFair,
                            opts,
                        )
                    })
                },
            );
        }
    }

    group.finish();
}

criterion_group!(benches, bench_checker, bench_space_scaling);
criterion_main!(benches);
