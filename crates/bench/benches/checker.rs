//! Model-checker throughput: enumeration, closure, convergence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonmask_checker::{check_convergence, is_closed, Fairness, StateSpace};
use nonmask_program::Predicate;
use nonmask_protocols::diffusing::DiffusingComputation;
use nonmask_protocols::token_ring::TokenRing;
use nonmask_protocols::Tree;

fn bench_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    group.sample_size(10);

    for (n, k) in [(3usize, 3i64), (4, 4), (5, 5)] {
        let ring = TokenRing::new(n, k);
        group.bench_with_input(BenchmarkId::new("enumerate/ring", n), &n, |b, _| {
            b.iter(|| StateSpace::enumerate(ring.program()).expect("bounded"))
        });
        let space = StateSpace::enumerate(ring.program()).expect("bounded");
        let s = ring.invariant();
        group.bench_with_input(BenchmarkId::new("closure/ring", n), &n, |b, _| {
            b.iter(|| is_closed(&space, ring.program(), &s))
        });
        group.bench_with_input(BenchmarkId::new("convergence/ring", n), &n, |b, _| {
            b.iter(|| {
                check_convergence(
                    &space,
                    ring.program(),
                    &Predicate::always_true(),
                    &s,
                    Fairness::WeaklyFair,
                )
            })
        });
    }

    let dc = DiffusingComputation::new(&Tree::binary(5));
    let design = dc.design().expect("design");
    group.bench_function("verify/diffusing-binary-5", |b| {
        b.iter(|| design.verify().expect("verifiable"))
    });

    group.finish();
}

criterion_group!(benches, bench_checker);
criterion_main!(benches);
