//! Protocol step throughput under the shared-memory engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonmask_program::scheduler::RoundRobin;
use nonmask_program::{Executor, RunConfig};
use nonmask_protocols::atomic::AtomicActions;
use nonmask_protocols::diffusing::DiffusingComputation;
use nonmask_protocols::token_ring::TokenRing;
use nonmask_protocols::Tree;

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol-steps");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let config = RunConfig::default().max_steps(10_000);

    for n in [8usize, 64, 256] {
        let ring = TokenRing::new(n, n as i64);
        group.bench_with_input(BenchmarkId::new("token-ring-10k-steps", n), &n, |b, _| {
            b.iter(|| {
                Executor::new(ring.program()).run(
                    ring.initial_state(),
                    &mut RoundRobin::new(),
                    &config,
                )
            })
        });
    }

    for n in [7usize, 63, 255] {
        let dc = DiffusingComputation::new(&Tree::binary(n));
        group.bench_with_input(BenchmarkId::new("diffusing-10k-steps", n), &n, |b, _| {
            b.iter(|| {
                Executor::new(dc.program()).run(dc.initial_state(), &mut RoundRobin::new(), &config)
            })
        });
    }

    let aa = AtomicActions::new(16);
    group.bench_function("atomic-actions-10k-steps/16", |b| {
        b.iter(|| {
            Executor::new(aa.program()).run(aa.initial_state(), &mut RoundRobin::new(), &config)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
