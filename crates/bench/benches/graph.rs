//! Constraint-graph micro-benchmarks: derivation, classification, ranks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonmask_protocols::diffusing::DiffusingComputation;
use nonmask_protocols::Tree;

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("constraint-graph");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for n in [15usize, 63, 255, 1023] {
        let dc = DiffusingComputation::new(&Tree::binary(n));
        let design = dc.design().expect("design");
        group.bench_with_input(BenchmarkId::new("derive", n), &n, |b, _| {
            b.iter(|| design.constraint_graph().expect("graph"))
        });
        let graph = design.constraint_graph().expect("graph");
        group.bench_with_input(BenchmarkId::new("shape", n), &n, |b, _| {
            b.iter(|| graph.shape())
        });
        group.bench_with_input(BenchmarkId::new("ranks", n), &n, |b, _| {
            b.iter(|| graph.ranks().expect("ranks"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
