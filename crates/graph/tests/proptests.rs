//! Property-based tests of constraint-graph structure.

use nonmask_graph::{ConstraintGraph, ConstraintRef, Shape};
use nonmask_program::ActionId;
use proptest::prelude::*;

/// A random graph as `(node_count, arcs)`; arcs generated with
/// `from < to` are acyclic by construction, arbitrary arcs may cycle.
fn acyclic_arcs() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..8).prop_flat_map(|n| {
        let arc = (0..n - 1).prop_flat_map(move |f| (Just(f), f + 1..n));
        (Just(n), proptest::collection::vec(arc, 0..12))
    })
}

fn arbitrary_arcs() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..8).prop_flat_map(|n| {
        let arc = (0..n, 0..n);
        (Just(n), proptest::collection::vec(arc, 0..12))
    })
}

fn build(n: usize, arcs: &[(usize, usize)]) -> ConstraintGraph {
    let nodes = (0..n)
        .map(|i| ConstraintGraph::node(format!("n{i}"), []))
        .collect();
    let edges = arcs
        .iter()
        .enumerate()
        .map(|(i, &(f, t))| {
            ConstraintGraph::edge(
                ConstraintGraph::node_id(f),
                ConstraintGraph::node_id(t),
                ActionId::from_index(i),
                ConstraintRef(i),
            )
        })
        .collect();
    ConstraintGraph::from_parts(nodes, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Forward-only arcs can never produce a cyclic classification, and
    /// ranks are defined and strictly increasing along every edge.
    #[test]
    fn forward_arcs_are_never_cyclic((n, arcs) in acyclic_arcs()) {
        let g = build(n, &arcs);
        prop_assert_ne!(g.shape(), Shape::Cyclic);
        let ranks = g.ranks().unwrap();
        for e in g.edges() {
            prop_assert!(ranks[e.to().index()] > ranks[e.from().index()]);
        }
    }

    /// Classification and ranks agree: ranks exist iff the graph is not
    /// cyclic.
    #[test]
    fn ranks_defined_iff_not_cyclic((n, arcs) in arbitrary_arcs()) {
        // Filter out self-loops from the cyclicity question: ranks ignore
        // them, as does the shape (self-loops alone are SelfLooping).
        let g = build(n, &arcs);
        let cyclic = g.shape() == Shape::Cyclic;
        prop_assert_eq!(g.ranks().is_err(), cyclic);
    }

    /// Out-trees demand exactly `n - 1` non-self edges; any graph with a
    /// different count is not an out-tree.
    #[test]
    fn out_tree_edge_count((n, arcs) in arbitrary_arcs()) {
        let g = build(n, &arcs);
        if g.shape() == Shape::OutTree {
            let non_self = g.edges().iter().filter(|e| !e.is_self_loop()).count();
            prop_assert_eq!(non_self, n - 1);
            prop_assert!(g.is_weakly_connected());
        }
    }

    /// Restricting a graph to a subset of edges never makes it *more*
    /// cyclic: subgraphs of acyclic graphs are acyclic.
    #[test]
    fn restriction_preserves_acyclicity((n, arcs) in acyclic_arcs(), keep_mask in any::<u16>()) {
        let g = build(n, &arcs);
        let keep: Vec<_> = g
            .edge_ids()
            .enumerate()
            .filter(|(i, _)| keep_mask & (1 << (i % 16)) != 0)
            .map(|(_, e)| e)
            .collect();
        let sub = g.restricted_to(&keep);
        prop_assert_ne!(sub.shape(), Shape::Cyclic);
        prop_assert_eq!(sub.edge_count(), keep.len());
    }

    /// With a universally-true preservation oracle every node has a linear
    /// order containing all of its incoming edges; with a universally-false
    /// oracle only nodes with at most one incoming edge do.
    #[test]
    fn linear_order_oracle_extremes((n, arcs) in arbitrary_arcs()) {
        let g = build(n, &arcs);
        for node in g.node_ids() {
            let targeting = g.edges_targeting(node);
            let always = g.linear_preservation_order(node, |_, _| true).unwrap();
            prop_assert_eq!(always.len(), targeting.len());

            let never = g.linear_preservation_order(node, |_, _| false);
            if targeting.len() <= 1 {
                prop_assert!(never.is_some());
            } else {
                prop_assert!(never.is_none(), "mutual violation admits no order");
            }
        }
    }

    /// Any order returned satisfies its defining property: each action
    /// preserves the constraints of all preceding edges.
    #[test]
    fn returned_orders_are_valid((n, arcs) in arbitrary_arcs(), seed in any::<u64>()) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let g = build(n, &arcs);
        let mut rng = StdRng::seed_from_u64(seed);
        // A random but fixed oracle.
        let table: Vec<Vec<bool>> = (0..g.edge_count())
            .map(|_| (0..g.edge_count()).map(|_| rng.gen_bool(0.7)).collect())
            .collect();
        let oracle = |a: ActionId, c: ConstraintRef| table[a.index() % table.len().max(1)][c.0];
        for node in g.node_ids() {
            if let Some(order) = g.linear_preservation_order(node, oracle) {
                for i in 0..order.len() {
                    for j in i + 1..order.len() {
                        let later = g.edge_ref(order[j]).action();
                        let earlier = g.edge_ref(order[i]).constraint();
                        prop_assert!(oracle(later, earlier), "order violates its contract");
                    }
                }
            }
        }
    }
}

/// A random disjoint layering of `total` constraints into 1..=4 layers,
/// as layer sizes (sizes sum to `total`, no layer empty).
fn random_layering(total: usize) -> impl Strategy<Value = Vec<Vec<ConstraintRef>>> {
    proptest::collection::vec(1usize..=total, 1..4).prop_map(move |cuts| {
        // Turn random sizes into a partition of 0..total by walking the
        // requested sizes and flushing the remainder into a final layer.
        let mut layers = Vec::new();
        let mut next = 0usize;
        for want in cuts {
            if next >= total {
                break;
            }
            let take = want.min(total - next);
            layers.push((next..next + take).map(ConstraintRef).collect());
            next += take;
        }
        if next < total {
            layers.push((next..total).map(ConstraintRef).collect());
        }
        layers
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `below(i)`, the layer itself, and `above(i)` tri-partition the
    /// constraint set at every layer index — disjoint, exhaustive, and
    /// consistent with `layer_of`.
    #[test]
    fn layering_below_layer_above_tri_partition(
        total in 1usize..10,
        layers in (1usize..10).prop_flat_map(random_layering),
    ) {
        let _ = total;
        let all: std::collections::BTreeSet<ConstraintRef> =
            layers.iter().flatten().copied().collect();
        let l = nonmask_graph::Layering::new(layers.clone()).unwrap();
        prop_assert_eq!(l.len(), layers.len());
        for i in 0..l.len() {
            let below: std::collections::BTreeSet<_> = l.below(i).into_iter().collect();
            let here: std::collections::BTreeSet<_> = l.layers()[i].iter().copied().collect();
            let above: std::collections::BTreeSet<_> = l.above(i).into_iter().collect();
            prop_assert!(below.is_disjoint(&here));
            prop_assert!(below.is_disjoint(&above));
            prop_assert!(here.is_disjoint(&above));
            let union: std::collections::BTreeSet<_> =
                below.iter().chain(&here).chain(&above).copied().collect();
            prop_assert_eq!(&union, &all, "tri-partition must be exhaustive");
            for &c in &here {
                prop_assert_eq!(l.layer_of(c), Some(i));
            }
        }
    }

    /// When the layers partition exactly the constraints labelling a
    /// graph's edges, `edges_in_layer` partitions the edge set.
    #[test]
    fn layering_edges_in_layer_partition_edges(
        (n, arcs) in arbitrary_arcs(),
        layers in (1usize..12).prop_flat_map(random_layering),
    ) {
        // Build a graph whose edge i carries constraint i, then keep only
        // the layers that name existing constraints.
        let g = build(n, &arcs);
        let layers: Vec<Vec<ConstraintRef>> = layers
            .into_iter()
            .filter_map(|layer| {
                let kept: Vec<_> =
                    layer.into_iter().filter(|c| c.0 < g.edge_count()).collect();
                (!kept.is_empty()).then_some(kept)
            })
            .collect();
        if layers.is_empty() {
            return Ok(()); // edgeless graph drew no usable constraints
        }
        let named: std::collections::BTreeSet<usize> =
            layers.iter().flatten().map(|c| c.0).collect();
        let l = nonmask_graph::Layering::new(layers).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        let mut count = 0usize;
        for i in 0..l.len() {
            for e in l.edges_in_layer(&g, i) {
                prop_assert!(seen.insert(e), "edge listed in two layers");
                count += 1;
            }
            let (sub, _) = l.layer_graph(&g, i);
            prop_assert_eq!(sub.edge_count(), l.edges_in_layer(&g, i).len());
        }
        prop_assert_eq!(count, named.len(), "every named edge in exactly one layer");
    }
}
