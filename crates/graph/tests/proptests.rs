//! Property-based tests of constraint-graph structure.

use nonmask_graph::{ConstraintGraph, ConstraintRef, Shape};
use nonmask_program::ActionId;
use proptest::prelude::*;

/// A random graph as `(node_count, arcs)`; arcs generated with
/// `from < to` are acyclic by construction, arbitrary arcs may cycle.
fn acyclic_arcs() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..8).prop_flat_map(|n| {
        let arc = (0..n - 1).prop_flat_map(move |f| (Just(f), f + 1..n));
        (Just(n), proptest::collection::vec(arc, 0..12))
    })
}

fn arbitrary_arcs() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..8).prop_flat_map(|n| {
        let arc = (0..n, 0..n);
        (Just(n), proptest::collection::vec(arc, 0..12))
    })
}

fn build(n: usize, arcs: &[(usize, usize)]) -> ConstraintGraph {
    let nodes = (0..n)
        .map(|i| ConstraintGraph::node(format!("n{i}"), []))
        .collect();
    let edges = arcs
        .iter()
        .enumerate()
        .map(|(i, &(f, t))| {
            ConstraintGraph::edge(
                ConstraintGraph::node_id(f),
                ConstraintGraph::node_id(t),
                ActionId::from_index(i),
                ConstraintRef(i),
            )
        })
        .collect();
    ConstraintGraph::from_parts(nodes, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Forward-only arcs can never produce a cyclic classification, and
    /// ranks are defined and strictly increasing along every edge.
    #[test]
    fn forward_arcs_are_never_cyclic((n, arcs) in acyclic_arcs()) {
        let g = build(n, &arcs);
        prop_assert_ne!(g.shape(), Shape::Cyclic);
        let ranks = g.ranks().unwrap();
        for e in g.edges() {
            prop_assert!(ranks[e.to().index()] > ranks[e.from().index()]);
        }
    }

    /// Classification and ranks agree: ranks exist iff the graph is not
    /// cyclic.
    #[test]
    fn ranks_defined_iff_not_cyclic((n, arcs) in arbitrary_arcs()) {
        // Filter out self-loops from the cyclicity question: ranks ignore
        // them, as does the shape (self-loops alone are SelfLooping).
        let g = build(n, &arcs);
        let cyclic = g.shape() == Shape::Cyclic;
        prop_assert_eq!(g.ranks().is_err(), cyclic);
    }

    /// Out-trees demand exactly `n - 1` non-self edges; any graph with a
    /// different count is not an out-tree.
    #[test]
    fn out_tree_edge_count((n, arcs) in arbitrary_arcs()) {
        let g = build(n, &arcs);
        if g.shape() == Shape::OutTree {
            let non_self = g.edges().iter().filter(|e| !e.is_self_loop()).count();
            prop_assert_eq!(non_self, n - 1);
            prop_assert!(g.is_weakly_connected());
        }
    }

    /// Restricting a graph to a subset of edges never makes it *more*
    /// cyclic: subgraphs of acyclic graphs are acyclic.
    #[test]
    fn restriction_preserves_acyclicity((n, arcs) in acyclic_arcs(), keep_mask in any::<u16>()) {
        let g = build(n, &arcs);
        let keep: Vec<_> = g
            .edge_ids()
            .enumerate()
            .filter(|(i, _)| keep_mask & (1 << (i % 16)) != 0)
            .map(|(_, e)| e)
            .collect();
        let sub = g.restricted_to(&keep);
        prop_assert_ne!(sub.shape(), Shape::Cyclic);
        prop_assert_eq!(sub.edge_count(), keep.len());
    }

    /// With a universally-true preservation oracle every node has a linear
    /// order containing all of its incoming edges; with a universally-false
    /// oracle only nodes with at most one incoming edge do.
    #[test]
    fn linear_order_oracle_extremes((n, arcs) in arbitrary_arcs()) {
        let g = build(n, &arcs);
        for node in g.node_ids() {
            let targeting = g.edges_targeting(node);
            let always = g.linear_preservation_order(node, |_, _| true).unwrap();
            prop_assert_eq!(always.len(), targeting.len());

            let never = g.linear_preservation_order(node, |_, _| false);
            if targeting.len() <= 1 {
                prop_assert!(never.is_some());
            } else {
                prop_assert!(never.is_none(), "mutual violation admits no order");
            }
        }
    }

    /// Any order returned satisfies its defining property: each action
    /// preserves the constraints of all preceding edges.
    #[test]
    fn returned_orders_are_valid((n, arcs) in arbitrary_arcs(), seed in any::<u64>()) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let g = build(n, &arcs);
        let mut rng = StdRng::seed_from_u64(seed);
        // A random but fixed oracle.
        let table: Vec<Vec<bool>> = (0..g.edge_count())
            .map(|_| (0..g.edge_count()).map(|_| rng.gen_bool(0.7)).collect())
            .collect();
        let oracle = |a: ActionId, c: ConstraintRef| table[a.index() % table.len().max(1)][c.0];
        for node in g.node_ids() {
            if let Some(order) = g.linear_preservation_order(node, oracle) {
                for i in 0..order.len() {
                    for j in i + 1..order.len() {
                        let later = g.edge_ref(order[j]).action();
                        let earlier = g.edge_ref(order[i]).constraint();
                        prop_assert!(oracle(later, earlier), "order violates its contract");
                    }
                }
            }
        }
    }
}
