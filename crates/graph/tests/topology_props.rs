//! Property-based tests of the undirected-topology distance metric.
//!
//! BFS hop distance on an undirected graph is a genuine metric, and the
//! containment-radius measurements downstream lean on exactly these
//! laws: symmetry (distance-to-nearest-liar is well-defined regardless
//! of direction), the triangle inequality (a node can't be closer to a
//! liar than any relay path allows), and monotonicity of the radius
//! under edge addition (densifying a graph never increases how far the
//! centre is from the periphery).

use nonmask_graph::Topology;
use proptest::prelude::*;

/// A random topology as `(node_count, edges)`; edges may duplicate or
/// self-loop — `add_edge` coalesces both.
fn random_edges() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..10).prop_flat_map(|n| {
        let edge = (0..n, 0..n);
        (Just(n), proptest::collection::vec(edge, 0..24))
    })
}

fn build(n: usize, edges: &[(usize, usize)]) -> Topology {
    let mut t = Topology::new(n);
    for &(a, b) in edges {
        t.add_edge(a, b);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Distance on an undirected graph is symmetric.
    #[test]
    fn distance_is_symmetric((n, edges) in random_edges()) {
        let t = build(n, &edges);
        for a in 0..n {
            let from_a = t.distances_from(&[a]);
            for (b, &d) in from_a.iter().enumerate() {
                prop_assert_eq!(d, t.distance(b, a), "d({},{})", a, b);
            }
        }
    }

    /// The triangle inequality holds for every reachable triple.
    #[test]
    fn triangle_inequality((n, edges) in random_edges()) {
        let t = build(n, &edges);
        let dist: Vec<Vec<u64>> = (0..n).map(|v| t.distances_from(&[v])).collect();
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    let (ab, bc) = (dist[a][b], dist[b][c]);
                    if ab != Topology::INFINITY && bc != Topology::INFINITY {
                        prop_assert!(
                            dist[a][c] <= ab + bc,
                            "d({a},{c}) > d({a},{b}) + d({b},{c})"
                        );
                    }
                }
            }
        }
    }

    /// Identity of indiscernibles: distance zero exactly on the diagonal.
    #[test]
    fn distance_zero_iff_equal((n, edges) in random_edges()) {
        let t = build(n, &edges);
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(t.distance(a, b) == 0, a == b);
            }
        }
    }

    /// Adding one edge never increases any pairwise distance, hence
    /// never increases any eccentricity, hence never increases the
    /// radius (or the diameter).
    #[test]
    fn radius_is_monotone_under_edge_addition(
        (n, edges) in random_edges(),
        a in 0usize..16,
        b in 0usize..16,
    ) {
        let before = build(n, &edges);
        let mut after = before.clone();
        after.add_edge(a % n, b % n);
        for v in 0..n {
            let (db, da) = (before.distances_from(&[v]), after.distances_from(&[v]));
            for w in 0..n {
                prop_assert!(da[w] <= db[w], "edge addition increased d({v},{w})");
            }
        }
        prop_assert!(after.radius() <= before.radius());
        prop_assert!(after.diameter() <= before.diameter());
    }

    /// Multi-source distances equal the pointwise minimum of the
    /// single-source distances — the law the "distance to the nearest
    /// Byzantine node" measurements rely on.
    #[test]
    fn multi_source_is_pointwise_min(
        (n, edges) in random_edges(),
        picks in proptest::collection::vec(0usize..16, 1..4),
    ) {
        let t = build(n, &edges);
        let sources: Vec<usize> = picks.into_iter().map(|p| p % n).collect();
        let multi = t.distances_from(&sources);
        for (v, &d) in multi.iter().enumerate() {
            let min = sources
                .iter()
                .map(|&s| t.distance(s, v))
                .min()
                .unwrap();
            prop_assert_eq!(d, min);
        }
    }

    /// Seeded random connected topologies are connected, so every
    /// eccentricity (and the radius and diameter) is finite.
    #[test]
    fn random_connected_has_finite_metrics(n in 2usize..24, extra in 0usize..8, seed in any::<u64>()) {
        let t = Topology::random_connected(n, extra, seed);
        prop_assert!(t.is_connected());
        prop_assert!(t.radius() != Topology::INFINITY);
        prop_assert!(t.diameter() != Topology::INFINITY);
        prop_assert!(t.radius() <= t.diameter());
        prop_assert!(t.diameter() <= 2 * t.radius());
    }
}
