//! Undirected communication topologies and BFS-distance utilities.
//!
//! The constraint graphs of Section 4 are *directed* (who repairs before
//! whom); a distributed protocol additionally lives on an *undirected*
//! communication graph: which nodes exchange messages. [`Topology`] is
//! that graph, with the distance machinery the Byzantine-containment
//! work needs: single- and multi-source BFS, eccentricity, radius and
//! diameter, and distance-to-a-set queries ("how far is node `v` from
//! the nearest liar?").
//!
//! Distances are exact hop counts ([`Topology::INFINITY`] for
//! unreachable pairs), computed by breadth-first search, so all the
//! classic metric laws hold and are property-tested: symmetry on
//! undirected graphs, the triangle inequality, and monotonicity of the
//! radius under edge addition.

/// An undirected graph over nodes `0..n`, stored as adjacency lists.
///
/// Parallel edges are coalesced and self-loops rejected; adjacency
/// lists are kept sorted so iteration order (and everything derived
/// from it, e.g. deterministic tie-breaks in protocols) is stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    adj: Vec<Vec<usize>>,
}

impl Topology {
    /// Distance value meaning "unreachable".
    pub const INFINITY: u64 = u64::MAX;

    /// An edgeless topology over `n` nodes.
    pub fn new(n: usize) -> Self {
        Topology {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Add the undirected edge `{a, b}`. Self-loops and duplicate edges
    /// are ignored. Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(
            a < self.len() && b < self.len(),
            "edge endpoint out of range"
        );
        if a == b || self.has_edge(a, b) {
            return;
        }
        let ai = self.adj[a].partition_point(|&x| x < b);
        self.adj[a].insert(ai, b);
        let bi = self.adj[b].partition_point(|&x| x < a);
        self.adj[b].insert(bi, a);
    }

    /// Whether the undirected edge `{a, b}` exists.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj[a].binary_search(&b).is_ok()
    }

    /// The sorted neighbors of `v`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// A line (path) topology `0 - 1 - … - n-1`.
    pub fn line(n: usize) -> Self {
        let mut t = Topology::new(n);
        for v in 1..n {
            t.add_edge(v - 1, v);
        }
        t
    }

    /// A ring topology (a line with the ends joined; `n >= 3`).
    pub fn ring(n: usize) -> Self {
        let mut t = Topology::line(n);
        if n >= 3 {
            t.add_edge(n - 1, 0);
        }
        t
    }

    /// A star topology: node 0 adjacent to every other node.
    pub fn star(n: usize) -> Self {
        let mut t = Topology::new(n);
        for v in 1..n {
            t.add_edge(0, v);
        }
        t
    }

    /// A seeded random connected topology: a random spanning tree
    /// (each node `v > 0` attaches to a uniformly drawn earlier node)
    /// plus `extra` additional random chord edges. Deterministic in
    /// `(n, extra, seed)`; uses its own splitmix64 stream so the crate
    /// stays dependency-free.
    pub fn random_connected(n: usize, extra: usize, seed: u64) -> Self {
        let mut t = Topology::new(n);
        let mut state = seed;
        let mut next = move || -> u64 {
            // splitmix64: full-avalanche, never short-cycles.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for v in 1..n {
            let parent = (next() % v as u64) as usize;
            t.add_edge(parent, v);
        }
        if n >= 2 {
            for _ in 0..extra {
                let a = (next() % n as u64) as usize;
                let b = (next() % n as u64) as usize;
                t.add_edge(a, b);
            }
        }
        t
    }

    /// Hop distances from every node of `sources` (multi-source BFS):
    /// `result[v]` is the fewest hops from `v` to the nearest source,
    /// or [`Topology::INFINITY`] if no source is reachable.
    pub fn distances_from(&self, sources: &[usize]) -> Vec<u64> {
        let mut dist = vec![Self::INFINITY; self.len()];
        let mut queue = std::collections::VecDeque::new();
        for &s in sources {
            assert!(s < self.len(), "BFS source out of range");
            if dist[s] == Self::INFINITY {
                dist[s] = 0;
                queue.push_back(s);
            }
        }
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbors(v) {
                if dist[w] == Self::INFINITY {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// Hop distance between `a` and `b` ([`Topology::INFINITY`] when
    /// disconnected).
    pub fn distance(&self, a: usize, b: usize) -> u64 {
        self.distances_from(&[a])[b]
    }

    /// Eccentricity of `v`: the greatest distance from `v` to any node,
    /// [`Topology::INFINITY`] when some node is unreachable.
    pub fn eccentricity(&self, v: usize) -> u64 {
        self.distances_from(&[v]).into_iter().max().unwrap_or(0)
    }

    /// The graph radius: the least eccentricity over all nodes.
    /// [`Topology::INFINITY`] when disconnected, 0 for the empty or
    /// one-node graph.
    pub fn radius(&self) -> u64 {
        (0..self.len())
            .map(|v| self.eccentricity(v))
            .min()
            .unwrap_or(0)
    }

    /// The graph diameter: the greatest eccentricity over all nodes.
    pub fn diameter(&self) -> u64 {
        (0..self.len())
            .map(|v| self.eccentricity(v))
            .max()
            .unwrap_or(0)
    }

    /// Whether every pair of nodes is connected by some path.
    pub fn is_connected(&self) -> bool {
        match self.len() {
            0 | 1 => true,
            _ => !self
                .distances_from(&[0])
                .into_iter()
                .any(|d| d == Self::INFINITY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_distances_are_index_differences() {
        let t = Topology::line(6);
        for a in 0..6 {
            for b in 0..6 {
                assert_eq!(t.distance(a, b), (a as i64 - b as i64).unsigned_abs());
            }
        }
        assert_eq!(t.diameter(), 5);
        assert_eq!(t.radius(), 3);
    }

    #[test]
    fn ring_wraps_around() {
        let t = Topology::ring(6);
        assert_eq!(t.distance(0, 5), 1);
        assert_eq!(t.distance(0, 3), 3);
        assert_eq!(t.diameter(), 3);
        assert_eq!(t.radius(), 3);
    }

    #[test]
    fn star_has_radius_one() {
        let t = Topology::star(7);
        assert_eq!(t.eccentricity(0), 1);
        assert_eq!(t.radius(), 1);
        assert_eq!(t.diameter(), 2);
    }

    #[test]
    fn duplicate_and_self_edges_are_ignored() {
        let mut t = Topology::new(3);
        t.add_edge(0, 1);
        t.add_edge(1, 0);
        t.add_edge(1, 1);
        assert_eq!(t.edge_count(), 1);
        assert_eq!(t.neighbors(1), &[0]);
    }

    #[test]
    fn disconnected_distances_are_infinite() {
        let t = Topology::new(3);
        assert_eq!(t.distance(0, 2), Topology::INFINITY);
        assert!(!t.is_connected());
        assert_eq!(t.radius(), Topology::INFINITY);
    }

    #[test]
    fn random_connected_is_connected_and_deterministic() {
        for seed in 0..16u64 {
            let a = Topology::random_connected(24, 8, seed);
            let b = Topology::random_connected(24, 8, seed);
            assert_eq!(a, b, "seed {seed}");
            assert!(a.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn multi_source_distance_is_min_over_sources() {
        let t = Topology::line(8);
        let d = t.distances_from(&[0, 7]);
        for (v, &dv) in d.iter().enumerate() {
            assert_eq!(dv, t.distance(0, v).min(t.distance(7, v)));
        }
    }
}
