//! Node partitions: disjoint variable groups forming constraint-graph nodes.

use std::collections::HashMap;

use nonmask_program::{ProcessId, Program, VarId};

/// A partition of (a subset of) a program's variables into mutually
/// exclusive groups, each of which becomes a constraint-graph node.
///
/// The paper requires node labels to be mutually exclusive: "a variable
/// appears in the label of only one node". Variables not covered by any
/// group simply cannot appear in convergence actions placed on the graph.
#[derive(Debug, Clone, Default)]
pub struct NodePartition {
    groups: Vec<(String, Vec<VarId>)>,
    owner: HashMap<VarId, usize>,
}

impl NodePartition {
    /// An empty partition; add groups with [`NodePartition::group`].
    pub fn new() -> Self {
        Self::default()
    }

    /// One node per process: each group holds the variables tagged with one
    /// [`ProcessId`] (untagged variables are left out).
    ///
    /// This matches the paper's usage, where node `j`'s label is the set of
    /// variables of process `j` (e.g. `{c.j, sn.j}`).
    pub fn by_process(program: &Program) -> Self {
        let mut buckets: Vec<(ProcessId, Vec<VarId>)> = Vec::new();
        for var in program.var_ids() {
            if let Some(pid) = program.var(var).process() {
                match buckets.iter_mut().find(|(p, _)| *p == pid) {
                    Some((_, vars)) => vars.push(var),
                    None => buckets.push((pid, vec![var])),
                }
            }
        }
        buckets.sort_by_key(|(p, _)| *p);
        let mut partition = NodePartition::new();
        for (pid, vars) in buckets {
            partition = partition.group(pid.to_string(), vars);
        }
        partition
    }

    /// One node per variable.
    pub fn by_variable(program: &Program) -> Self {
        let mut partition = NodePartition::new();
        for var in program.var_ids() {
            partition = partition.group(program.var(var).name().to_string(), [var]);
        }
        partition
    }

    /// Add a named group.
    ///
    /// # Panics
    ///
    /// Panics if any variable already belongs to another group (labels must
    /// be mutually exclusive) or the group is empty.
    pub fn group(mut self, name: impl Into<String>, vars: impl IntoIterator<Item = VarId>) -> Self {
        let vars: Vec<VarId> = vars.into_iter().collect();
        assert!(
            !vars.is_empty(),
            "constraint-graph nodes must label at least one variable"
        );
        let index = self.groups.len();
        for &v in &vars {
            let prev = self.owner.insert(v, index);
            assert!(
                prev.is_none(),
                "variable {v} appears in two node labels; labels must be mutually exclusive"
            );
        }
        self.groups.push((name.into(), vars));
        self
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the partition has no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The groups, in insertion order.
    pub fn groups(&self) -> impl Iterator<Item = (&str, &[VarId])> {
        self.groups.iter().map(|(n, v)| (n.as_str(), v.as_slice()))
    }

    /// The index of the group containing `var`, if any.
    pub fn group_of(&self, var: VarId) -> Option<usize> {
        self.owner.get(&var).copied()
    }

    /// The name of group `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn name_of(&self, index: usize) -> &str {
        &self.groups[index].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_program::Domain;

    fn program() -> Program {
        let mut b = Program::builder("p");
        b.var_of("c.0", Domain::Bool, ProcessId(0));
        b.var_of("sn.0", Domain::Bool, ProcessId(0));
        b.var_of("c.1", Domain::Bool, ProcessId(1));
        b.var("global", Domain::Bool);
        b.build()
    }

    #[test]
    fn by_process_groups_tagged_vars() {
        let p = program();
        let part = NodePartition::by_process(&p);
        assert_eq!(part.len(), 2);
        let c0 = p.var_by_name("c.0").unwrap();
        let sn0 = p.var_by_name("sn.0").unwrap();
        let c1 = p.var_by_name("c.1").unwrap();
        let g = p.var_by_name("global").unwrap();
        assert_eq!(part.group_of(c0), part.group_of(sn0));
        assert_ne!(part.group_of(c0), part.group_of(c1));
        assert_eq!(part.group_of(g), None, "untagged variables are uncovered");
        assert_eq!(part.name_of(0), "P0");
    }

    #[test]
    fn by_variable_gives_singletons() {
        let p = program();
        let part = NodePartition::by_variable(&p);
        assert_eq!(part.len(), 4);
        for var in p.var_ids() {
            let g = part.group_of(var).unwrap();
            assert_eq!(part.name_of(g), p.var(var).name());
        }
    }

    #[test]
    fn manual_groups() {
        let p = program();
        let c0 = p.var_by_name("c.0").unwrap();
        let c1 = p.var_by_name("c.1").unwrap();
        let part = NodePartition::new()
            .group("left", [c0])
            .group("right", [c1]);
        assert_eq!(part.len(), 2);
        assert_eq!(part.group_of(c0), Some(0));
        assert_eq!(part.group_of(c1), Some(1));
        let names: Vec<&str> = part.groups().map(|(n, _)| n).collect();
        assert_eq!(names, ["left", "right"]);
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn overlapping_groups_panic() {
        let p = program();
        let c0 = p.var_by_name("c.0").unwrap();
        let _ = NodePartition::new().group("a", [c0]).group("b", [c0]);
    }

    #[test]
    #[should_panic(expected = "at least one variable")]
    fn empty_group_panics() {
        let _ = NodePartition::new().group("empty", []);
    }
}
