//! Graphviz DOT export.

use nonmask_program::Program;

use crate::graph::ConstraintGraph;

impl ConstraintGraph {
    /// Render the graph in Graphviz DOT format.
    ///
    /// Nodes show their name and variable labels; edges show the labeling
    /// convergence action's name. Pass the owning [`Program`] so names can
    /// be resolved.
    ///
    /// ```
    /// # use nonmask_program::{Domain, Program};
    /// # use nonmask_graph::{ConstraintGraph, ConstraintRef, NodePartition};
    /// # let mut b = Program::builder("p");
    /// # let x = b.var("x", Domain::Bool);
    /// # let y = b.var("y", Domain::Bool);
    /// # let a = b.convergence_action("fix", [x, y], [y], |_| true, |_| {});
    /// # let p = b.build();
    /// # let part = NodePartition::by_variable(&p);
    /// let g = ConstraintGraph::derive(&p, &part, &[(a, ConstraintRef(0))]).unwrap();
    /// let dot = g.to_dot(&p);
    /// assert!(dot.starts_with("digraph"));
    /// ```
    pub fn to_dot(&self, program: &Program) -> String {
        let mut out = String::from("digraph constraint_graph {\n");
        out.push_str("  rankdir=TB;\n  node [shape=ellipse];\n");
        for (i, node) in self.nodes().iter().enumerate() {
            let vars: Vec<&str> = node.vars().iter().map(|&v| program.var(v).name()).collect();
            out.push_str(&format!(
                "  n{i} [label=\"{}\\n{{{}}}\"];\n",
                escape(node.name()),
                escape(&vars.join(", "))
            ));
        }
        for edge in self.edges() {
            let action = program.action(edge.action()).name();
            out.push_str(&format!(
                "  n{} -> n{} [label=\"{}\"];\n",
                edge.from().index(),
                edge.to().index(),
                escape(action)
            ));
        }
        out.push_str("}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ConstraintRef;
    use crate::partition::NodePartition;
    use nonmask_program::{Domain, Program};

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut b = Program::builder("p");
        let x = b.var("x", Domain::Bool);
        let y = b.var("y", Domain::Bool);
        let a = b.convergence_action("fix-y", [x, y], [y], |_| true, |_| {});
        let p = b.build();
        let part = NodePartition::by_variable(&p);
        let g = ConstraintGraph::derive(&p, &part, &[(a, ConstraintRef(0))]).unwrap();
        let dot = g.to_dot(&p);
        assert!(dot.contains("digraph constraint_graph"));
        assert!(dot.contains("fix-y"));
        assert!(dot.contains("{x}"));
        assert!(dot.contains("{y}"));
        assert!(dot.contains("n0 -> n1") || dot.contains("n1 -> n0"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_escapes_quotes() {
        let mut b = Program::builder("p");
        let x = b.var("x", Domain::Bool);
        let a = b.convergence_action("say \"hi\"", [x], [x], |_| true, |_| {});
        let p = b.build();
        let part = NodePartition::by_variable(&p);
        let g = ConstraintGraph::derive(&p, &part, &[(a, ConstraintRef(0))]).unwrap();
        let dot = g.to_dot(&p);
        assert!(dot.contains("say \\\"hi\\\""));
    }
}
