//! Constraint graphs (Section 4 of Arora, Gouda & Varghese 1994).
//!
//! A *constraint graph* of a set of convergence actions is a directed graph
//! with:
//!
//! - one node per disjoint group of program variables (node *labels* are
//!   mutually exclusive variable sets), and
//! - one edge per convergence action: if action `ac` labels the edge from
//!   node `v` to node `w`, then all variables *read* by `ac` lie in
//!   `label(v) ∪ label(w)` and all variables *written* by `ac` lie in
//!   `label(w)`.
//!
//! The paper's three sufficient conditions for convergence validation are
//! phrased over the shape of this graph:
//!
//! - **Theorem 1** applies when the graph is an [*out-tree*](Shape::OutTree);
//! - **Theorem 2** applies when the graph is
//!   [*self-looping*](Shape::SelfLooping) (acyclic apart from self-loops)
//!   and the actions targeting each node admit a linear preservation order
//!   ([`ConstraintGraph::linear_preservation_order`]);
//! - **Theorem 3** applies when the constraints can be
//!   [layered](layering::Layering) so that each layer's graph is
//!   self-looping with per-node linear orders.
//!
//! This crate provides the graph data structure, its derivation from a
//! program's declared read/write sets ([`ConstraintGraph::derive`]), shape
//! classification, the rank function from Theorem 1's proof, the
//! linear-order search, layering support, and DOT export.
//!
//! Alongside the directed constraint graphs it also provides
//! [`Topology`], the *undirected* communication graphs that
//! message-passing protocols run over, with the BFS-distance utilities
//! (eccentricity, radius, distance-to-nearest-liar) the
//! Byzantine-containment work is measured in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;
pub mod graph;
pub mod layering;
pub mod partition;
pub mod shape;
pub mod topology;

pub use graph::{ConstraintGraph, ConstraintRef, Edge, EdgeId, GraphError, Node, NodeId};
pub use layering::{Layering, LayeringError};
pub use partition::NodePartition;
pub use shape::Shape;
pub use topology::Topology;
