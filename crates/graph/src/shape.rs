//! Shape classification of constraint graphs.

use crate::graph::ConstraintGraph;

/// The paper's taxonomy of constraint-graph shapes, strongest first.
///
/// `OutTree ⊂ SelfLooping ⊂ arbitrary`; classification returns the strongest
/// class that applies, so an out-tree is reported as [`Shape::OutTree`] even
/// though it is also (vacuously) self-looping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// Weakly connected; one node of indegree zero, all others indegree
    /// one; no self-loops (Section 5). Theorem 1 applies.
    OutTree,
    /// Every cycle is a self-loop, i.e. the graph is acyclic once
    /// self-loops are removed (Section 6). Theorem 2's shape condition.
    SelfLooping,
    /// Has a cycle of length greater than one (Section 7). Requires
    /// refinement (restriction to state subsets or layering) before
    /// Theorems 1–2 apply.
    Cyclic,
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Shape::OutTree => f.write_str("out-tree"),
            Shape::SelfLooping => f.write_str("self-looping"),
            Shape::Cyclic => f.write_str("cyclic"),
        }
    }
}

/// Classify `graph`. Graphs with no nodes classify as [`Shape::SelfLooping`]
/// (vacuously acyclic, but not a tree).
pub(crate) fn classify(graph: &ConstraintGraph) -> Shape {
    let n = graph.node_count();
    if n == 0 {
        return Shape::SelfLooping;
    }

    // Cycle detection ignoring self-loops (Kahn's algorithm).
    let mut indeg = vec![0usize; n];
    let mut has_self_loop = false;
    for e in graph.edges() {
        if e.is_self_loop() {
            has_self_loop = true;
        } else {
            indeg[e.to().index()] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut visited = 0;
    let mut order_indeg = indeg.clone();
    while let Some(v) = queue.pop() {
        visited += 1;
        for e in graph.edges() {
            if !e.is_self_loop() && e.from().index() == v {
                let t = e.to().index();
                order_indeg[t] -= 1;
                if order_indeg[t] == 0 {
                    queue.push(t);
                }
            }
        }
    }
    if visited != n {
        return Shape::Cyclic;
    }

    // Out-tree: no self-loops, weakly connected, exactly one root with
    // indegree 0 and every other node indegree exactly 1.
    let roots = indeg.iter().filter(|&&d| d == 0).count();
    let all_single = indeg.iter().all(|&d| d <= 1);
    if !has_self_loop && roots == 1 && all_single && graph.is_weakly_connected() {
        Shape::OutTree
    } else {
        Shape::SelfLooping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ConstraintGraph, ConstraintRef};
    use nonmask_program::ActionId;

    fn mk(n: usize, arcs: &[(usize, usize)]) -> ConstraintGraph {
        let nodes = (0..n)
            .map(|i| ConstraintGraph::node(format!("n{i}"), []))
            .collect();
        let edges = arcs
            .iter()
            .enumerate()
            .map(|(i, &(f, t))| {
                ConstraintGraph::edge(
                    ConstraintGraph::node_id(f),
                    ConstraintGraph::node_id(t),
                    ActionId::from_index(i),
                    ConstraintRef(i),
                )
            })
            .collect();
        ConstraintGraph::from_parts(nodes, edges)
    }

    #[test]
    fn single_node_no_edges_is_out_tree() {
        assert_eq!(mk(1, &[]).shape(), Shape::OutTree);
    }

    #[test]
    fn empty_graph_is_self_looping() {
        assert_eq!(mk(0, &[]).shape(), Shape::SelfLooping);
    }

    #[test]
    fn chain_and_star_are_out_trees() {
        assert_eq!(mk(3, &[(0, 1), (1, 2)]).shape(), Shape::OutTree);
        assert_eq!(mk(4, &[(0, 1), (0, 2), (0, 3)]).shape(), Shape::OutTree);
    }

    #[test]
    fn disconnected_dag_is_not_a_tree() {
        assert_eq!(mk(4, &[(0, 1), (2, 3)]).shape(), Shape::SelfLooping);
    }

    #[test]
    fn diamond_is_not_a_tree() {
        // Two edges into node 3.
        assert_eq!(
            mk(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).shape(),
            Shape::SelfLooping
        );
    }

    #[test]
    fn self_loop_downgrades_tree() {
        assert_eq!(mk(2, &[(0, 1), (1, 1)]).shape(), Shape::SelfLooping);
    }

    #[test]
    fn two_cycle_is_cyclic() {
        assert_eq!(mk(2, &[(0, 1), (1, 0)]).shape(), Shape::Cyclic);
    }

    #[test]
    fn long_cycle_is_cyclic() {
        assert_eq!(
            mk(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).shape(),
            Shape::Cyclic
        );
    }

    #[test]
    fn cycle_with_tail_is_cyclic() {
        assert_eq!(
            mk(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]).shape(),
            Shape::Cyclic
        );
    }

    #[test]
    fn parallel_edges_break_tree_property() {
        // Two edges 0 -> 1 (two convergence actions targeting node 1): the
        // indegree of node 1 is 2, so this is not an out-tree even though it
        // is acyclic.
        assert_eq!(mk(2, &[(0, 1), (0, 1)]).shape(), Shape::SelfLooping);
    }

    #[test]
    fn display_names() {
        assert_eq!(Shape::OutTree.to_string(), "out-tree");
        assert_eq!(Shape::SelfLooping.to_string(), "self-looping");
        assert_eq!(Shape::Cyclic.to_string(), "cyclic");
    }
}
