//! The constraint-graph data structure.

use std::collections::HashMap;

use nonmask_program::{ActionId, Program, VarId};

use crate::partition::NodePartition;
use crate::shape::{classify, Shape};

/// Identifier of a constraint-graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Positional index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a constraint-graph edge (one per convergence action).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// Positional index of the edge.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for EdgeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Index of a constraint in the caller's constraint list.
///
/// The graph does not own constraint predicates — it refers to them by
/// position, since "there is a bijection between constraints and
/// convergence actions" (Section 4) and the caller holds both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConstraintRef(pub usize);

impl std::fmt::Display for ConstraintRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A constraint-graph node: a named, mutually-exclusive group of variables.
#[derive(Debug, Clone)]
pub struct Node {
    pub(crate) name: String,
    pub(crate) vars: Vec<VarId>,
}

impl Node {
    /// The node's name (e.g. the process it represents).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The variables labeling the node.
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }
}

/// A constraint-graph edge: one convergence action, pointing at the node
/// whose variables the action writes.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    pub(crate) from: NodeId,
    pub(crate) to: NodeId,
    pub(crate) action: ActionId,
    pub(crate) constraint: ConstraintRef,
}

impl Edge {
    /// The source node (holding the action's read-only variables).
    pub fn from(&self) -> NodeId {
        self.from
    }

    /// The target node (holding the action's written variables).
    pub fn to(&self) -> NodeId {
        self.to
    }

    /// The convergence action labeling the edge.
    pub fn action(&self) -> ActionId {
        self.action
    }

    /// The constraint this action establishes.
    pub fn constraint(&self) -> ConstraintRef {
        self.constraint
    }

    /// Whether the edge is a self-loop.
    pub fn is_self_loop(&self) -> bool {
        self.from == self.to
    }
}

/// Errors in constructing or querying a constraint graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A convergence action reads or writes a variable not covered by the
    /// node partition.
    UncoveredVariable {
        /// The offending action.
        action: ActionId,
        /// The uncovered variable.
        var: VarId,
    },
    /// A convergence action writes variables in more than one node; edges
    /// have a single target.
    WritesSpanNodes {
        /// The offending action.
        action: ActionId,
    },
    /// A convergence action writes nothing; it cannot label an edge.
    NoWrites {
        /// The offending action.
        action: ActionId,
    },
    /// A convergence action reads variables outside `label(v) ∪ label(w)`
    /// for every candidate source `v` (i.e. reads span at least two nodes
    /// besides the target).
    ReadsSpanNodes {
        /// The offending action.
        action: ActionId,
    },
    /// The rank function is only defined when the graph has no cycles of
    /// length greater than one.
    CyclicRanks,
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UncoveredVariable { action, var } => write!(
                f,
                "action {action} uses variable {var}, which no node label covers"
            ),
            GraphError::WritesSpanNodes { action } => write!(
                f,
                "action {action} writes variables in more than one node label"
            ),
            GraphError::NoWrites { action } => {
                write!(
                    f,
                    "action {action} writes no variables and cannot label an edge"
                )
            }
            GraphError::ReadsSpanNodes { action } => write!(
                f,
                "action {action} reads variables outside the union of two node labels"
            ),
            GraphError::CyclicRanks => {
                write!(
                    f,
                    "ranks are undefined: the graph has a cycle of length > 1"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// The constraint graph of a set of convergence actions (Section 4).
#[derive(Debug, Clone)]
pub struct ConstraintGraph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl ConstraintGraph {
    /// Derive the constraint graph of the given `(action, constraint)`
    /// pairs from the actions' declared read/write sets.
    ///
    /// Each action becomes one edge: its target is the node containing its
    /// writes; its source is the (unique) other node its reads touch, or
    /// the target itself (a self-loop) when it reads only target variables.
    ///
    /// ```
    /// use nonmask_program::{Domain, Program};
    /// use nonmask_graph::{ConstraintGraph, ConstraintRef, NodePartition, Shape};
    ///
    /// let mut b = Program::builder("p");
    /// let x = b.var("x", Domain::Bool);
    /// let y = b.var("y", Domain::Bool);
    /// // Repairing y from x: reads {x, y}, writes {y} → edge x → y.
    /// let fix = b.convergence_action("fix-y", [x, y], [y], |_| true, |_| {});
    /// let p = b.build();
    ///
    /// let partition = NodePartition::new().group("x", [x]).group("y", [y]);
    /// let g = ConstraintGraph::derive(&p, &partition, &[(fix, ConstraintRef(0))])?;
    /// assert_eq!(g.edge_count(), 1);
    /// assert_eq!(g.shape(), Shape::OutTree);
    /// # Ok::<(), nonmask_graph::GraphError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// See [`GraphError`] — returned when an action's reads/writes cannot be
    /// placed per the paper's definition.
    pub fn derive(
        program: &Program,
        partition: &NodePartition,
        convergence: &[(ActionId, ConstraintRef)],
    ) -> Result<Self, GraphError> {
        let nodes: Vec<Node> = partition
            .groups()
            .map(|(name, vars)| Node {
                name: name.to_string(),
                vars: vars.to_vec(),
            })
            .collect();

        let mut edges = Vec::with_capacity(convergence.len());
        for &(action, constraint) in convergence {
            let act = program.action(action);

            // Target: the unique node containing all written variables.
            let mut target: Option<usize> = None;
            if act.writes().is_empty() {
                return Err(GraphError::NoWrites { action });
            }
            for &w in act.writes() {
                let g = partition
                    .group_of(w)
                    .ok_or(GraphError::UncoveredVariable { action, var: w })?;
                match target {
                    None => target = Some(g),
                    Some(t) if t == g => {}
                    Some(_) => return Err(GraphError::WritesSpanNodes { action }),
                }
            }
            let target = target.expect("nonempty writes imply a target");

            // Source: the unique non-target node the reads touch, if any.
            let mut source: Option<usize> = None;
            for &r in act.reads() {
                let g = partition
                    .group_of(r)
                    .ok_or(GraphError::UncoveredVariable { action, var: r })?;
                if g == target {
                    continue;
                }
                match source {
                    None => source = Some(g),
                    Some(s) if s == g => {}
                    Some(_) => return Err(GraphError::ReadsSpanNodes { action }),
                }
            }
            let source = source.unwrap_or(target);

            edges.push(Edge {
                from: NodeId(source as u32),
                to: NodeId(target as u32),
                action,
                constraint,
            });
        }

        Ok(ConstraintGraph { nodes, edges })
    }

    /// Build a graph from explicit parts (mostly for tests and tooling;
    /// prefer [`ConstraintGraph::derive`]).
    pub fn from_parts(nodes: Vec<Node>, edges: Vec<Edge>) -> Self {
        for e in &edges {
            assert!(e.from.index() < nodes.len() && e.to.index() < nodes.len());
        }
        ConstraintGraph { nodes, edges }
    }

    /// Construct a node (companion to [`ConstraintGraph::from_parts`]).
    pub fn node(name: impl Into<String>, vars: impl IntoIterator<Item = VarId>) -> Node {
        Node {
            name: name.into(),
            vars: vars.into_iter().collect(),
        }
    }

    /// Construct an edge (companion to [`ConstraintGraph::from_parts`]).
    pub fn edge(from: NodeId, to: NodeId, action: ActionId, constraint: ConstraintRef) -> Edge {
        Edge {
            from,
            to,
            action,
            constraint,
        }
    }

    /// Make a `NodeId` from a raw index (for [`ConstraintGraph::from_parts`]).
    pub fn node_id(index: usize) -> NodeId {
        NodeId(index as u32)
    }

    /// The graph's nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The graph's edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(|i| NodeId(i as u32))
    }

    /// All edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(|i| EdgeId(i as u32))
    }

    /// The node with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this graph.
    pub fn node_ref(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The edge with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an edge of this graph.
    pub fn edge_ref(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Ids of the edges whose target is `node`.
    pub fn edges_targeting(&self, node: NodeId) -> Vec<EdgeId> {
        self.edge_ids()
            .filter(|&e| self.edges[e.index()].to == node)
            .collect()
    }

    /// Ids of the edges whose source is `node` (self-loops included).
    pub fn edges_leaving(&self, node: NodeId) -> Vec<EdgeId> {
        self.edge_ids()
            .filter(|&e| self.edges[e.index()].from == node)
            .collect()
    }

    /// Classify the graph per the paper's taxonomy.
    pub fn shape(&self) -> Shape {
        classify(self)
    }

    /// The rank of every node, per the proof of Theorem 1: `rank(j) = 1 +
    /// max { rank(k) | edge k→j, k ≠ j }`, with `rank = 1` for nodes
    /// without incoming non-self edges.
    ///
    /// Ranks bound convergence: once all convergence actions of edges
    /// targeting nodes of rank `< r` have quiesced, each action targeting a
    /// rank-`r` node executes at most once more.
    ///
    /// # Errors
    ///
    /// [`GraphError::CyclicRanks`] when the graph has a cycle of length
    /// greater than one (self-loops are ignored, as in the definition).
    pub fn ranks(&self) -> Result<Vec<u32>, GraphError> {
        let n = self.nodes.len();
        // Kahn's algorithm over non-self edges, tracking longest distance.
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            if !e.is_self_loop() {
                indeg[e.to.index()] += 1;
            }
        }
        let mut rank = vec![1u32; n];
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut visited = 0;
        while let Some(v) = queue.pop() {
            visited += 1;
            for e in &self.edges {
                if e.is_self_loop() || e.from.index() != v {
                    continue;
                }
                let t = e.to.index();
                rank[t] = rank[t].max(rank[v] + 1);
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    queue.push(t);
                }
            }
        }
        if visited != n {
            return Err(GraphError::CyclicRanks);
        }
        Ok(rank)
    }

    /// Whether the underlying undirected graph is connected (vacuously true
    /// for graphs with at most one node).
    pub fn is_weakly_connected(&self) -> bool {
        let n = self.nodes.len();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for e in &self.edges {
                for (a, b) in [
                    (e.from.index(), e.to.index()),
                    (e.to.index(), e.from.index()),
                ] {
                    if a == v && !seen[b] {
                        seen[b] = true;
                        count += 1;
                        stack.push(b);
                    }
                }
            }
        }
        count == n
    }

    /// Search for a *linear preservation order* of the edges targeting
    /// `node`: an ordering `e1 … ek` such that for all `i < j`, the action
    /// of `ej` preserves the constraint of `ei` (the third antecedent of
    /// Theorem 2).
    ///
    /// `preserves(a, c)` must answer whether executing action `a` from any
    /// state where constraint `c` holds leaves `c` holding (discharge it
    /// with the model checker's preservation oracle).
    ///
    /// Returns `None` when no such order exists.
    pub fn linear_preservation_order(
        &self,
        node: NodeId,
        mut preserves: impl FnMut(ActionId, ConstraintRef) -> bool,
    ) -> Option<Vec<EdgeId>> {
        // Precedence: if action(e_j) does NOT preserve constraint(e_i),
        // then e_j must come before e_i in the order; the order is any
        // topological sort of that relation.
        self.order_edges(self.edges_targeting(node), &mut preserves)
    }

    /// Like [`ConstraintGraph::linear_preservation_order`], but over the
    /// edges *adjacent* to `node` (incoming **or** outgoing, as in the
    /// fourth antecedent of Theorem 3) rather than only those targeting it.
    ///
    /// On a path graph this captures same-layer neighbour interference:
    /// the copy action of edge `j → j+1` may violate the constraint of
    /// edge `j-1 → j`, and both are adjacent to node `j`.
    pub fn linear_preservation_order_adjacent(
        &self,
        node: NodeId,
        mut preserves: impl FnMut(ActionId, ConstraintRef) -> bool,
    ) -> Option<Vec<EdgeId>> {
        let mut adjacent = self.edges_targeting(node);
        for e in self.edges_leaving(node) {
            if !adjacent.contains(&e) {
                adjacent.push(e);
            }
        }
        self.order_edges(adjacent, &mut preserves)
    }

    fn order_edges(
        &self,
        edges: Vec<EdgeId>,
        preserves: &mut impl FnMut(ActionId, ConstraintRef) -> bool,
    ) -> Option<Vec<EdgeId>> {
        let k = edges.len();
        if k <= 1 {
            return Some(edges);
        }
        let mut must_precede = vec![Vec::new(); k];
        let mut indeg = vec![0usize; k];
        for i in 0..k {
            for j in 0..k {
                if i == j {
                    continue;
                }
                let ei = &self.edges[edges[i].index()];
                let ej = &self.edges[edges[j].index()];
                if !preserves(ej.action, ei.constraint) {
                    must_precede[j].push(i);
                    indeg[i] += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..k).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(k);
        while let Some(j) = queue.pop() {
            order.push(edges[j]);
            for &i in &must_precede[j] {
                indeg[i] -= 1;
                if indeg[i] == 0 {
                    queue.push(i);
                }
            }
        }
        (order.len() == k).then_some(order)
    }

    /// The subgraph with only the given edges, dropping nodes incident to
    /// none of them (Theorem 3's per-layer refined constraint graph).
    ///
    /// Node/edge ids are renumbered; edge order is preserved.
    pub fn restricted_to(&self, keep: &[EdgeId]) -> ConstraintGraph {
        let mut node_map: HashMap<usize, usize> = HashMap::new();
        let mut nodes = Vec::new();
        let remap = |old: NodeId, nodes: &mut Vec<Node>, map: &mut HashMap<usize, usize>| {
            let next = nodes.len();
            let idx = *map.entry(old.index()).or_insert_with(|| {
                nodes.push(self.nodes[old.index()].clone());
                next
            });
            NodeId(idx as u32)
        };
        let mut edges = Vec::with_capacity(keep.len());
        for &e in keep {
            let old = &self.edges[e.index()];
            let from = remap(old.from, &mut nodes, &mut node_map);
            let to = remap(old.to, &mut nodes, &mut node_map);
            edges.push(Edge {
                from,
                to,
                action: old.action,
                constraint: old.constraint,
            });
        }
        ConstraintGraph { nodes, edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_program::{ActionKind, Domain};

    /// The paper's Section 4 example: constraints `x != y` and `x <= z`,
    /// with convergence actions that write `y` and `z` respectively.
    fn paper_example() -> (Program, ConstraintGraph) {
        let mut b = Program::builder("xyz");
        let x = b.var("x", Domain::range(0, 3));
        let y = b.var("y", Domain::range(0, 3));
        let z = b.var("z", Domain::range(0, 3));
        let a1 = b.convergence_action(
            "fix-y",
            [x, y],
            [y],
            move |s| s.get(x) == s.get(y),
            move |s| {
                let v = s.get(y);
                s.set(y, (v + 1) % 4);
            },
        );
        let a2 = b.convergence_action(
            "fix-z",
            [x, z],
            [z],
            move |s| s.get(x) > s.get(z),
            move |s| {
                let v = s.get(x);
                s.set(z, v);
            },
        );
        let p = b.build();
        let part = NodePartition::by_variable(&p);
        let g =
            ConstraintGraph::derive(&p, &part, &[(a1, ConstraintRef(0)), (a2, ConstraintRef(1))])
                .unwrap();
        (p, g)
    }

    #[test]
    fn derives_paper_figure() {
        // Reproduces the figure in Section 4: edges x->y and x->z.
        let (p, g) = paper_example();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        let x = p.var_by_name("x").unwrap();
        let y = p.var_by_name("y").unwrap();
        let z = p.var_by_name("z").unwrap();
        let node_of = |v| g.node_ids().find(|&n| g.node_ref(n).vars() == [v]).unwrap();
        let (nx, ny, nz) = (node_of(x), node_of(y), node_of(z));
        assert_eq!(g.edges()[0].from(), nx);
        assert_eq!(g.edges()[0].to(), ny);
        assert_eq!(g.edges()[1].from(), nx);
        assert_eq!(g.edges()[1].to(), nz);
        assert!(!g.edges()[0].is_self_loop());
    }

    #[test]
    fn paper_figure_is_an_out_tree_with_ranks() {
        let (_, g) = paper_example();
        assert_eq!(g.shape(), Shape::OutTree);
        assert!(g.is_weakly_connected());
        let ranks = g.ranks().unwrap();
        // x has rank 1, y and z rank 2.
        assert_eq!(ranks.iter().filter(|&&r| r == 1).count(), 1);
        assert_eq!(ranks.iter().filter(|&&r| r == 2).count(), 2);
    }

    #[test]
    fn self_loop_when_reads_within_target() {
        let mut b = Program::builder("p");
        let x = b.var("x", Domain::Bool);
        let a = b.convergence_action("fix-x", [x], [x], |_| true, |_| {});
        let p = b.build();
        let part = NodePartition::by_variable(&p);
        let g = ConstraintGraph::derive(&p, &part, &[(a, ConstraintRef(0))]).unwrap();
        assert!(g.edges()[0].is_self_loop());
        assert_eq!(g.shape(), Shape::SelfLooping);
        assert_eq!(g.ranks().unwrap(), vec![1]);
    }

    #[test]
    fn cyclic_graph_detected() {
        let mut b = Program::builder("p");
        let x = b.var("x", Domain::Bool);
        let y = b.var("y", Domain::Bool);
        let a1 = b.convergence_action("xy", [x, y], [y], |_| true, |_| {});
        let a2 = b.convergence_action("yx", [x, y], [x], |_| true, |_| {});
        let p = b.build();
        let part = NodePartition::by_variable(&p);
        let g =
            ConstraintGraph::derive(&p, &part, &[(a1, ConstraintRef(0)), (a2, ConstraintRef(1))])
                .unwrap();
        assert_eq!(g.shape(), Shape::Cyclic);
        assert_eq!(g.ranks(), Err(GraphError::CyclicRanks));
    }

    #[test]
    fn derive_rejects_bad_actions() {
        let mut b = Program::builder("p");
        let x = b.var("x", Domain::Bool);
        let y = b.var("y", Domain::Bool);
        let z = b.var("z", Domain::Bool);
        let writes_two = b.convergence_action("w2", [x], [x, y], |_| true, |_| {});
        let reads_three = b.convergence_action("r3", [x, y, z], [z], |_| true, |_| {});
        let writes_none = b.convergence_action("w0", [x], [], |_| true, |_| {});
        let p = b.build();
        let part = NodePartition::by_variable(&p);

        assert_eq!(
            ConstraintGraph::derive(&p, &part, &[(writes_two, ConstraintRef(0))]).unwrap_err(),
            GraphError::WritesSpanNodes { action: writes_two }
        );
        assert_eq!(
            ConstraintGraph::derive(&p, &part, &[(reads_three, ConstraintRef(0))]).unwrap_err(),
            GraphError::ReadsSpanNodes {
                action: reads_three
            }
        );
        assert_eq!(
            ConstraintGraph::derive(&p, &part, &[(writes_none, ConstraintRef(0))]).unwrap_err(),
            GraphError::NoWrites {
                action: writes_none
            }
        );
    }

    #[test]
    fn derive_rejects_uncovered_variable() {
        let mut b = Program::builder("p");
        let x = b.var("x", Domain::Bool);
        let y = b.var("y", Domain::Bool);
        let a = b.convergence_action("a", [x, y], [y], |_| true, |_| {});
        let p = b.build();
        let part = NodePartition::new().group("only-y", [y]);
        assert_eq!(
            ConstraintGraph::derive(&p, &part, &[(a, ConstraintRef(0))]).unwrap_err(),
            GraphError::UncoveredVariable { action: a, var: x }
        );
    }

    #[test]
    fn chain_ranks_increase() {
        // n0 -> n1 -> n2: ranks 1, 2, 3.
        let nodes = vec![
            ConstraintGraph::node("n0", []),
            ConstraintGraph::node("n1", []),
            ConstraintGraph::node("n2", []),
        ];
        let edges = vec![
            ConstraintGraph::edge(
                ConstraintGraph::node_id(0),
                ConstraintGraph::node_id(1),
                ActionId::from_index(0),
                ConstraintRef(0),
            ),
            ConstraintGraph::edge(
                ConstraintGraph::node_id(1),
                ConstraintGraph::node_id(2),
                ActionId::from_index(1),
                ConstraintRef(1),
            ),
        ];
        let g = ConstraintGraph::from_parts(nodes, edges);
        assert_eq!(g.ranks().unwrap(), vec![1, 2, 3]);
        assert_eq!(g.shape(), Shape::OutTree);
    }

    #[test]
    fn linear_order_found_when_acyclic_preservation() {
        // Two edges target node 1; action a0 violates constraint c1, so a0
        // must come before... wait: if a0 does not preserve c1, a0 must
        // precede the establishment of c1, i.e. a0 comes BEFORE e1's action
        // in the order means e1 (establishing c1) can be violated... The
        // required property: each action preserves constraints of PRECEDING
        // actions. So if a0 !preserves c1, then e1 cannot precede e0.
        let nodes = vec![
            ConstraintGraph::node("src", []),
            ConstraintGraph::node("dst", []),
        ];
        let e = |a: usize, c: usize| {
            ConstraintGraph::edge(
                ConstraintGraph::node_id(0),
                ConstraintGraph::node_id(1),
                ActionId::from_index(a),
                ConstraintRef(c),
            )
        };
        let g = ConstraintGraph::from_parts(nodes, vec![e(0, 0), e(1, 1)]);
        let node1 = ConstraintGraph::node_id(1);

        // a1 preserves c0; a0 does not preserve c1 → order must be e0, e1? No:
        // "each action preserves constraints of preceding actions": if order
        // is [e1, e0], need a0 to preserve c1 — false. If [e0, e1], need a1
        // to preserve c0 — true. So the only valid order is [e0, e1].
        let order = g
            .linear_preservation_order(node1, |a, c| {
                !(a.index() == 0 && c.0 == 1) // a0 violates c1; everything else preserves
            })
            .unwrap();
        assert_eq!(order.len(), 2);
        assert_eq!(g.edge_ref(order[0]).action().index(), 0);
        assert_eq!(g.edge_ref(order[1]).action().index(), 1);
    }

    #[test]
    fn linear_order_absent_on_mutual_violation() {
        let nodes = vec![ConstraintGraph::node("dst", [])];
        let e = |a: usize, c: usize| {
            ConstraintGraph::edge(
                ConstraintGraph::node_id(0),
                ConstraintGraph::node_id(0),
                ActionId::from_index(a),
                ConstraintRef(c),
            )
        };
        let g = ConstraintGraph::from_parts(nodes, vec![e(0, 0), e(1, 1)]);
        // Each action violates the other's constraint: no order exists.
        let order =
            g.linear_preservation_order(ConstraintGraph::node_id(0), |a, c| a.index() == c.0);
        assert!(order.is_none());
    }

    #[test]
    fn single_edge_order_is_trivial() {
        let (_, g) = paper_example();
        for node in g.node_ids() {
            let targeting = g.edges_targeting(node);
            if targeting.len() <= 1 {
                let order = g
                    .linear_preservation_order(node, |_, _| false)
                    .expect("≤1 edge always has an order");
                assert_eq!(order, targeting);
            }
        }
    }

    #[test]
    fn restriction_drops_isolated_nodes() {
        let (_, g) = paper_example();
        let first = g.edge_ids().next().unwrap();
        let sub = g.restricted_to(&[first]);
        assert_eq!(sub.edge_count(), 1);
        assert_eq!(sub.node_count(), 2, "z's node is dropped");
        assert_eq!(sub.shape(), Shape::OutTree);
    }

    #[test]
    fn edges_targeting_and_leaving() {
        let (_, g) = paper_example();
        let root = g
            .node_ids()
            .find(|&n| g.edges_leaving(n).len() == 2)
            .expect("x is the root");
        assert!(g.edges_targeting(root).is_empty());
        for e in g.edge_ids() {
            assert_eq!(g.edge_ref(e).from(), root);
        }
    }

    #[test]
    fn kind_metadata_survives() {
        let (p, g) = paper_example();
        for e in g.edges() {
            assert_eq!(p.action(e.action()).kind(), ActionKind::Convergence);
        }
    }
}
