//! Hierarchical constraint partitions (Theorem 3).
//!
//! Theorem 3 partitions the convergence actions (equivalently, their
//! constraints) into layers `0, 1, …, M-1` such that, per layer, the
//! constraint graph restricted to that layer is self-looping and lower
//! layers are preserved by everything above them. A [`Layering`] records
//! the partition; validating the semantic conditions is the job of the
//! `nonmask` core crate (with the checker's preservation oracle).

use crate::graph::{ConstraintGraph, ConstraintRef, EdgeId};
use crate::shape::Shape;

/// Errors in constructing a [`Layering`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayeringError {
    /// A constraint appears in two layers.
    Duplicate(ConstraintRef),
    /// A layer is empty.
    EmptyLayer {
        /// Index of the empty layer.
        layer: usize,
    },
}

impl std::fmt::Display for LayeringError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayeringError::Duplicate(c) => write!(f, "constraint {c} appears in two layers"),
            LayeringError::EmptyLayer { layer } => write!(f, "layer {layer} is empty"),
        }
    }
}

impl std::error::Error for LayeringError {}

/// A partition of constraints into layers `0 .. M` (lowest first).
#[derive(Debug, Clone)]
pub struct Layering {
    layers: Vec<Vec<ConstraintRef>>,
}

impl Layering {
    /// Build a layering; layers are given lowest-numbered first.
    ///
    /// # Errors
    ///
    /// [`LayeringError::Duplicate`] if a constraint appears twice,
    /// [`LayeringError::EmptyLayer`] if any layer is empty.
    pub fn new(
        layers: impl IntoIterator<Item = Vec<ConstraintRef>>,
    ) -> Result<Self, LayeringError> {
        let layers: Vec<Vec<ConstraintRef>> = layers.into_iter().collect();
        let mut seen = std::collections::HashSet::new();
        for (i, layer) in layers.iter().enumerate() {
            if layer.is_empty() {
                return Err(LayeringError::EmptyLayer { layer: i });
            }
            for &c in layer {
                if !seen.insert(c) {
                    return Err(LayeringError::Duplicate(c));
                }
            }
        }
        Ok(Layering { layers })
    }

    /// The trivial layering: all constraints in one layer.
    pub fn single(constraints: impl IntoIterator<Item = ConstraintRef>) -> Self {
        Layering {
            layers: vec![constraints.into_iter().collect()],
        }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether there are no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layers, lowest first.
    pub fn layers(&self) -> &[Vec<ConstraintRef>] {
        &self.layers
    }

    /// The layer index of `constraint`, if it belongs to the layering.
    pub fn layer_of(&self, constraint: ConstraintRef) -> Option<usize> {
        self.layers.iter().position(|l| l.contains(&constraint))
    }

    /// All constraints in layers strictly below `layer`.
    pub fn below(&self, layer: usize) -> Vec<ConstraintRef> {
        self.layers[..layer.min(self.layers.len())]
            .iter()
            .flatten()
            .copied()
            .collect()
    }

    /// All constraints in layers strictly above `layer`.
    pub fn above(&self, layer: usize) -> Vec<ConstraintRef> {
        if layer + 1 >= self.layers.len() {
            return Vec::new();
        }
        self.layers[layer + 1..].iter().flatten().copied().collect()
    }

    /// The edge ids of `graph` whose constraints are in `layer`.
    pub fn edges_in_layer(&self, graph: &ConstraintGraph, layer: usize) -> Vec<EdgeId> {
        let members = &self.layers[layer];
        graph
            .edge_ids()
            .filter(|&e| members.contains(&graph.edge_ref(e).constraint()))
            .collect()
    }

    /// The per-layer refined constraint graph (Section 7's `q'`-restricted
    /// graph) and its shape.
    pub fn layer_graph(&self, graph: &ConstraintGraph, layer: usize) -> (ConstraintGraph, Shape) {
        let edges = self.edges_in_layer(graph, layer);
        let sub = graph.restricted_to(&edges);
        let shape = sub.shape();
        (sub, shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_program::ActionId;

    fn c(i: usize) -> ConstraintRef {
        ConstraintRef(i)
    }

    #[test]
    fn construction_and_lookup() {
        let l = Layering::new([vec![c(0), c(1)], vec![c(2)]]).unwrap();
        assert_eq!(l.len(), 2);
        assert_eq!(l.layer_of(c(0)), Some(0));
        assert_eq!(l.layer_of(c(2)), Some(1));
        assert_eq!(l.layer_of(c(9)), None);
        assert_eq!(l.below(1), vec![c(0), c(1)]);
        assert!(l.below(0).is_empty());
        assert_eq!(l.above(0), vec![c(2)]);
        assert!(l.above(1).is_empty());
    }

    #[test]
    fn rejects_duplicates_and_empty() {
        assert_eq!(
            Layering::new([vec![c(0)], vec![c(0)]]).unwrap_err(),
            LayeringError::Duplicate(c(0))
        );
        assert_eq!(
            Layering::new([vec![c(0)], vec![]]).unwrap_err(),
            LayeringError::EmptyLayer { layer: 1 }
        );
    }

    #[test]
    fn single_layer() {
        let l = Layering::single([c(0), c(1), c(2)]);
        assert_eq!(l.len(), 1);
        assert_eq!(l.below(0), vec![]);
        assert_eq!(l.above(0), vec![]);
    }

    #[test]
    fn layer_graphs_restrict_edges() {
        // A 2-cycle overall, but each layer alone is a single edge: the
        // paper's Section 7 refinement makes each layer self-looping.
        let nodes = vec![
            ConstraintGraph::node("a", []),
            ConstraintGraph::node("b", []),
        ];
        let edges = vec![
            ConstraintGraph::edge(
                ConstraintGraph::node_id(0),
                ConstraintGraph::node_id(1),
                ActionId::from_index(0),
                c(0),
            ),
            ConstraintGraph::edge(
                ConstraintGraph::node_id(1),
                ConstraintGraph::node_id(0),
                ActionId::from_index(1),
                c(1),
            ),
        ];
        let g = ConstraintGraph::from_parts(nodes, edges);
        assert_eq!(g.shape(), Shape::Cyclic);

        let l = Layering::new([vec![c(0)], vec![c(1)]]).unwrap();
        let (g0, s0) = l.layer_graph(&g, 0);
        let (g1, s1) = l.layer_graph(&g, 1);
        assert_eq!(g0.edge_count(), 1);
        assert_eq!(g1.edge_count(), 1);
        assert_eq!(s0, Shape::OutTree);
        assert_eq!(s1, Shape::OutTree);
    }

    #[test]
    fn single_constraint_self_loop_is_the_smallest_layering() {
        // Degenerate partition: one constraint, one node, one self-loop.
        // Theorem 3 collapses to Theorem 2: the only layer must classify
        // as self-looping.
        let nodes = vec![ConstraintGraph::node("a", [])];
        let edges = vec![ConstraintGraph::edge(
            ConstraintGraph::node_id(0),
            ConstraintGraph::node_id(0),
            ActionId::from_index(0),
            c(0),
        )];
        let g = ConstraintGraph::from_parts(nodes, edges);
        let l = Layering::new([vec![c(0)]]).unwrap();
        assert_eq!(l.len(), 1);
        assert!(l.below(0).is_empty());
        assert!(l.above(0).is_empty());
        assert_eq!(l.layer_of(c(0)), Some(0));
        let (sub, shape) = l.layer_graph(&g, 0);
        assert_eq!(sub.edge_count(), 1);
        assert_eq!(shape, Shape::SelfLooping);
    }

    #[test]
    fn fully_disconnected_graph_yields_empty_layer_graphs() {
        // Constraints with no corrective edges at all: every layer graph
        // is edgeless, hence (vacuously) an out-tree forest per node.
        let nodes = (0..3)
            .map(|i| ConstraintGraph::node(format!("n{i}"), []))
            .collect();
        let g = ConstraintGraph::from_parts(nodes, vec![]);
        let l = Layering::new([vec![c(0)], vec![c(1), c(2)]]).unwrap();
        for layer in 0..l.len() {
            assert!(l.edges_in_layer(&g, layer).is_empty());
            let (sub, shape) = l.layer_graph(&g, layer);
            assert_eq!(sub.edge_count(), 0);
            assert_ne!(shape, Shape::Cyclic);
        }
    }

    #[test]
    fn cycle_condensed_into_one_layer_stays_cyclic() {
        // The counterpart of `layer_graphs_restrict_edges`: if the 2-cycle
        // is NOT split across layers it condenses to a single cyclic
        // layer, which Theorem 3 must reject.
        let nodes = vec![
            ConstraintGraph::node("a", []),
            ConstraintGraph::node("b", []),
        ];
        let edges = vec![
            ConstraintGraph::edge(
                ConstraintGraph::node_id(0),
                ConstraintGraph::node_id(1),
                ActionId::from_index(0),
                c(0),
            ),
            ConstraintGraph::edge(
                ConstraintGraph::node_id(1),
                ConstraintGraph::node_id(0),
                ActionId::from_index(1),
                c(1),
            ),
        ];
        let g = ConstraintGraph::from_parts(nodes, edges);
        let l = Layering::single([c(0), c(1)]);
        let (sub, shape) = l.layer_graph(&g, 0);
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(shape, Shape::Cyclic);
    }

    #[test]
    fn edges_in_layer_filters_by_constraint() {
        let nodes = vec![ConstraintGraph::node("a", [])];
        let e = |i: usize| {
            ConstraintGraph::edge(
                ConstraintGraph::node_id(0),
                ConstraintGraph::node_id(0),
                ActionId::from_index(i),
                c(i),
            )
        };
        let g = ConstraintGraph::from_parts(nodes, vec![e(0), e(1), e(2)]);
        let l = Layering::new([vec![c(1)], vec![c(0), c(2)]]).unwrap();
        assert_eq!(l.edges_in_layer(&g, 0).len(), 1);
        assert_eq!(l.edges_in_layer(&g, 1).len(), 2);
    }
}
