//! Rooted trees (the topology of diffusing computations).

use rand::Rng;

/// A finite rooted tree over nodes `0..n`, node `0` being the root.
///
/// Stored as a parent vector: `parent[j]` is the parent of `j`, with
/// `parent[0] == 0` (the paper's convention `P.j = j` for the root).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree {
    parent: Vec<usize>,
}

impl Tree {
    /// Build a tree from a parent vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector is empty, `parent[0] != 0`, some parent index
    /// is out of range, or the structure has a cycle (i.e. is not a tree).
    pub fn from_parents(parent: Vec<usize>) -> Self {
        assert!(!parent.is_empty(), "a tree has at least its root");
        assert_eq!(parent[0], 0, "node 0 must be the root (its own parent)");
        let n = parent.len();
        for (j, &p) in parent.iter().enumerate() {
            assert!(p < n, "parent of {j} out of range");
        }
        // Every node must reach the root in < n hops.
        for start in 0..n {
            let mut j = start;
            for _ in 0..n {
                if j == 0 {
                    break;
                }
                j = parent[j];
            }
            assert_eq!(j, 0, "parent vector contains a cycle (at {start})");
        }
        Tree { parent }
    }

    /// A chain `0 - 1 - … - (n-1)` rooted at `0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn chain(n: usize) -> Self {
        assert!(n > 0);
        Tree {
            parent: (0..n).map(|j| j.saturating_sub(1)).collect(),
        }
    }

    /// A star: the root `0` with `n - 1` leaves.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn star(n: usize) -> Self {
        assert!(n > 0);
        Tree { parent: vec![0; n] }
    }

    /// A balanced binary tree with `n` nodes in heap layout
    /// (`parent[j] = (j-1)/2`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn binary(n: usize) -> Self {
        assert!(n > 0);
        Tree {
            parent: (0..n)
                .map(|j| if j == 0 { 0 } else { (j - 1) / 2 })
                .collect(),
        }
    }

    /// A uniformly random recursive tree: node `j`'s parent is drawn from
    /// `0..j`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        assert!(n > 0);
        Tree {
            parent: (0..n)
                .map(|j| if j == 0 { 0 } else { rng.gen_range(0..j) })
                .collect(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the tree is just the root.
    pub fn is_empty(&self) -> bool {
        false // a Tree always has at least the root
    }

    /// The parent of `j` (the root is its own parent).
    pub fn parent(&self, j: usize) -> usize {
        self.parent[j]
    }

    /// The children of `j`, in increasing order.
    pub fn children(&self, j: usize) -> Vec<usize> {
        (1..self.parent.len())
            .filter(|&k| self.parent[k] == j)
            .collect()
    }

    /// Whether `j` has no children.
    pub fn is_leaf(&self, j: usize) -> bool {
        (1..self.parent.len()).all(|k| self.parent[k] != j)
    }

    /// Depth of node `j` (root has depth 0).
    pub fn depth(&self, j: usize) -> usize {
        let mut d = 0;
        let mut j = j;
        while j != 0 {
            j = self.parent[j];
            d += 1;
        }
        d
    }

    /// The height of the tree (maximum depth).
    pub fn height(&self) -> usize {
        (0..self.len()).map(|j| self.depth(j)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chain_shape() {
        let t = Tree::chain(4);
        assert_eq!(t.len(), 4);
        assert_eq!(t.parent(0), 0);
        assert_eq!(t.parent(3), 2);
        assert_eq!(t.children(1), vec![2]);
        assert!(t.is_leaf(3) && !t.is_leaf(0));
        assert_eq!(t.height(), 3);
        assert_eq!(t.depth(3), 3);
    }

    #[test]
    fn star_shape() {
        let t = Tree::star(5);
        assert_eq!(t.children(0), vec![1, 2, 3, 4]);
        assert_eq!(t.height(), 1);
        for j in 1..5 {
            assert!(t.is_leaf(j));
        }
    }

    #[test]
    fn binary_shape() {
        let t = Tree::binary(7);
        assert_eq!(t.children(0), vec![1, 2]);
        assert_eq!(t.children(1), vec![3, 4]);
        assert_eq!(t.children(2), vec![5, 6]);
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn random_trees_are_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in 1..20 {
            let t = Tree::random(n, &mut rng);
            assert_eq!(t.len(), n);
            // from_parents validates; rebuild to exercise the validator.
            let _ = Tree::from_parents((0..n).map(|j| t.parent(j)).collect());
        }
    }

    #[test]
    fn singleton_tree() {
        let t = Tree::chain(1);
        assert_eq!(t.len(), 1);
        assert!(t.is_leaf(0));
        assert_eq!(t.height(), 0);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cyclic_parents_rejected() {
        let _ = Tree::from_parents(vec![0, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "root")]
    fn non_root_zero_rejected() {
        let _ = Tree::from_parents(vec![1, 0]);
    }
}
