//! Stabilizing tree coloring: a further Theorem-1 design, with a *silent*
//! (terminating) behaviour unlike the perpetual wave protocols.
//!
//! Every non-root node must differ in color from its parent:
//! `R.j = (c.j != c.(P.j))`. The convergence action recolors the node from
//! its parent: `c.j = c.(P.j) → c.j := c.(P.j) + 1 mod C`. There are no
//! closure actions at all — once every constraint holds the program is
//! *silent* (deadlocked inside `S`), the standard shape of stabilizing
//! graph algorithms.

use nonmask::{Design, DesignError};
use nonmask_graph::NodePartition;
use nonmask_program::{ActionId, Domain, Predicate, ProcessId, Program, State, VarId};

use crate::topology::Tree;

/// A stabilizing proper coloring of a rooted [`Tree`].
#[derive(Debug, Clone)]
pub struct TreeColoring {
    tree: Tree,
    program: Program,
    color: Vec<VarId>,
    colors: i64,
    repairs: Vec<(usize, ActionId)>,
}

impl TreeColoring {
    /// Build the protocol with `colors >= 2` available colors.
    ///
    /// # Panics
    ///
    /// Panics if `colors < 2`.
    pub fn new(tree: &Tree, colors: i64) -> Self {
        assert!(
            colors >= 2,
            "proper tree coloring needs at least two colors"
        );
        let n = tree.len();
        let mut b = Program::builder(format!("tree-coloring[{n},C={colors}]"));
        let color: Vec<VarId> = (0..n)
            .map(|j| b.var_of(format!("c.{j}"), Domain::range(0, colors - 1), ProcessId(j)))
            .collect();

        let mut repairs = Vec::new();
        for j in 1..n {
            let p = tree.parent(j);
            let (cj, cp) = (color[j], color[p]);
            let id = b.convergence_action(
                format!("recolor@{j}"),
                [cj, cp],
                [cj],
                move |s| s.get(cj) == s.get(cp),
                move |s| {
                    let v = s.get(cp);
                    s.set(cj, (v + 1) % colors);
                },
            );
            repairs.push((j, id));
        }

        TreeColoring {
            tree: tree.clone(),
            program: b.build(),
            color,
            colors,
            repairs,
        }
    }

    /// The underlying tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The guarded-command program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The number of available colors.
    pub fn colors(&self) -> i64 {
        self.colors
    }

    /// The color variable of node `j`.
    pub fn color_var(&self, j: usize) -> VarId {
        self.color[j]
    }

    /// The recoloring repair at non-root node `j`, if any.
    pub fn recolor_action(&self, j: usize) -> Option<ActionId> {
        self.repairs
            .iter()
            .find(|&&(node, _)| node == j)
            .map(|&(_, id)| id)
    }

    /// The constraint `R.j: c.j != c.(P.j)`.
    ///
    /// # Panics
    ///
    /// Panics for the root or out-of-range nodes.
    pub fn constraint(&self, j: usize) -> Predicate {
        assert!(
            j > 0 && j < self.tree.len(),
            "R.j is defined for non-root nodes"
        );
        let p = self.tree.parent(j);
        let (cj, cp) = (self.color[j], self.color[p]);
        Predicate::new(format!("R.{j}"), [cj, cp], move |s| s.get(cj) != s.get(cp))
    }

    /// The invariant: a proper coloring.
    pub fn invariant(&self) -> Predicate {
        let rs: Vec<Predicate> = (1..self.tree.len()).map(|j| self.constraint(j)).collect();
        Predicate::all("proper-coloring", rs.iter()).named("proper-coloring")
    }

    /// Whether `state` is a proper coloring.
    pub fn is_proper(&self, state: &State) -> bool {
        (1..self.tree.len())
            .all(|j| state.get(self.color[j]) != state.get(self.color[self.tree.parent(j)]))
    }

    /// The complete stabilizing [`Design`].
    ///
    /// # Errors
    ///
    /// Mirrors [`Design::builder`] validation.
    pub fn design(&self) -> Result<Design, DesignError> {
        let mut builder = Design::builder(self.program.clone())
            .partition(NodePartition::by_process(&self.program));
        for &(j, action) in &self.repairs {
            builder = builder.constraint(format!("R.{j}"), self.constraint(j), action);
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask::TheoremOutcome;
    use nonmask_checker::{worst_case_moves, StateSpace};
    use nonmask_graph::Shape;
    use nonmask_program::scheduler::Random;
    use nonmask_program::{Executor, RunConfig, StopReason};

    #[test]
    fn theorem1_applies_and_design_is_tolerant() {
        for colors in [2i64, 3] {
            let tc = TreeColoring::new(&Tree::binary(5), colors);
            let design = tc.design().unwrap();
            assert_eq!(design.constraint_graph().unwrap().shape(), Shape::OutTree);
            let report = design.verify().unwrap();
            assert!(matches!(report.theorem, TheoremOutcome::Theorem1 { .. }));
            assert!(report.is_tolerant(), "C={colors}: {}", report.summary());
        }
    }

    #[test]
    fn silent_once_proper() {
        // After stabilization no action is enabled: the protocol is
        // silent, and deadlock-inside-S is fine.
        let tc = TreeColoring::new(&Tree::chain(4), 2);
        let all_same = tc.program().state_from([1, 1, 1, 1]).unwrap();
        assert!(!tc.is_proper(&all_same));
        let report = Executor::new(tc.program()).run(
            all_same,
            &mut Random::seeded(1),
            &RunConfig::default().max_steps(1_000),
        );
        assert_eq!(report.stop, StopReason::Deadlock);
        assert!(tc.is_proper(&report.final_state));
    }

    #[test]
    fn worst_case_moves_bounded_by_tree_size() {
        // Each node recolors at most `depth` times (out-tree rank
        // argument); in particular the bound is finite.
        let tc = TreeColoring::new(&Tree::binary(6), 3);
        let space = StateSpace::enumerate(tc.program()).unwrap();
        let bound = worst_case_moves(
            &space,
            tc.program(),
            &Predicate::always_true(),
            &tc.invariant(),
        )
        .unwrap()
        .expect("finite");
        let rank_sum: u64 = (1..6).map(|j| tc.tree().depth(j) as u64).sum();
        assert!(bound <= rank_sum, "bound {bound} <= Σ depths {rank_sum}");
    }

    #[test]
    fn two_colors_alternate_levels() {
        let tc = TreeColoring::new(&Tree::chain(5), 2);
        let report = Executor::new(tc.program()).run(
            tc.program().state_from([0, 0, 0, 0, 0]).unwrap(),
            &mut Random::seeded(2),
            &RunConfig::default().max_steps(1_000),
        );
        let final_state = report.final_state;
        for j in 0..5 {
            assert_eq!(
                final_state.get(tc.color_var(j)),
                (tc.tree().depth(j) % 2) as i64,
                "chain 2-coloring alternates with depth"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least two colors")]
    fn one_color_rejected() {
        let _ = TreeColoring::new(&Tree::chain(2), 1);
    }

    #[test]
    fn accessors() {
        let tc = TreeColoring::new(&Tree::star(4), 3);
        assert_eq!(tc.colors(), 3);
        assert_eq!(tc.tree().len(), 4);
        let proper = tc.program().state_from([0, 1, 2, 1]).unwrap();
        assert!(tc.is_proper(&proper));
        assert!(tc.invariant().holds(&proper));
        assert!(tc.constraint(1).holds(&proper));
    }
}
