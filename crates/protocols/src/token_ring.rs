//! Stabilizing token rings (§7.1; the program is due to Dijkstra).
//!
//! `n` nodes `0 .. n-1` form a ring; node `j`'s successor is `j+1 mod n`.
//! Node `0` (the "root", Dijkstra's bottom machine) is privileged when
//! `x.0 = x.(n-1)`; node `j > 0` is privileged when `x.j ≠ x.(j-1)`.
//! Passing the privilege executes
//!
//! ```text
//! x.0 = x.(n-1)  →  x.0 := x.0 + 1          (root)
//! x.j ≠ x.(j-1)  →  x.j := x.(j-1)          (j > 0; merged closure/convergence)
//! ```
//!
//! Three flavours are provided:
//!
//! - [`TokenRing::new`] — the executable **mod-K** protocol (Dijkstra's
//!   K-state machine). Its invariant is *exactly one node is privileged*;
//!   the model checker verifies closure and convergence exhaustively.
//! - [`TokenRing::unbounded`] — the paper's literal program over unbounded
//!   integers, for simulation (unbounded state spaces cannot be
//!   enumerated).
//! - [`windowed_design`] — the paper's **layered design** made mechanical:
//!   counters live in a bounded window `0..=m` (the root stalls at the
//!   cap, a checker-window artifact documented in DESIGN.md), layer 1
//!   holds the constraints `x.(j-1) ≥ x.j`, layer 2 the constraints
//!   `x.(j-1) = x.j`, and Theorem 3 validates the convergence actions.

use nonmask::{Design, DesignError};
use nonmask_graph::{ConstraintRef, Layering, NodePartition};
use nonmask_program::{ActionId, Domain, Predicate, ProcessId, Program, State, VarId};

/// Dijkstra's K-state token ring over `n` nodes (bounded counters).
#[derive(Debug, Clone)]
pub struct TokenRing {
    n: usize,
    k: i64,
    program: Program,
    x: Vec<VarId>,
    actions: Vec<ActionId>,
}

impl TokenRing {
    /// The mod-`k` protocol over `n` nodes.
    ///
    /// Dijkstra's theorem needs `k >= n` for stabilization from arbitrary
    /// states; smaller `k` is accepted (experiments probe the crossover)
    /// but not guaranteed to stabilize.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `k < 2`.
    pub fn new(n: usize, k: i64) -> Self {
        assert!(n >= 2, "a ring needs at least two nodes");
        assert!(k >= 2, "counters need at least two values");
        let mut b = Program::builder(format!("token-ring[n={n},k={k}]"));
        let x: Vec<VarId> = (0..n)
            .map(|j| b.var_of(format!("x.{j}"), Domain::range(0, k - 1), ProcessId(j)))
            .collect();

        let mut actions = Vec::with_capacity(n);
        let (x0, xl) = (x[0], x[n - 1]);
        actions.push(b.combined_action(
            "pass@0",
            [x0, xl],
            [x0],
            move |s| s.get(x0) == s.get(xl),
            move |s| {
                let v = s.get(x0);
                s.set(x0, (v + 1) % k);
            },
        ));
        for j in 1..n {
            let (xj, xp) = (x[j], x[j - 1]);
            actions.push(b.combined_action(
                format!("pass@{j}"),
                [xj, xp],
                [xj],
                move |s| s.get(xj) != s.get(xp),
                move |s| {
                    let v = s.get(xp);
                    s.set(xj, v);
                },
            ));
        }

        TokenRing {
            n,
            k,
            program: b.build(),
            x,
            actions,
        }
    }

    /// A deliberately broken mod-`k` ring for the conformance harness's
    /// planted-bug self-test (cargo feature `planted-bug`): identical to
    /// [`TokenRing::new`] except the root passes the privilege by
    /// incrementing its counter by **two** — the off-by-one a differential
    /// harness must catch. Variable and action layout match the reference
    /// exactly, so views recorded while executing the mutant can be
    /// validated against the reference program's transition relation.
    #[cfg(feature = "planted-bug")]
    pub fn planted_mutant(n: usize, k: i64) -> Self {
        assert!(n >= 2, "a ring needs at least two nodes");
        assert!(k >= 2, "counters need at least two values");
        let mut b = Program::builder(format!("token-ring-mutant[n={n},k={k}]"));
        let x: Vec<VarId> = (0..n)
            .map(|j| b.var_of(format!("x.{j}"), Domain::range(0, k - 1), ProcessId(j)))
            .collect();

        let mut actions = Vec::with_capacity(n);
        let (x0, xl) = (x[0], x[n - 1]);
        actions.push(b.combined_action(
            "pass@0",
            [x0, xl],
            [x0],
            move |s| s.get(x0) == s.get(xl),
            move |s| {
                let v = s.get(x0);
                // The planted bug: += 2 instead of += 1.
                s.set(x0, (v + 2) % k);
            },
        ));
        for j in 1..n {
            let (xj, xp) = (x[j], x[j - 1]);
            actions.push(b.combined_action(
                format!("pass@{j}"),
                [xj, xp],
                [xj],
                move |s| s.get(xj) != s.get(xp),
                move |s| {
                    let v = s.get(xp);
                    s.set(xj, v);
                },
            ));
        }

        TokenRing {
            n,
            k,
            program: b.build(),
            x,
            actions,
        }
    }

    /// The paper's literal unbounded-counter program (for simulation; its
    /// state space cannot be enumerated).
    pub fn unbounded(n: usize) -> Self {
        assert!(n >= 2, "a ring needs at least two nodes");
        let mut b = Program::builder(format!("token-ring-unbounded[n={n}]"));
        let x: Vec<VarId> = (0..n)
            .map(|j| b.var_of(format!("x.{j}"), Domain::Unbounded, ProcessId(j)))
            .collect();
        let mut actions = Vec::with_capacity(n);
        let (x0, xl) = (x[0], x[n - 1]);
        actions.push(b.combined_action(
            "pass@0",
            [x0, xl],
            [x0],
            move |s| s.get(x0) == s.get(xl),
            move |s| {
                let v = s.get(x0);
                s.set(x0, v + 1);
            },
        ));
        for j in 1..n {
            let (xj, xp) = (x[j], x[j - 1]);
            actions.push(b.combined_action(
                format!("pass@{j}"),
                [xj, xp],
                [xj],
                move |s| s.get(xj) != s.get(xp),
                move |s| {
                    let v = s.get(xp);
                    s.set(xj, v);
                },
            ));
        }
        TokenRing {
            n,
            k: i64::MAX,
            program: b.build(),
            x,
            actions,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never empty (`n >= 2`); provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The counter modulus (`i64::MAX` for the unbounded flavour).
    pub fn modulus(&self) -> i64 {
        self.k
    }

    /// The guarded-command program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The counter variable of node `j`.
    pub fn counter_var(&self, j: usize) -> VarId {
        self.x[j]
    }

    /// The privilege-passing action of node `j`.
    pub fn pass_action(&self, j: usize) -> ActionId {
        self.actions[j]
    }

    /// Whether node `j` is privileged at `state`.
    pub fn is_privileged(&self, state: &State, j: usize) -> bool {
        if j == 0 {
            state.get(self.x[0]) == state.get(self.x[self.n - 1])
        } else {
            state.get(self.x[j]) != state.get(self.x[j - 1])
        }
    }

    /// The privileged nodes at `state`, in ring order.
    pub fn privileges(&self, state: &State) -> Vec<usize> {
        (0..self.n)
            .filter(|&j| self.is_privileged(state, j))
            .collect()
    }

    /// The token holder, if exactly one node is privileged.
    pub fn token_holder(&self, state: &State) -> Option<usize> {
        let p = self.privileges(state);
        (p.len() == 1).then(|| p[0])
    }

    /// The invariant: exactly one node is privileged (requirement (i) of
    /// the specification).
    pub fn invariant(&self) -> Predicate {
        let xs = self.x.clone();
        let n = self.n;
        Predicate::new("one-privilege", self.x.iter().copied(), move |s| {
            let mut count = 0;
            if s.get(xs[0]) == s.get(xs[n - 1]) {
                count += 1;
            }
            for j in 1..n {
                if s.get(xs[j]) != s.get(xs[j - 1]) {
                    count += 1;
                }
            }
            count == 1
        })
    }

    /// The all-zero legitimate state (root privileged).
    pub fn initial_state(&self) -> State {
        State::zeroed(self.n)
    }
}

/// Handles into the program built by [`windowed_design`].
#[derive(Debug, Clone)]
pub struct WindowedTokenRing {
    /// The counter variables `x.0 .. x.(n-1)`.
    pub x: Vec<VarId>,
    /// The root's increment action (closure).
    pub root: ActionId,
    /// Layer-1 repairs (`x.(j-1) < x.j → x.j := x.(j-1)`), `j = 1..n`.
    pub layer1: Vec<ActionId>,
    /// Layer-2 merged actions (`x.(j-1) > x.j → x.j := x.(j-1)`), `j = 1..n`.
    pub layer2: Vec<ActionId>,
}

/// The paper's layered token-ring design over counters in `0..=m`
/// (Section 7.1 made mechanical).
///
/// The invariant is the paper's
/// `S = (∀ j : x.(j-1) ≥ x.j) ∧ (x.0 = x.(n-1) ∨ x.0 = x.(n-1) + 1)`,
/// supplied via [`nonmask::DesignBuilder::invariant_override`] because the
/// second-layer constraints `x.(j-1) = x.j` imply — rather than equal —
/// the second conjunct. The root's increment carries the window guard
/// `x.0 < m`, so runs eventually park at the all-equal-`m` state (which
/// satisfies `S`); this cap is what makes the state space finite and the
/// theorem obligations checkable.
///
/// # Errors
///
/// Mirrors [`Design::builder`] validation (cannot fail for these inputs).
///
/// # Panics
///
/// Panics if `n < 2` or `m < 1`.
pub fn windowed_design(n: usize, m: i64) -> Result<(Design, WindowedTokenRing), DesignError> {
    assert!(n >= 2, "a ring needs at least two nodes");
    assert!(m >= 1, "the window needs at least two values");
    let mut b = Program::builder(format!("token-ring-windowed[n={n},m={m}]"));
    let x: Vec<VarId> = (0..n)
        .map(|j| b.var_of(format!("x.{j}"), Domain::range(0, m), ProcessId(j)))
        .collect();

    let (x0, xl) = (x[0], x[n - 1]);
    let root = b.closure_action(
        "root-increment",
        [x0, xl],
        [x0],
        move |s| s.get(x0) == s.get(xl) && s.get(x0) < m,
        move |s| {
            let v = s.get(x0);
            s.set(x0, v + 1);
        },
    );

    let mut layer1 = Vec::new();
    let mut layer2 = Vec::new();
    for j in 1..n {
        let (xj, xp) = (x[j], x[j - 1]);
        layer1.push(b.convergence_action(
            format!("repair-ge@{j}"),
            [xj, xp],
            [xj],
            move |s| s.get(xp) < s.get(xj),
            move |s| {
                let v = s.get(xp);
                s.set(xj, v);
            },
        ));
        layer2.push(b.combined_action(
            format!("copy@{j}"),
            [xj, xp],
            [xj],
            move |s| s.get(xp) > s.get(xj),
            move |s| {
                let v = s.get(xp);
                s.set(xj, v);
            },
        ));
    }
    let program = b.build();

    // S: non-increasing along the path, with x.0 ∈ {x.(n-1), x.(n-1)+1}.
    let xs = x.clone();
    let invariant = Predicate::new("S", x.iter().copied(), move |s| {
        (1..n).all(|j| s.get(xs[j - 1]) >= s.get(xs[j]))
            && (s.get(xs[0]) == s.get(xs[n - 1]) || s.get(xs[0]) == s.get(xs[n - 1]) + 1)
    });

    let partition = NodePartition::by_process(&program);
    let mut builder = Design::builder(program)
        .partition(partition)
        .invariant_override(invariant);
    for j in 1..n {
        let (xj, xp) = (x[j], x[j - 1]);
        builder = builder.constraint(
            format!("x.{}>=x.{j}", j - 1),
            Predicate::new(format!("x.{}>=x.{j}", j - 1), [xp, xj], move |s| {
                s.get(xp) >= s.get(xj)
            }),
            layer1[j - 1],
        );
    }
    for j in 1..n {
        let (xj, xp) = (x[j], x[j - 1]);
        builder = builder.constraint(
            format!("x.{}=x.{j}", j - 1),
            Predicate::new(format!("x.{}=x.{j}", j - 1), [xp, xj], move |s| {
                s.get(xp) == s.get(xj)
            }),
            layer2[j - 1],
        );
    }
    let layering = Layering::new([
        (0..n - 1).map(ConstraintRef).collect::<Vec<_>>(),
        (n - 1..2 * (n - 1)).map(ConstraintRef).collect::<Vec<_>>(),
    ])
    .expect("disjoint, nonempty layers");
    let design = builder.layering(layering).build()?;
    Ok((
        design,
        WindowedTokenRing {
            x,
            root,
            layer1,
            layer2,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_checker::{check_convergence, worst_case_moves, Fairness, StateSpace};
    use nonmask_program::scheduler::RoundRobin;
    use nonmask_program::{Executor, RunConfig};

    #[test]
    fn privileges_and_invariant_agree() {
        let ring = TokenRing::new(4, 4);
        let s0 = ring.initial_state();
        assert_eq!(ring.privileges(&s0), vec![0]);
        assert_eq!(ring.token_holder(&s0), Some(0));
        assert!(ring.invariant().holds(&s0));

        let bad = ring.program().state_from([0, 1, 0, 2]).unwrap();
        assert!(ring.privileges(&bad).len() > 1);
        assert!(!ring.invariant().holds(&bad));
        assert_eq!(ring.token_holder(&bad), None);
    }

    #[test]
    fn stabilizes_for_k_at_least_n() {
        for (n, k) in [(3, 3), (3, 4), (4, 4)] {
            let ring = TokenRing::new(n, k as i64);
            let space = StateSpace::enumerate(ring.program()).unwrap();
            let s = ring.invariant();
            let t = Predicate::always_true();
            for fairness in [Fairness::WeaklyFair, Fairness::Unfair] {
                let r = check_convergence(&space, ring.program(), &t, &s, fairness).unwrap();
                assert!(r.converges(), "n={n} k={k} {fairness}: {r:?}");
            }
            assert!(
                worst_case_moves(&space, ring.program(), &t, &s)
                    .unwrap()
                    .is_some(),
                "n={n} k={k}: finite convergence bound"
            );
        }
    }

    #[test]
    fn invariant_is_closed() {
        let ring = TokenRing::new(4, 4);
        let space = StateSpace::enumerate(ring.program()).unwrap();
        let s = ring.invariant();
        assert!(nonmask_checker::is_closed(&space, ring.program(), &s)
            .unwrap()
            .is_none());
    }

    #[test]
    fn exactly_one_action_enabled_in_legitimate_states() {
        // In S, the privileged node's action is the only enabled one:
        // requirement (i) of the specification.
        let ring = TokenRing::new(4, 4);
        let space = StateSpace::enumerate(ring.program()).unwrap();
        let s = ring.invariant();
        for id in space.satisfying(&s).unwrap() {
            let st = space.state(id);
            let enabled = ring.program().enabled_actions(&st);
            assert_eq!(enabled.len(), 1);
            let holder = ring.token_holder(&st).unwrap();
            assert_eq!(enabled[0], ring.pass_action(holder));
        }
    }

    #[test]
    fn token_circulates_in_order() {
        // Requirement (ii): each privileged node eventually yields to its
        // successor.
        let ring = TokenRing::new(5, 5);
        let mut state = ring.initial_state();
        let mut holders = Vec::new();
        for _ in 0..10 {
            let h = ring.token_holder(&state).unwrap();
            holders.push(h);
            let enabled = ring.program().enabled_actions(&state);
            ring.program().action(enabled[0]).apply(&mut state);
        }
        assert_eq!(holders, vec![0, 1, 2, 3, 4, 0, 1, 2, 3, 4]);
    }

    #[test]
    fn recovers_after_corruption() {
        let ring = TokenRing::new(5, 5);
        let corrupt = ring.program().state_from([3, 1, 4, 1, 0]).unwrap();
        assert!(!ring.invariant().holds(&corrupt));
        let report = Executor::new(ring.program()).run(
            corrupt,
            &mut RoundRobin::new(),
            &RunConfig::default().stop_when(&ring.invariant(), 1),
        );
        assert!(report.stop.is_stabilized());
    }

    #[test]
    fn small_k_can_fail() {
        // With k << n the protocol is not guaranteed to stabilize; for
        // n=4, k=2 the checker finds a divergence.
        let ring = TokenRing::new(4, 2);
        let space = StateSpace::enumerate(ring.program()).unwrap();
        let r = check_convergence(
            &space,
            ring.program(),
            &Predicate::always_true(),
            &ring.invariant(),
            Fairness::WeaklyFair,
        )
        .unwrap();
        assert!(!r.converges(), "k=2 < n=4 should admit divergence: {r:?}");
    }

    #[test]
    fn windowed_design_is_theorem3() {
        use nonmask::TheoremOutcome;
        use nonmask_graph::Shape;
        let (design, handles) = windowed_design(4, 3).unwrap();
        let graph = design.constraint_graph().unwrap();
        // Layer 1 and layer 2 edges overlap on the same path: two parallel
        // edges per node pair — not an out-tree, and per-layer analysis is
        // what the paper prescribes.
        assert_eq!(graph.edge_count(), 6);
        assert_ne!(graph.shape(), Shape::OutTree);
        let report = design.verify().unwrap();
        assert!(
            matches!(report.theorem, TheoremOutcome::Theorem3 { layers: 2 }),
            "expected Theorem 3, got {:?}",
            report.theorem
        );
        assert!(report.is_tolerant(), "{}", report.summary());
        assert!(report.convergence_unfair.converges(), "Section 8 remark");
        assert_eq!(handles.layer1.len(), 3);
        assert_eq!(handles.layer2.len(), 3);
    }

    #[test]
    fn windowed_invariant_matches_paper_shape() {
        let (design, handles) = windowed_design(3, 3).unwrap();
        let s = design.invariant();
        let p = design.program();
        let mk = |vals: [i64; 3]| {
            let mut st = p.min_state();
            for (j, v) in vals.into_iter().enumerate() {
                st.set(handles.x[j], v);
            }
            st
        };
        assert!(s.holds(&mk([2, 2, 2])), "all equal: root privileged");
        assert!(s.holds(&mk([3, 3, 2])), "descent at node 2, x.0 = x.2 + 1");
        assert!(s.holds(&mk([3, 2, 2])), "descent at node 1, x.0 = x.2 + 1");
        assert!(
            !s.holds(&mk([1, 2, 2])),
            "increasing violates the first conjunct"
        );
        assert!(
            !s.holds(&mk([3, 2, 1])),
            "x.0 = x.2 + 2 violates the second conjunct"
        );
        assert!(
            !s.holds(&mk([3, 3, 1])),
            "gap of two violates the second conjunct"
        );
    }

    #[test]
    fn unbounded_flavour_runs() {
        let ring = TokenRing::unbounded(4);
        assert!(!ring.program().is_bounded());
        let mut state = ring.initial_state();
        for _ in 0..20 {
            let enabled = ring.program().enabled_actions(&state);
            assert_eq!(enabled.len(), 1, "one privilege in legitimate states");
            ring.program().action(enabled[0]).apply(&mut state);
        }
        // After 20 steps of a 4-ring the root has incremented 5 times.
        assert_eq!(state.get(ring.counter_var(0)), 5);
    }
}
