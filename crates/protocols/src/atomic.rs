//! Stabilizing atomic actions (named in the paper's abstract; the worked
//! example appears only in the unpublished full version — see DESIGN.md's
//! substitution note).
//!
//! We design, with the paper's method, a lock-based atomic-action protocol
//! on a ring: process `j` executes its atomic action (*engages*) only
//! while holding both adjacent locks (`f.(j-1)` and `f.j`, dining-
//! philosophers style). Each lock `f.j`, stored with process `j`, is
//! `Free`, held by its left owner (`Left`, process `j`), or held by its
//! right owner (`Right`, process `j+1`).
//!
//! The invariant is the conjunction of per-process constraints
//!
//! ```text
//! c.j  =  pc.j = Engaged  ⇒  f.(j-1) = Right ∧ f.j = Left
//! ```
//!
//! (an engaged process holds both its locks — which also gives neighbour
//! mutual exclusion: adjacent processes would need the shared lock in two
//! states at once). Faults may corrupt program counters and lock fields
//! arbitrarily; the convergence action for `c.j` *demotes* `j` back to the
//! acquiring phase:
//!
//! ```text
//! ¬c.j  →  pc.j := Waiting
//! ```
//!
//! Each repair writes only node `j` and reads nodes `j-1` and `j`, so the
//! constraint-graph edges `j-1 → j` form a ring — a **cyclic** graph.
//! Splitting the constraints into even/odd layers makes each layer's graph
//! self-looping, and Theorem 3 validates the design (`E10`).
//!
//! Unlike the diffusing computation and the token ring, this protocol
//! *needs* weak fairness to converge: while `¬c.j` holds nothing but the
//! repair writes `pc.j`, so the repair is continuously enabled, but an
//! unfair daemon can run the other processes' closure actions forever
//! (experiment E8 shows the contrast).

use nonmask::{Design, DesignError};
use nonmask_graph::{ConstraintRef, Layering, NodePartition};
use nonmask_program::{ActionId, Domain, Predicate, ProcessId, Program, State, VarId};

/// Phase values of a process.
pub mod phase {
    /// Not interested in running its atomic action.
    pub const IDLE: i64 = 0;
    /// Wants to run its atomic action; acquiring locks.
    pub const WAITING: i64 = 1;
    /// Running its atomic action (must hold both locks).
    pub const ENGAGED: i64 = 2;
}

/// Lock-field values of `f.j` (the lock between `j` and `j+1`).
pub mod lock {
    /// Held by nobody.
    pub const FREE: i64 = 0;
    /// Held by its left owner, process `j`.
    pub const LEFT: i64 = 1;
    /// Held by its right owner, process `j+1`.
    pub const RIGHT: i64 = 2;
}

/// The stabilizing atomic-action protocol over a ring of `n` processes.
#[derive(Debug, Clone)]
pub struct AtomicActions {
    n: usize,
    program: Program,
    pc: Vec<VarId>,
    f: Vec<VarId>,
    repairs: Vec<ActionId>,
}

impl AtomicActions {
    /// Build the protocol for `n` processes.
    ///
    /// Lock acquisition is asymmetric at process `0` (it grabs its left
    /// lock first) to break the circular-wait deadlock, as usual for
    /// dining philosophers.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "a ring needs at least two processes");
        let mut b = Program::builder(format!("atomic-actions[{n}]"));
        let pc: Vec<VarId> = (0..n)
            .map(|j| {
                b.var_of(
                    format!("pc.{j}"),
                    Domain::enumeration(["idle", "waiting", "engaged"]),
                    ProcessId(j),
                )
            })
            .collect();
        let f: Vec<VarId> = (0..n)
            .map(|j| {
                b.var_of(
                    format!("f.{j}"),
                    Domain::enumeration(["free", "left", "right"]),
                    ProcessId(j),
                )
            })
            .collect();

        let left_of = |j: usize| (j + n - 1) % n;

        for j in 0..n {
            let pcj = pc[j];
            let fr = f[j]; // right lock of j (f.j, stored at j)
            let fl = f[left_of(j)]; // left lock of j (f.(j-1), stored at j-1)

            // Want to run the atomic action.
            b.closure_action(
                format!("request@{j}"),
                [pcj],
                [pcj],
                move |s| s.get(pcj) == phase::IDLE,
                move |s| s.set(pcj, phase::WAITING),
            );
            // Grab the right lock (f.j := Left means "held by j").
            b.closure_action(
                format!("grab-right@{j}"),
                [pcj, fr],
                [fr],
                move |s| s.get(pcj) == phase::WAITING && s.get(fr) == lock::FREE,
                move |s| s.set(fr, lock::LEFT),
            );
            // Grab the left lock (f.(j-1) := Right means "held by j").
            b.closure_action(
                format!("grab-left@{j}"),
                [pcj, fl],
                [fl],
                move |s| s.get(pcj) == phase::WAITING && s.get(fl) == lock::FREE,
                move |s| s.set(fl, lock::RIGHT),
            );
            // Engage: both locks held.
            b.closure_action(
                format!("engage@{j}"),
                [pcj, fl, fr],
                [pcj],
                move |s| {
                    s.get(pcj) == phase::WAITING
                        && s.get(fl) == lock::RIGHT
                        && s.get(fr) == lock::LEFT
                },
                move |s| s.set(pcj, phase::ENGAGED),
            );
            // Complete the atomic action and release both locks — only
            // from a state where the locks are properly held (improperly
            // engaged processes are handled by the repair).
            b.closure_action(
                format!("release@{j}"),
                [pcj, fl, fr],
                [pcj, fl, fr],
                move |s| {
                    s.get(pcj) == phase::ENGAGED
                        && s.get(fl) == lock::RIGHT
                        && s.get(fr) == lock::LEFT
                },
                move |s| {
                    s.set(pcj, phase::IDLE);
                    s.set(fl, lock::FREE);
                    s.set(fr, lock::FREE);
                },
            );
        }

        // Convergence actions: demote improperly engaged processes.
        let mut repairs = Vec::with_capacity(n);
        for j in 0..n {
            let pcj = pc[j];
            let fr = f[j];
            let fl = f[left_of(j)];
            repairs.push(b.convergence_action(
                format!("repair@{j}"),
                [pcj, fl, fr],
                [pcj],
                move |s| {
                    s.get(pcj) == phase::ENGAGED
                        && !(s.get(fl) == lock::RIGHT && s.get(fr) == lock::LEFT)
                },
                move |s| s.set(pcj, phase::WAITING),
            ));
        }

        AtomicActions {
            n,
            program: b.build(),
            pc,
            f,
            repairs,
        }
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never empty (`n >= 2`); provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The guarded-command program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The phase variable of process `j`.
    pub fn phase_var(&self, j: usize) -> VarId {
        self.pc[j]
    }

    /// The lock variable `f.j` (between `j` and `j+1`).
    pub fn lock_var(&self, j: usize) -> VarId {
        self.f[j]
    }

    /// The repair action of process `j`.
    pub fn repair_action(&self, j: usize) -> ActionId {
        self.repairs[j]
    }

    /// The constraint `c.j`: an engaged process holds both its locks.
    pub fn constraint(&self, j: usize) -> Predicate {
        let pcj = self.pc[j];
        let fr = self.f[j];
        let fl = self.f[(j + self.n - 1) % self.n];
        Predicate::new(format!("c.{j}"), [pcj, fl, fr], move |s| {
            s.get(pcj) != phase::ENGAGED || (s.get(fl) == lock::RIGHT && s.get(fr) == lock::LEFT)
        })
    }

    /// The invariant `S = (∀ j :: c.j)`.
    pub fn invariant(&self) -> Predicate {
        let cs: Vec<Predicate> = (0..self.n).map(|j| self.constraint(j)).collect();
        Predicate::all("S", cs.iter()).named("S")
    }

    /// Whether processes `j` and `j+1` are ever simultaneously engaged at
    /// `state` — within `S` this is impossible (mutual exclusion).
    pub fn neighbours_engaged(&self, state: &State) -> bool {
        (0..self.n).any(|j| {
            state.get(self.pc[j]) == phase::ENGAGED
                && state.get(self.pc[(j + 1) % self.n]) == phase::ENGAGED
        })
    }

    /// The all-idle, all-free initial state.
    pub fn initial_state(&self) -> State {
        State::zeroed(2 * self.n)
    }

    /// The complete [`Design`]: constraints `c.j`, ring-shaped constraint
    /// graph, even/odd layering for Theorem 3.
    ///
    /// The even/odd split needs `n` even to avoid two same-layer
    /// constraints sharing a node at the ring seam.
    ///
    /// # Errors
    ///
    /// Mirrors [`Design::builder`] validation.
    ///
    /// # Panics
    ///
    /// Panics if `n` is odd (the layering is only clean for even rings;
    /// the *protocol* works for any `n ≥ 2` — verify odd rings against
    /// [`AtomicActions::invariant`] with the checker directly).
    pub fn design(&self) -> Result<Design, DesignError> {
        assert!(
            self.n.is_multiple_of(2),
            "even/odd layering needs an even ring"
        );
        let partition = NodePartition::by_process(&self.program);
        let mut builder = Design::builder(self.program.clone()).partition(partition);
        for j in 0..self.n {
            builder = builder.constraint(format!("c.{j}"), self.constraint(j), self.repairs[j]);
        }
        let evens: Vec<ConstraintRef> = (0..self.n).step_by(2).map(ConstraintRef).collect();
        let odds: Vec<ConstraintRef> = (1..self.n).step_by(2).map(ConstraintRef).collect();
        let layering = Layering::new([evens, odds]).expect("disjoint, nonempty layers");
        builder.layering(layering).build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask::TheoremOutcome;
    use nonmask_checker::{check_convergence, ConvergenceResult, Fairness, StateSpace};
    use nonmask_graph::Shape;
    use nonmask_program::scheduler::Random;
    use nonmask_program::{Executor, RunConfig};

    #[test]
    fn graph_is_a_ring_hence_cyclic() {
        let aa = AtomicActions::new(4);
        let design = aa.design().unwrap();
        let graph = design.constraint_graph().unwrap();
        assert_eq!(graph.node_count(), 4);
        assert_eq!(graph.edge_count(), 4);
        assert_eq!(graph.shape(), Shape::Cyclic);
    }

    #[test]
    fn theorem3_applies_with_even_odd_layers() {
        let aa = AtomicActions::new(4);
        let design = aa.design().unwrap();
        let report = design.verify().unwrap();
        assert!(
            matches!(report.theorem, TheoremOutcome::Theorem3 { layers: 2 }),
            "expected Theorem 3, got {:?}",
            report.theorem
        );
        assert!(report.is_tolerant(), "{}", report.summary());
        assert!(report.is_stabilizing());
    }

    #[test]
    fn needs_fairness_unlike_the_other_protocols() {
        // Under an unfair daemon the other processes' closure actions can
        // run forever while an improperly-engaged process waits for its
        // repair.
        let aa = AtomicActions::new(4);
        let space = StateSpace::enumerate(aa.program()).unwrap();
        let r = check_convergence(
            &space,
            aa.program(),
            &Predicate::always_true(),
            &aa.invariant(),
            Fairness::Unfair,
        )
        .unwrap();
        assert!(
            matches!(r, ConvergenceResult::Divergence { .. }),
            "unfair daemon diverges: {r:?}"
        );
    }

    #[test]
    fn mutual_exclusion_inside_invariant() {
        let aa = AtomicActions::new(4);
        let space = StateSpace::enumerate(aa.program()).unwrap();
        let s = aa.invariant();
        for id in space.satisfying(&s).unwrap() {
            assert!(
                !aa.neighbours_engaged(&space.state(id)),
                "S implies neighbour mutual exclusion"
            );
        }
    }

    #[test]
    fn closure_from_initial_state() {
        // Fault-free runs never leave S.
        let aa = AtomicActions::new(4);
        let s = aa.invariant();
        let report = Executor::new(aa.program()).run(
            aa.initial_state(),
            &mut Random::seeded(7),
            &RunConfig::default().max_steps(2_000).watch(&s),
        );
        assert_eq!(
            report.watch_hits[0], report.steps,
            "S held after every step"
        );
    }

    #[test]
    fn progress_under_fair_scheduling() {
        // Every process engages eventually (no livelock from the initial
        // state under a random daemon).
        let aa = AtomicActions::new(4);
        let mut engaged = [0u64; 4];
        let mut state = aa.initial_state();
        let mut sched = Random::seeded(3);
        let exec = Executor::new(aa.program());
        for _ in 0..4_000 {
            let report = exec.run(
                state.clone(),
                &mut sched,
                &RunConfig::default().max_steps(1),
            );
            state = report.final_state;
            for (j, count) in engaged.iter_mut().enumerate() {
                if state.get(aa.phase_var(j)) == phase::ENGAGED {
                    *count += 1;
                }
            }
        }
        for (j, &count) in engaged.iter().enumerate() {
            assert!(count > 0, "process {j} never engaged");
        }
    }

    #[test]
    fn odd_rings_verified_directly() {
        // The layering needs even rings, but the protocol itself
        // stabilizes for odd sizes too.
        let aa = AtomicActions::new(3);
        let space = StateSpace::enumerate(aa.program()).unwrap();
        let r = check_convergence(
            &space,
            aa.program(),
            &Predicate::always_true(),
            &aa.invariant(),
            Fairness::WeaklyFair,
        )
        .unwrap();
        assert!(r.converges(), "{r:?}");
    }

    #[test]
    #[should_panic(expected = "even ring")]
    fn odd_design_panics() {
        let _ = AtomicActions::new(3).design();
    }

    #[test]
    fn repair_demotes() {
        let aa = AtomicActions::new(2);
        let mut st = aa.initial_state();
        st.set(aa.phase_var(0), phase::ENGAGED); // engaged without locks
        assert!(!aa.invariant().holds(&st));
        assert!(aa.program().action(aa.repair_action(0)).enabled(&st));
        aa.program().action(aa.repair_action(0)).apply(&mut st);
        assert_eq!(st.get(aa.phase_var(0)), phase::WAITING);
        assert!(aa.invariant().holds(&st));
    }
}
