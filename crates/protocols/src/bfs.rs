//! The min+1 BFS distance protocol of Dubois, Masuzawa & Tixeuil
//! (arXiv:1104.4022), over arbitrary connected [`Topology`]s.
//!
//! Every node `j` maintains one variable `d.j`. The root anchors
//! `d.root = 0`; every other correct node repeatedly enforces
//! `d.j = min(cap, 1 + min_{k ∈ N(j)} d.k)` — the classic *min+1* rule,
//! clamped to the bounded domain so transient garbage cannot count to
//! infinity. With no Byzantine nodes this is a silent self-stabilizing
//! BFS: the unique fixpoint assigns every node its hop distance from
//! the root.
//!
//! # Byzantine containment
//!
//! [`MinPlusOne::with_byzantine`] marks a set of nodes *Byzantine*:
//! instead of the min+1 rule they get one *havoc* action per domain
//! value — the checker-side model of "arbitrary, never-healing lies"
//! (the sim and net layers realize the same adversary as seeded lie
//! streams). The quantity this protocol family makes measurable is the
//! *containment radius*: which correct nodes still pin their legitimate
//! distance no matter what the liars say?
//!
//! A correct node `v` is **safe** exactly when
//! `legit(v) <= dist(v, B)`, where `legit(v)` is `v`'s hop distance
//! from the root through correct nodes only and `dist(v, B)` its hop
//! distance to the nearest Byzantine node:
//!
//! - *lower bound*: a lie is still `>= 0`, so any value arriving at `v`
//!   through a liar has climbed to at least `dist(v, B)` by the time it
//!   arrives — it can never undercut `legit(v)`;
//! - *upper bound*: the root's anchor propagates `legit` values along a
//!   correct shortest path (whose nodes are safe whenever `v` is).
//!
//! Unsafe nodes sit closer to a liar than to the root and keep getting
//! dragged below their legitimate distance. [`MinPlusOne::predicted_radius`]
//! is the largest `dist(v, B)` over unsafe correct nodes: beyond that
//! radius every node stabilizes, which is what the checker certifies
//! ([`MinPlusOne::containment_goal`]) and the sim/net journals measure.

use nonmask_graph::Topology;
use nonmask_program::{ActionId, Domain, Predicate, ProcessId, Program, State, VarId};

/// The min+1 BFS protocol over a [`Topology`], optionally with
/// Byzantine (havoc-modelled) nodes.
#[derive(Debug, Clone)]
pub struct MinPlusOne {
    topology: Topology,
    root: usize,
    byzantine: Vec<usize>,
    cap: i64,
    program: Program,
    dist: Vec<VarId>,
    repairs: Vec<(usize, ActionId)>,
}

/// The clamped min+1 target of node `j` given its neighbors' values.
fn min_plus_one(s: &State, neighbors: &[VarId], cap: i64) -> i64 {
    let m = neighbors.iter().map(|&v| s.get(v)).min().unwrap_or(cap - 1);
    (m + 1).min(cap)
}

impl MinPlusOne {
    /// The byzantine-free protocol: every node follows the min+1 rule.
    pub fn new(topology: &Topology, root: usize) -> Self {
        MinPlusOne::with_byzantine(topology, root, &[])
    }

    /// The protocol with the given nodes Byzantine: their min+1 action
    /// is replaced by one havoc action per domain value, modelling an
    /// adversary that may set the variable arbitrarily, forever.
    ///
    /// # Panics
    ///
    /// Panics on an empty or disconnected topology, an out-of-range
    /// root or Byzantine index, or a Byzantine root.
    pub fn with_byzantine(topology: &Topology, root: usize, byzantine: &[usize]) -> Self {
        let n = topology.len();
        assert!(n >= 1, "the protocol needs at least one node");
        assert!(topology.is_connected(), "the topology must be connected");
        assert!(root < n, "root out of range");
        let mut byz: Vec<usize> = byzantine.to_vec();
        byz.sort_unstable();
        byz.dedup();
        assert!(byz.iter().all(|&b| b < n), "Byzantine index out of range");
        assert!(!byz.contains(&root), "the root must not be Byzantine");

        // Legitimate distances are < n; clamping at n leaves one value
        // of headroom so transient garbage has somewhere finite to sit.
        let cap = n as i64;
        let mut b = Program::builder(format!("min-plus-one[n={n},root={root},byz={}]", byz.len()));
        let dist: Vec<VarId> = (0..n)
            .map(|j| b.var_of(format!("d.{j}"), Domain::range(0, cap), ProcessId(j)))
            .collect();

        let mut repairs = Vec::new();
        for j in 0..n {
            if byz.binary_search(&j).is_ok() {
                // One havoc per value: the adversary's repertoire. The
                // guard keeps the transition relation loop-free.
                let dj = dist[j];
                for v in 0..=cap {
                    b.closure_action(
                        format!("lie@{j}={v}"),
                        [dj],
                        [dj],
                        move |s| s.get(dj) != v,
                        move |s| s.set(dj, v),
                    );
                }
            } else if j == root {
                let dr = dist[j];
                let id = b.convergence_action(
                    format!("anchor@{j}"),
                    [dr],
                    [dr],
                    move |s| s.get(dr) != 0,
                    move |s| s.set(dr, 0),
                );
                repairs.push((j, id));
            } else {
                let dj = dist[j];
                let around: Vec<VarId> = topology.neighbors(j).iter().map(|&k| dist[k]).collect();
                let mut reads = around.clone();
                reads.push(dj);
                let (ga, ea) = (around.clone(), around);
                let id = b.convergence_action(
                    format!("minplus1@{j}"),
                    reads.clone(),
                    [dj],
                    move |s| s.get(dj) != min_plus_one(s, &ga, cap),
                    move |s| {
                        let t = min_plus_one(s, &ea, cap);
                        s.set(dj, t);
                    },
                );
                repairs.push((j, id));
            }
        }

        MinPlusOne {
            topology: topology.clone(),
            root,
            byzantine: byz,
            cap,
            program: b.build(),
            dist,
            repairs,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The guarded-command program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// The sorted Byzantine node set.
    pub fn byzantine(&self) -> &[usize] {
        &self.byzantine
    }

    /// The domain cap (distances live in `0..=cap`).
    pub fn cap(&self) -> i64 {
        self.cap
    }

    /// The distance variable of node `j`.
    pub fn dist_var(&self, j: usize) -> VarId {
        self.dist[j]
    }

    /// The min+1 (or anchor) repair action of correct node `j`.
    pub fn fix_action(&self, j: usize) -> Option<ActionId> {
        self.repairs
            .iter()
            .find(|&&(node, _)| node == j)
            .map(|&(_, id)| id)
    }

    /// The local constraint of correct node `j`: the min+1 equation
    /// (`d.root = 0` at the root). Not defined for Byzantine nodes.
    ///
    /// # Panics
    ///
    /// Panics for Byzantine or out-of-range nodes.
    pub fn constraint(&self, j: usize) -> Predicate {
        assert!(j < self.topology.len(), "node out of range");
        assert!(
            self.byzantine.binary_search(&j).is_err(),
            "Byzantine nodes have no constraint"
        );
        let dj = self.dist[j];
        if j == self.root {
            return Predicate::new(format!("c.{j}"), [dj], move |s| s.get(dj) == 0);
        }
        let around: Vec<VarId> = self
            .topology
            .neighbors(j)
            .iter()
            .map(|&k| self.dist[k])
            .collect();
        let mut reads = around.clone();
        reads.push(dj);
        let cap = self.cap;
        Predicate::new(format!("c.{j}"), reads, move |s| {
            s.get(dj) == min_plus_one(s, &around, cap)
        })
    }

    /// The byzantine-free invariant: every local min+1 equation holds
    /// (equivalently, `d.j` is the BFS distance from the root).
    pub fn invariant(&self) -> Predicate {
        let cs: Vec<Predicate> = (0..self.topology.len())
            .filter(|j| self.byzantine.binary_search(j).is_err())
            .map(|j| self.constraint(j))
            .collect();
        Predicate::all("bfs-distances", cs.iter()).named("bfs-distances")
    }

    /// Hop distance of every node to the nearest Byzantine node
    /// ([`Topology::INFINITY`] when there are none).
    pub fn distance_to_byzantine(&self) -> Vec<u64> {
        if self.byzantine.is_empty() {
            vec![Topology::INFINITY; self.topology.len()]
        } else {
            self.topology.distances_from(&self.byzantine)
        }
    }

    /// The legitimate distance of every node: its hop distance from the
    /// root through *correct* nodes only. `None` for Byzantine nodes
    /// and for correct nodes cut off from the root by the liars.
    pub fn legit_distances(&self) -> Vec<Option<u64>> {
        let n = self.topology.len();
        let mut dist = vec![None; n];
        let mut queue = std::collections::VecDeque::new();
        dist[self.root] = Some(0u64);
        queue.push_back(self.root);
        while let Some(v) = queue.pop_front() {
            let dv = dist[v].unwrap();
            for &w in self.topology.neighbors(v) {
                if dist[w].is_none() && self.byzantine.binary_search(&w).is_err() {
                    dist[w] = Some(dv + 1);
                    queue.push_back(w);
                }
            }
        }
        for &b in &self.byzantine {
            dist[b] = None;
        }
        dist
    }

    /// Whether each node is *safe*: correct, reachable from the root
    /// through correct nodes, and no closer to a liar than to the root
    /// (`legit(v) <= dist(v, B)`). Safe nodes pin their legitimate
    /// distance under any Byzantine behaviour.
    pub fn safe_set(&self) -> Vec<bool> {
        let legit = self.legit_distances();
        let to_byz = self.distance_to_byzantine();
        (0..self.topology.len())
            .map(|v| matches!(legit[v], Some(l) if l <= to_byz[v]))
            .collect()
    }

    /// The predicted containment radius: the largest distance-to-liar
    /// over correct nodes that are *not* safe (0 when every correct
    /// node is safe — in particular whenever there are no liars).
    /// Beyond this radius, every node stabilizes.
    pub fn predicted_radius(&self) -> u64 {
        let safe = self.safe_set();
        let to_byz = self.distance_to_byzantine();
        (0..self.topology.len())
            .filter(|&v| self.byzantine.binary_search(&v).is_err() && !safe[v])
            .map(|v| to_byz[v])
            .max()
            .unwrap_or(0)
    }

    /// The containment goal at radius `r`: every correct,
    /// root-reachable node at distance `> r` from every Byzantine node
    /// holds its legitimate distance. The checker's restricted-region
    /// convergence query asks for the least `r` whose goal converges.
    pub fn containment_goal(&self, r: u64) -> Predicate {
        let legit = self.legit_distances();
        let to_byz = self.distance_to_byzantine();
        let pins: Vec<Predicate> = (0..self.topology.len())
            .filter(|&v| to_byz[v] > r)
            .filter_map(|v| {
                legit[v].map(|l| {
                    let dv = self.dist[v];
                    Predicate::new(format!("pin.{v}"), [dv], move |s| s.get(dv) == l as i64)
                })
            })
            .collect();
        let name = format!("contained@r={r}");
        Predicate::all(name.clone(), pins.iter()).named(name)
    }

    /// The goal actually detectable at run time: every *safe* node
    /// holds its legitimate distance (the containment goal at the
    /// predicted radius, extended to safe nodes inside it).
    pub fn safe_goal(&self) -> Predicate {
        let legit = self.legit_distances();
        let safe = self.safe_set();
        let pins: Vec<Predicate> = (0..self.topology.len())
            .filter(|&v| safe[v])
            .filter_map(|v| {
                legit[v].map(|l| {
                    let dv = self.dist[v];
                    Predicate::new(format!("pin.{v}"), [dv], move |s| s.get(dv) == l as i64)
                })
            })
            .collect();
        Predicate::all("safe-region", pins.iter()).named("safe-region")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_checker::{check_convergence, Fairness, StateSpace};
    use nonmask_program::scheduler::Random;
    use nonmask_program::{Executor, RunConfig, StopReason};

    #[test]
    fn byzantine_free_protocol_is_silent_and_correct() {
        let t = Topology::random_connected(6, 3, 11);
        let p = MinPlusOne::new(&t, 0);
        let init = p
            .program()
            .state_from(vec![5i64; 6])
            .expect("in-domain start");
        let report = Executor::new(p.program()).run(
            init,
            &mut Random::seeded(3),
            &RunConfig::default().max_steps(10_000),
        );
        assert_eq!(report.stop, StopReason::Deadlock, "silent once stabilized");
        for v in 0..6 {
            assert_eq!(
                report.final_state.get(p.dist_var(v)),
                t.distance(0, v) as i64,
                "node {v} holds its BFS distance"
            );
        }
        assert!(p.invariant().holds(&report.final_state));
    }

    #[test]
    fn byzantine_free_convergence_is_checker_certified() {
        let t = Topology::ring(5);
        let p = MinPlusOne::new(&t, 0);
        let space = StateSpace::enumerate(p.program()).unwrap();
        let result = check_convergence(
            &space,
            p.program(),
            &Predicate::always_true(),
            &p.invariant(),
            Fairness::WeaklyFair,
        )
        .unwrap();
        assert!(result.converges(), "{result:?}");
    }

    #[test]
    fn safe_set_and_radius_on_a_line() {
        // 0 - 1 - 2 - 3 - 4 - 5 with the liar at 5: node v has
        // legit(v) = v and dist-to-liar 5 - v, so v is safe iff
        // v <= 5 - v, i.e. nodes 0..=2; the unsafe nodes 3, 4 sit at
        // distances 2 and 1 from the liar, so the radius is 2.
        let t = Topology::line(6);
        let p = MinPlusOne::with_byzantine(&t, 0, &[5]);
        assert_eq!(p.safe_set(), [true, true, true, false, false, false]);
        assert_eq!(p.predicted_radius(), 2);
        assert_eq!(
            p.legit_distances(),
            [Some(0), Some(1), Some(2), Some(3), Some(4), None]
        );
    }

    #[test]
    fn checker_certifies_the_predicted_radius() {
        use nonmask_checker::{certify_containment, CheckOptions};
        // Line with the liar at the far end: predicted radius 2 (see
        // `safe_set_and_radius_on_a_line`, one node shorter here).
        let t = Topology::line(5);
        let p = MinPlusOne::with_byzantine(&t, 0, &[4]);
        let space = StateSpace::enumerate(p.program()).unwrap();
        let verdict = certify_containment(
            &space,
            p.program(),
            |r| p.containment_goal(r),
            t.diameter(),
            Fairness::WeaklyFair,
            CheckOptions::default(),
        )
        .unwrap();
        assert_eq!(verdict.radius, Some(p.predicted_radius()));
        for &(r, converges) in &verdict.verdicts {
            assert_eq!(converges, r >= p.predicted_radius(), "radius {r}");
        }
    }

    #[test]
    fn no_liars_means_radius_zero_and_all_safe() {
        let t = Topology::random_connected(8, 4, 5);
        let p = MinPlusOne::new(&t, 0);
        assert!(p.safe_set().iter().all(|&s| s));
        assert_eq!(p.predicted_radius(), 0);
    }

    #[test]
    #[should_panic(expected = "root must not be Byzantine")]
    fn byzantine_root_rejected() {
        let _ = MinPlusOne::with_byzantine(&Topology::line(3), 0, &[0]);
    }
}
