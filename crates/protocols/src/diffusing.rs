//! Stabilizing diffusing computations (§5.1).
//!
//! On a finite rooted tree, the root initiates a wave that colors nodes
//! *red* on the way down and *green* on the way back up, forever. Each
//! node `j` carries a color `c.j` and a boolean session number `sn.j`; the
//! invariant is `S = (∀ j :: R.j)` with
//!
//! ```text
//! R.j = (c.j = c.(P.j)  ∧  sn.j ≡ sn.(P.j))  ∨  (c.j = green ∧ c.(P.j) = red)
//! ```
//!
//! The closure actions are the root's *initiate*, the per-node
//! *propagate*, and the per-node *reflect*; the convergence action for
//! `R.j` copies the parent's state, which the paper merges with propagate
//! into the single combined action
//!
//! ```text
//! sn.j ≠ sn.(P.j) ∨ (c.j = red ∧ c.(P.j) = green) → c.j, sn.j := c.(P.j), sn.(P.j)
//! ```
//!
//! The constraint graph mirrors the process tree (an out-tree), so
//! Theorem 1 validates convergence; the program tolerates faults that
//! arbitrarily corrupt the state of any number of nodes.

use nonmask::{Design, DesignError};
use nonmask_graph::NodePartition;
use nonmask_program::{ActionId, Domain, Predicate, ProcessId, Program, State, VarId};

use crate::topology::Tree;

/// Color values (`green` = 0, `red` = 1).
pub const GREEN: i64 = 0;
/// Color values (`green` = 0, `red` = 1).
pub const RED: i64 = 1;

/// A stabilizing diffusing computation over a rooted [`Tree`].
#[derive(Debug, Clone)]
pub struct DiffusingComputation {
    tree: Tree,
    program: Program,
    color: Vec<VarId>,
    session: Vec<VarId>,
    initiate: ActionId,
    combined: Vec<(usize, ActionId)>,
    reflect: Vec<ActionId>,
}

impl DiffusingComputation {
    /// Build the paper's program for `tree`.
    pub fn new(tree: &Tree) -> Self {
        let n = tree.len();
        let mut b = Program::builder(format!("diffusing[{n}]"));

        let mut color = Vec::with_capacity(n);
        let mut session = Vec::with_capacity(n);
        for j in 0..n {
            color.push(b.var_of(
                format!("c.{j}"),
                Domain::enumeration(["green", "red"]),
                ProcessId(j),
            ));
            session.push(b.var_of(format!("sn.{j}"), Domain::Bool, ProcessId(j)));
        }

        // Root initiates a new diffusing computation.
        let (c0, sn0) = (color[0], session[0]);
        let initiate = b.closure_action(
            "initiate@0",
            [c0, sn0],
            [c0, sn0],
            move |s| s.get(c0) == GREEN,
            move |s| {
                s.set(c0, RED);
                s.toggle(sn0);
            },
        );

        // Per non-root node: the merged propagate/repair action.
        let mut combined = Vec::new();
        for j in 1..n {
            let p = tree.parent(j);
            let (cj, snj, cp, snp) = (color[j], session[j], color[p], session[p]);
            let id = b.combined_action(
                format!("propagate/repair@{j}"),
                [cj, snj, cp, snp],
                [cj, snj],
                move |s| {
                    s.get_bool(snj) != s.get_bool(snp) || (s.get(cj) == RED && s.get(cp) == GREEN)
                },
                move |s| {
                    let (c, sn) = (s.get(cp), s.get(snp));
                    s.set(cj, c);
                    s.set(snj, sn);
                },
            );
            combined.push((j, id));
        }

        // Per node: reflect once every child has completed.
        let mut reflect = Vec::new();
        for j in 0..n {
            let kids = tree.children(j);
            let (cj, snj) = (color[j], session[j]);
            let kid_vars: Vec<(VarId, VarId)> =
                kids.iter().map(|&k| (color[k], session[k])).collect();
            let mut reads = vec![cj, snj];
            for &(ck, snk) in &kid_vars {
                reads.push(ck);
                reads.push(snk);
            }
            let id = b.closure_action(
                format!("reflect@{j}"),
                reads,
                [cj],
                move |s| {
                    s.get(cj) == RED
                        && kid_vars.iter().all(|&(ck, snk)| {
                            s.get(ck) == GREEN && s.get_bool(snk) == s.get_bool(snj)
                        })
                },
                move |s| s.set(cj, GREEN),
            );
            reflect.push(id);
        }

        DiffusingComputation {
            tree: tree.clone(),
            program: b.build(),
            color,
            session,
            initiate,
            combined,
            reflect,
        }
    }

    /// The underlying tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The guarded-command program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The color variable of node `j`.
    pub fn color_var(&self, j: usize) -> VarId {
        self.color[j]
    }

    /// The session-number variable of node `j`.
    pub fn session_var(&self, j: usize) -> VarId {
        self.session[j]
    }

    /// The root's initiate action.
    pub fn initiate_action(&self) -> ActionId {
        self.initiate
    }

    /// The reflect action of node `j`.
    pub fn reflect_action(&self, j: usize) -> ActionId {
        self.reflect[j]
    }

    /// The merged propagate/repair action of non-root node `j`, if any.
    pub fn combined_action(&self, j: usize) -> Option<ActionId> {
        self.combined.iter().find(|(k, _)| *k == j).map(|(_, a)| *a)
    }

    /// The constraint `R.j` of non-root node `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is the root or out of range.
    pub fn constraint(&self, j: usize) -> Predicate {
        assert!(
            j > 0 && j < self.tree.len(),
            "R.j is defined for non-root nodes"
        );
        let p = self.tree.parent(j);
        let (cj, snj, cp, snp) = (
            self.color[j],
            self.session[j],
            self.color[p],
            self.session[p],
        );
        Predicate::new(format!("R.{j}"), [cj, snj, cp, snp], move |s| {
            (s.get(cj) == s.get(cp) && s.get_bool(snj) == s.get_bool(snp))
                || (s.get(cj) == GREEN && s.get(cp) == RED)
        })
    }

    /// The invariant `S = (∀ j :: R.j)`.
    pub fn invariant(&self) -> Predicate {
        let rs: Vec<Predicate> = (1..self.tree.len()).map(|j| self.constraint(j)).collect();
        Predicate::all("S", rs.iter()).named("S")
    }

    /// The complete stabilizing [`Design`]: fault span `true`, one
    /// constraint `R.j` per non-root node, node partition by process.
    ///
    /// # Errors
    ///
    /// Mirrors [`Design::builder`] validation (cannot fail for programs
    /// built by [`DiffusingComputation::new`]).
    pub fn design(&self) -> Result<Design, DesignError> {
        let mut builder = Design::builder(self.program.clone())
            .partition(NodePartition::by_process(&self.program));
        for &(j, action) in &self.combined {
            builder = builder.constraint(format!("R.{j}"), self.constraint(j), action);
        }
        builder.build()
    }

    /// A mis-designed variant for the interference ablation (E3): each
    /// repair establishes `R.j` by overwriting the *parent's* state with
    /// the child's. The constraint-graph edges then point from child to
    /// parent; siblings' repairs target the same node and interfere, and
    /// the design livelocks (children endlessly re-writing their parent
    /// erase the root's progress).
    pub fn misdesigned(tree: &Tree) -> (Program, Predicate) {
        let n = tree.len();
        let mut b = Program::builder(format!("diffusing-misdesigned[{n}]"));
        let mut color = Vec::with_capacity(n);
        let mut session = Vec::with_capacity(n);
        for j in 0..n {
            color.push(b.var_of(
                format!("c.{j}"),
                Domain::enumeration(["green", "red"]),
                ProcessId(j),
            ));
            session.push(b.var_of(format!("sn.{j}"), Domain::Bool, ProcessId(j)));
        }
        let (c0, sn0) = (color[0], session[0]);
        b.closure_action(
            "initiate@0",
            [c0, sn0],
            [c0, sn0],
            move |s| s.get(c0) == GREEN,
            move |s| {
                s.set(c0, RED);
                s.toggle(sn0);
            },
        );
        for j in 1..n {
            let p = tree.parent(j);
            let (cj, snj, cp, snp) = (color[j], session[j], color[p], session[p]);
            // Repair R.j by writing the PARENT — the wrong end of the edge.
            b.convergence_action(
                format!("repair-parent@{j}"),
                [cj, snj, cp, snp],
                [cp, snp],
                move |s| {
                    !((s.get(cj) == s.get(cp) && s.get_bool(snj) == s.get_bool(snp))
                        || (s.get(cj) == GREEN && s.get(cp) == RED))
                },
                move |s| {
                    let (c, sn) = (s.get(cj), s.get(snj));
                    s.set(cp, c);
                    s.set(snp, sn);
                },
            );
        }
        for j in 0..n {
            let kids = tree.children(j);
            let (cj, snj) = (color[j], session[j]);
            let kid_vars: Vec<(VarId, VarId)> =
                kids.iter().map(|&k| (color[k], session[k])).collect();
            let mut reads = vec![cj, snj];
            for &(ck, snk) in &kid_vars {
                reads.push(ck);
                reads.push(snk);
            }
            b.closure_action(
                format!("reflect@{j}"),
                reads,
                [cj],
                move |s| {
                    s.get(cj) == RED
                        && kid_vars.iter().all(|&(ck, snk)| {
                            s.get(ck) == GREEN && s.get_bool(snk) == s.get_bool(snj)
                        })
                },
                move |s| s.set(cj, GREEN),
            );
        }
        let program = b.build();
        let rs: Vec<Predicate> = (1..n)
            .map(|j| {
                let p = tree.parent(j);
                let (cj, snj, cp, snp) = (color[j], session[j], color[p], session[p]);
                Predicate::new(format!("R.{j}"), [cj, snj, cp, snp], move |s| {
                    (s.get(cj) == s.get(cp) && s.get_bool(snj) == s.get_bool(snp))
                        || (s.get(cj) == GREEN && s.get(cp) == RED)
                })
            })
            .collect();
        let invariant = Predicate::all("S", rs.iter()).named("S");
        (program, invariant)
    }

    /// The all-green, equal-session initial state (the specification's
    /// starting point).
    pub fn initial_state(&self) -> State {
        self.program.min_state()
    }

    /// How many nodes are currently red.
    pub fn red_count(&self, state: &State) -> usize {
        self.color.iter().filter(|&&c| state.get(c) == RED).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask::TheoremOutcome;
    use nonmask_checker::{check_convergence, Fairness, StateSpace};
    use nonmask_graph::Shape;
    use nonmask_program::scheduler::RoundRobin;
    use nonmask_program::{Executor, RunConfig, StopReason};

    #[test]
    fn design_is_theorem1_stabilizing_on_small_trees() {
        for tree in [Tree::chain(3), Tree::star(4), Tree::binary(5)] {
            let dc = DiffusingComputation::new(&tree);
            let design = dc.design().unwrap();
            let graph = design.constraint_graph().unwrap();
            assert_eq!(graph.shape(), Shape::OutTree, "tree {tree:?}");
            let report = design.verify().unwrap();
            assert!(
                matches!(report.theorem, TheoremOutcome::Theorem1 { .. }),
                "tree {:?}: {:?}",
                tree,
                report.theorem
            );
            assert!(report.is_tolerant(), "tree {tree:?}: {}", report.summary());
            assert!(report.is_stabilizing());
            assert!(
                report.convergence_unfair.converges(),
                "Section 8: fairness is unnecessary here"
            );
        }
    }

    #[test]
    fn constraint_graph_mirrors_tree() {
        let tree = Tree::binary(7);
        let dc = DiffusingComputation::new(&tree);
        let design = dc.design().unwrap();
        let graph = design.constraint_graph().unwrap();
        assert_eq!(graph.node_count(), 7);
        assert_eq!(graph.edge_count(), 6);
        let ranks = graph.ranks().unwrap();
        for (j, &rank) in ranks.iter().enumerate() {
            assert_eq!(rank as usize, tree.depth(j) + 1, "rank = depth + 1");
        }
    }

    #[test]
    fn ranks_match_tree_depth_on_random_trees() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..5 {
            let tree = Tree::random(8, &mut rng);
            let dc = DiffusingComputation::new(&tree);
            let graph = dc.design().unwrap().constraint_graph().unwrap();
            assert_eq!(graph.shape(), Shape::OutTree);
        }
    }

    #[test]
    fn wave_cycles_forever_from_initial_state() {
        let tree = Tree::chain(3);
        let dc = DiffusingComputation::new(&tree);
        let report = Executor::new(dc.program()).run(
            dc.initial_state(),
            &mut RoundRobin::new(),
            &RunConfig::default().max_steps(200).record_trace(true),
        );
        // The wave never terminates (MaxSteps) and the root initiates
        // multiple times.
        assert_eq!(report.stop, StopReason::MaxSteps);
        assert!(report.count_of(dc.initiate_action()) >= 2);
        // Every state along the way satisfies S (no faults injected).
        let s = dc.invariant();
        for st in report.trace.unwrap().states() {
            assert!(s.holds(st), "closure: S holds throughout fault-free runs");
        }
    }

    #[test]
    fn converges_from_every_state() {
        let tree = Tree::binary(4);
        let dc = DiffusingComputation::new(&tree);
        let space = StateSpace::enumerate(dc.program()).unwrap();
        let s = dc.invariant();
        let t = Predicate::always_true();
        for fairness in [Fairness::WeaklyFair, Fairness::Unfair] {
            let r = check_convergence(&space, dc.program(), &t, &s, fairness).unwrap();
            assert!(r.converges(), "{fairness}: {r:?}");
        }
    }

    #[test]
    fn misdesigned_variant_fails() {
        // Writing the parent reverses the constraint-graph edges; sibling
        // repairs then target the same node and interfere. The failure
        // mode depends on the tree shape:
        // - a chain has one repair per target node, so it still converges;
        // - a star's sibling repairs ping-pong the root, but weak fairness
        //   escapes the cycle (divergence under the unfair daemon only);
        // - a deeper tree (binary, 5 nodes) livelocks even under weak
        //   fairness.
        let cases: [(_, _, Fairness, bool); 3] = [
            (Tree::chain(3), "chain", Fairness::Unfair, true),
            (Tree::star(3), "star", Fairness::Unfair, false),
            (Tree::binary(5), "binary", Fairness::WeaklyFair, false),
        ];
        for (tree, name, fairness, expect_converges) in cases {
            let (program, invariant) = DiffusingComputation::misdesigned(&tree);
            let space = StateSpace::enumerate(&program).unwrap();
            let r = check_convergence(
                &space,
                &program,
                &Predicate::always_true(),
                &invariant,
                fairness,
            )
            .unwrap();
            assert_eq!(
                r.converges(),
                expect_converges,
                "{name} under {fairness}: {r:?}"
            );
        }
    }

    #[test]
    fn red_count_tracks_wave() {
        let tree = Tree::chain(2);
        let dc = DiffusingComputation::new(&tree);
        let mut state = dc.initial_state();
        assert_eq!(dc.red_count(&state), 0);
        dc.program().action(dc.initiate_action()).apply(&mut state);
        assert_eq!(dc.red_count(&state), 1);
    }

    #[test]
    fn constraint_accessors() {
        let tree = Tree::chain(3);
        let dc = DiffusingComputation::new(&tree);
        assert!(dc.combined_action(0).is_none(), "root has no repair");
        assert!(dc.combined_action(1).is_some());
        assert_eq!(dc.tree().len(), 3);
        let r1 = dc.constraint(1);
        assert!(r1.holds(&dc.initial_state()));
    }

    #[test]
    #[should_panic(expected = "non-root")]
    fn root_constraint_panics() {
        let dc = DiffusingComputation::new(&Tree::chain(2));
        let _ = dc.constraint(0);
    }
}
