//! Distributed reset: the flagship *application* of diffusing computations
//! (§5.1 names "global state snapshot, termination detection, deadlock
//! detection, and distributed reset"; the paper's citation \[12\] is
//! Arora & Gouda's distributed reset).
//!
//! Each node carries an application value `v.j`. The diffusing wave doubles
//! as a reset wave: when the red (downward) phase passes node `j`, the
//! node resets `v.j` to the default value. Because the application value
//! appears in *no* constraint, the reset layer rides on the verified
//! diffusing design unchanged — the constraint graph, theorem application,
//! and convergence proof are untouched, illustrating how the method
//! composes with application state.

use nonmask::{Design, DesignError};
use nonmask_graph::NodePartition;
use nonmask_program::{ActionId, Domain, Predicate, ProcessId, Program, State, VarId};

use crate::diffusing::{GREEN, RED};
use crate::topology::Tree;

/// A stabilizing distributed-reset protocol over a rooted [`Tree`].
#[derive(Debug, Clone)]
pub struct DistributedReset {
    tree: Tree,
    program: Program,
    color: Vec<VarId>,
    session: Vec<VarId>,
    value: Vec<VarId>,
    default_value: i64,
    initiate: ActionId,
    combined: Vec<(usize, ActionId)>,
}

impl DistributedReset {
    /// Build the protocol: application values in `0..=max_value`, reset to
    /// `default_value` by each wave.
    ///
    /// # Panics
    ///
    /// Panics if `default_value` is outside `0..=max_value`.
    pub fn new(tree: &Tree, max_value: i64, default_value: i64) -> Self {
        assert!(
            (0..=max_value).contains(&default_value),
            "default must lie in the value domain"
        );
        let n = tree.len();
        let mut b = Program::builder(format!("distributed-reset[{n}]"));

        let mut color = Vec::with_capacity(n);
        let mut session = Vec::with_capacity(n);
        let mut value = Vec::with_capacity(n);
        for j in 0..n {
            color.push(b.var_of(
                format!("c.{j}"),
                Domain::enumeration(["green", "red"]),
                ProcessId(j),
            ));
            session.push(b.var_of(format!("sn.{j}"), Domain::Bool, ProcessId(j)));
            value.push(b.var_of(format!("v.{j}"), Domain::range(0, max_value), ProcessId(j)));
        }

        // Root initiates a reset wave, resetting its own value.
        let (c0, sn0, v0) = (color[0], session[0], value[0]);
        let initiate = b.closure_action(
            "initiate-reset@0",
            [c0, sn0],
            [c0, sn0, v0],
            move |s| s.get(c0) == GREEN,
            move |s| {
                s.set(c0, RED);
                s.toggle(sn0);
                s.set(v0, default_value);
            },
        );

        // Merged propagate/repair, additionally resetting the value when
        // the red phase arrives.
        let mut combined = Vec::new();
        for j in 1..n {
            let p = tree.parent(j);
            let (cj, snj, vj) = (color[j], session[j], value[j]);
            let (cp, snp) = (color[p], session[p]);
            let id = b.combined_action(
                format!("propagate-reset@{j}"),
                [cj, snj, cp, snp],
                [cj, snj, vj],
                move |s| {
                    s.get_bool(snj) != s.get_bool(snp) || (s.get(cj) == RED && s.get(cp) == GREEN)
                },
                move |s| {
                    let (c, sn) = (s.get(cp), s.get(snp));
                    if c == RED {
                        s.set(vj, default_value);
                    }
                    s.set(cj, c);
                    s.set(snj, sn);
                },
            );
            combined.push((j, id));
        }

        // Reflect actions (unchanged from the diffusing computation).
        for j in 0..n {
            let kids = tree.children(j);
            let (cj, snj) = (color[j], session[j]);
            let kid_vars: Vec<(VarId, VarId)> =
                kids.iter().map(|&k| (color[k], session[k])).collect();
            let mut reads = vec![cj, snj];
            for &(ck, snk) in &kid_vars {
                reads.push(ck);
                reads.push(snk);
            }
            b.closure_action(
                format!("reflect@{j}"),
                reads,
                [cj],
                move |s| {
                    s.get(cj) == RED
                        && kid_vars.iter().all(|&(ck, snk)| {
                            s.get(ck) == GREEN && s.get_bool(snk) == s.get_bool(snj)
                        })
                },
                move |s| s.set(cj, GREEN),
            );
        }

        DistributedReset {
            tree: tree.clone(),
            program: b.build(),
            color,
            session,
            value,
            default_value,
            initiate,
            combined,
        }
    }

    /// The underlying tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The guarded-command program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The application-value variable of node `j`.
    pub fn value_var(&self, j: usize) -> VarId {
        self.value[j]
    }

    /// The color variable of node `j`.
    pub fn color_var(&self, j: usize) -> VarId {
        self.color[j]
    }

    /// The session variable of node `j`.
    pub fn session_var(&self, j: usize) -> VarId {
        self.session[j]
    }

    /// The root's initiate action.
    pub fn initiate_action(&self) -> ActionId {
        self.initiate
    }

    /// The default value waves reset to.
    pub fn default_value(&self) -> i64 {
        self.default_value
    }

    /// The wave-consistency constraint `R.j` (identical to the diffusing
    /// computation's; the application value is unconstrained).
    pub fn constraint(&self, j: usize) -> Predicate {
        assert!(
            j > 0 && j < self.tree.len(),
            "R.j is defined for non-root nodes"
        );
        let p = self.tree.parent(j);
        let (cj, snj, cp, snp) = (
            self.color[j],
            self.session[j],
            self.color[p],
            self.session[p],
        );
        Predicate::new(format!("R.{j}"), [cj, snj, cp, snp], move |s| {
            (s.get(cj) == s.get(cp) && s.get_bool(snj) == s.get_bool(snp))
                || (s.get(cj) == GREEN && s.get(cp) == RED)
        })
    }

    /// The invariant `S = (∀ j :: R.j)`.
    pub fn invariant(&self) -> Predicate {
        let rs: Vec<Predicate> = (1..self.tree.len()).map(|j| self.constraint(j)).collect();
        Predicate::all("S", rs.iter()).named("S")
    }

    /// The complete stabilizing [`Design`].
    ///
    /// # Errors
    ///
    /// Mirrors [`Design::builder`] validation.
    pub fn design(&self) -> Result<Design, DesignError> {
        let mut builder = Design::builder(self.program.clone())
            .partition(NodePartition::by_process(&self.program));
        for &(j, action) in &self.combined {
            builder = builder.constraint(format!("R.{j}"), self.constraint(j), action);
        }
        builder.build()
    }

    /// All-green initial state with every value at the default.
    pub fn initial_state(&self) -> State {
        let mut s = self.program.min_state();
        for &v in &self.value {
            s.set(v, self.default_value);
        }
        s
    }

    /// Whether every node's application value equals the default.
    pub fn all_reset(&self, state: &State) -> bool {
        self.value
            .iter()
            .all(|&v| state.get(v) == self.default_value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask::TheoremOutcome;
    use nonmask_program::scheduler::RoundRobin;
    use nonmask_program::{Executor, RunConfig};

    #[test]
    fn design_is_still_theorem1() {
        let reset = DistributedReset::new(&Tree::binary(4), 3, 0);
        let report = reset.design().unwrap().verify().unwrap();
        assert!(matches!(report.theorem, TheoremOutcome::Theorem1 { .. }));
        assert!(report.is_tolerant(), "{}", report.summary());
        assert!(report.is_stabilizing());
    }

    #[test]
    fn wave_resets_application_values() {
        let tree = Tree::binary(7);
        let reset = DistributedReset::new(&tree, 9, 0);
        // Dirty the application values.
        let mut state = reset.initial_state();
        for j in 0..7 {
            state.set(reset.value_var(j), (j as i64 * 3 + 1) % 10);
        }
        assert!(!reset.all_reset(&state));

        // One full wave (or two) cleans everything: run until all values
        // are default again.
        let clean = Predicate::new("all-reset", (0..7).map(|j| reset.value_var(j)), {
            let vals: Vec<VarId> = (0..7).map(|j| reset.value_var(j)).collect();
            move |s: &State| vals.iter().all(|&v| s.get(v) == 0)
        });
        let report = Executor::new(reset.program()).run(
            state,
            &mut RoundRobin::new(),
            &RunConfig::default().stop_when(&clean, 1).max_steps(10_000),
        );
        assert!(report.stop.is_stabilized(), "values were reset by the wave");
        assert!(reset.all_reset(&report.final_state));
    }

    #[test]
    fn reset_tolerates_wave_corruption() {
        use nonmask_checker::{check_convergence, Fairness, StateSpace};
        let reset = DistributedReset::new(&Tree::chain(3), 1, 0);
        let space = StateSpace::enumerate(reset.program()).unwrap();
        let r = check_convergence(
            &space,
            reset.program(),
            &Predicate::always_true(),
            &reset.invariant(),
            Fairness::WeaklyFair,
        )
        .unwrap();
        assert!(r.converges());
    }

    #[test]
    #[should_panic(expected = "default must lie")]
    fn bad_default_rejected() {
        let _ = DistributedReset::new(&Tree::chain(2), 3, 7);
    }

    #[test]
    fn accessors() {
        let reset = DistributedReset::new(&Tree::star(3), 5, 2);
        assert_eq!(reset.default_value(), 2);
        assert_eq!(reset.tree().len(), 3);
        let init = reset.initial_state();
        assert!(reset.all_reset(&init));
        assert!(reset.invariant().holds(&init));
        assert!(reset.constraint(1).holds(&init));
        assert!(reset
            .program()
            .action(reset.initiate_action())
            .enabled(&init));
    }
}
