//! Self-stabilizing BFS spanning-tree construction in the style of
//! Dubois, Masuzawa & Tixeuil (arXiv:1004.5256), over arbitrary
//! connected [`Topology`]s.
//!
//! Every node `j` maintains a distance `d.j` and a parent pointer
//! `prnt.j`. The root anchors `d = 0, prnt = root`; every other
//! correct node enforces the BFS equations in one atomic repair:
//!
//! ```text
//! m      = min over neighbors k of d.k
//! d.j    = min(cap, m + 1)
//! prnt.j = the lowest-id neighbor achieving m
//! ```
//!
//! The lowest-id tie-break makes the legitimate tree unique, so "node
//! `j` stabilized" is a pointwise equation rather than an existential
//! property — which is what lets the containment measurements compare
//! sim, net and checker verdicts exactly.
//!
//! # Byzantine containment
//!
//! [`SpanningTree::with_byzantine`] replaces marked nodes' repair with
//! per-value havoc actions on both variables. A correct node `v` is
//! *safe* here iff `legit(v) < dist(v, B)` — strictly closer to the
//! root than to any liar. The strictness (vs `<=` for the pure
//! distance protocol, [`crate::bfs::MinPlusOne`]) pays for the parent
//! pointer: a liar at distance exactly `legit(v)` could tie `v`'s
//! minimum with a forged distance and steal the tie-break, flapping
//! `prnt.v` forever even though `d.v` stays pinned.

use nonmask_graph::Topology;
use nonmask_program::{ActionId, Domain, Predicate, ProcessId, Program, State, VarId};

/// The stabilizing spanning-tree protocol over a [`Topology`],
/// optionally with Byzantine (havoc-modelled) nodes.
#[derive(Debug, Clone)]
pub struct SpanningTree {
    topology: Topology,
    root: usize,
    byzantine: Vec<usize>,
    cap: i64,
    program: Program,
    dist: Vec<VarId>,
    parent: Vec<VarId>,
    repairs: Vec<(usize, ActionId)>,
}

/// The BFS target of node `j`: clamped min+1 distance and the
/// lowest-id neighbor achieving the minimum.
fn bfs_target(s: &State, neighbors: &[(usize, VarId)], cap: i64) -> (i64, i64) {
    let (mut m, mut arg) = (i64::MAX, neighbors[0].0 as i64);
    for &(id, var) in neighbors {
        let d = s.get(var);
        if d < m {
            m = d;
            arg = id as i64;
        }
    }
    ((m + 1).min(cap), arg)
}

impl SpanningTree {
    /// The byzantine-free protocol.
    pub fn new(topology: &Topology, root: usize) -> Self {
        SpanningTree::with_byzantine(topology, root, &[])
    }

    /// The protocol with the given nodes Byzantine: their repair is
    /// replaced by one havoc action per variable and value.
    ///
    /// # Panics
    ///
    /// Panics on an empty or disconnected topology, a topology with an
    /// isolated non-root node, an out-of-range root or Byzantine index,
    /// or a Byzantine root.
    pub fn with_byzantine(topology: &Topology, root: usize, byzantine: &[usize]) -> Self {
        let n = topology.len();
        assert!(n >= 2, "a spanning tree needs at least two nodes");
        assert!(topology.is_connected(), "the topology must be connected");
        assert!(root < n, "root out of range");
        let mut byz: Vec<usize> = byzantine.to_vec();
        byz.sort_unstable();
        byz.dedup();
        assert!(byz.iter().all(|&b| b < n), "Byzantine index out of range");
        assert!(!byz.contains(&root), "the root must not be Byzantine");

        let cap = n as i64;
        let mut b = Program::builder(format!(
            "spanning-tree[n={n},root={root},byz={}]",
            byz.len()
        ));
        let mut dist = Vec::with_capacity(n);
        let mut parent = Vec::with_capacity(n);
        for j in 0..n {
            dist.push(b.var_of(format!("d.{j}"), Domain::range(0, cap), ProcessId(j)));
            parent.push(b.var_of(
                format!("prnt.{j}"),
                Domain::range(0, n as i64 - 1),
                ProcessId(j),
            ));
        }

        let mut repairs = Vec::new();
        for j in 0..n {
            let (dj, pj) = (dist[j], parent[j]);
            if byz.binary_search(&j).is_ok() {
                for v in 0..=cap {
                    b.closure_action(
                        format!("lie-d@{j}={v}"),
                        [dj],
                        [dj],
                        move |s| s.get(dj) != v,
                        move |s| s.set(dj, v),
                    );
                }
                for v in 0..n as i64 {
                    b.closure_action(
                        format!("lie-p@{j}={v}"),
                        [pj],
                        [pj],
                        move |s| s.get(pj) != v,
                        move |s| s.set(pj, v),
                    );
                }
            } else if j == root {
                let anchor = root as i64;
                let id = b.convergence_action(
                    format!("anchor@{j}"),
                    [dj, pj],
                    [dj, pj],
                    move |s| s.get(dj) != 0 || s.get(pj) != anchor,
                    move |s| {
                        s.set(dj, 0);
                        s.set(pj, anchor);
                    },
                );
                repairs.push((j, id));
            } else {
                let around: Vec<(usize, VarId)> = topology
                    .neighbors(j)
                    .iter()
                    .map(|&k| (k, dist[k]))
                    .collect();
                let mut reads: Vec<VarId> = around.iter().map(|&(_, v)| v).collect();
                reads.push(dj);
                reads.push(pj);
                let (ga, ea) = (around.clone(), around);
                let id = b.convergence_action(
                    format!("adopt@{j}"),
                    reads,
                    [dj, pj],
                    move |s| (s.get(dj), s.get(pj)) != bfs_target(s, &ga, cap),
                    move |s| {
                        let (d, p) = bfs_target(s, &ea, cap);
                        s.set(dj, d);
                        s.set(pj, p);
                    },
                );
                repairs.push((j, id));
            }
        }

        SpanningTree {
            topology: topology.clone(),
            root,
            byzantine: byz,
            cap,
            program: b.build(),
            dist,
            parent,
            repairs,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The guarded-command program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// The sorted Byzantine node set.
    pub fn byzantine(&self) -> &[usize] {
        &self.byzantine
    }

    /// The distance variable of node `j`.
    pub fn dist_var(&self, j: usize) -> VarId {
        self.dist[j]
    }

    /// The parent variable of node `j`.
    pub fn parent_var(&self, j: usize) -> VarId {
        self.parent[j]
    }

    /// The repair action of correct node `j`.
    pub fn fix_action(&self, j: usize) -> Option<ActionId> {
        self.repairs
            .iter()
            .find(|&&(node, _)| node == j)
            .map(|&(_, id)| id)
    }

    /// The local constraint of correct node `j`: the BFS equations
    /// (`d = 0, prnt = root` at the root).
    ///
    /// # Panics
    ///
    /// Panics for Byzantine or out-of-range nodes.
    pub fn constraint(&self, j: usize) -> Predicate {
        assert!(j < self.topology.len(), "node out of range");
        assert!(
            self.byzantine.binary_search(&j).is_err(),
            "Byzantine nodes have no constraint"
        );
        let (dj, pj) = (self.dist[j], self.parent[j]);
        if j == self.root {
            let anchor = self.root as i64;
            return Predicate::new(format!("c.{j}"), [dj, pj], move |s| {
                s.get(dj) == 0 && s.get(pj) == anchor
            });
        }
        let around: Vec<(usize, VarId)> = self
            .topology
            .neighbors(j)
            .iter()
            .map(|&k| (k, self.dist[k]))
            .collect();
        let mut reads: Vec<VarId> = around.iter().map(|&(_, v)| v).collect();
        reads.push(dj);
        reads.push(pj);
        let cap = self.cap;
        Predicate::new(format!("c.{j}"), reads, move |s| {
            (s.get(dj), s.get(pj)) == bfs_target(s, &around, cap)
        })
    }

    /// The byzantine-free invariant: the unique BFS tree (lowest-id
    /// tie-break) with exact distances.
    pub fn invariant(&self) -> Predicate {
        let cs: Vec<Predicate> = (0..self.topology.len())
            .filter(|j| self.byzantine.binary_search(j).is_err())
            .map(|j| self.constraint(j))
            .collect();
        Predicate::all("bfs-tree", cs.iter()).named("bfs-tree")
    }

    /// Hop distance of every node to the nearest Byzantine node
    /// ([`Topology::INFINITY`] when there are none).
    pub fn distance_to_byzantine(&self) -> Vec<u64> {
        if self.byzantine.is_empty() {
            vec![Topology::INFINITY; self.topology.len()]
        } else {
            self.topology.distances_from(&self.byzantine)
        }
    }

    /// The legitimate distance of every node through correct nodes
    /// only (`None` for Byzantine nodes and for nodes the liars cut
    /// off from the root).
    pub fn legit_distances(&self) -> Vec<Option<u64>> {
        let n = self.topology.len();
        let mut dist = vec![None; n];
        let mut queue = std::collections::VecDeque::new();
        dist[self.root] = Some(0u64);
        queue.push_back(self.root);
        while let Some(v) = queue.pop_front() {
            let dv = dist[v].unwrap();
            for &w in self.topology.neighbors(v) {
                if dist[w].is_none() && self.byzantine.binary_search(&w).is_err() {
                    dist[w] = Some(dv + 1);
                    queue.push_back(w);
                }
            }
        }
        for &b in &self.byzantine {
            dist[b] = None;
        }
        dist
    }

    /// The legitimate parent of correct non-root node `j`: the
    /// lowest-id neighbor one legitimate hop closer to the root.
    pub fn legit_parent(&self, j: usize) -> Option<usize> {
        let legit = self.legit_distances();
        let lj = legit[j]?;
        if j == self.root {
            return Some(self.root);
        }
        self.topology
            .neighbors(j)
            .iter()
            .copied()
            .find(|&k| legit[k] == Some(lj.wrapping_sub(1)))
    }

    /// Whether each node is *safe*: correct, root-reachable through
    /// correct nodes, and **strictly** closer to the root than to any
    /// liar. Safe nodes pin both their distance and their parent.
    ///
    /// The strict rule is sound but not always tight: a node exactly
    /// equidistant between root and liar is classed unsafe because a
    /// tie-valued lie channel *may* steal its parent, yet on concrete
    /// topologies the lowest-id tie-break can make stealing impossible
    /// (the root's id 0 wins every tie it enters). The checker's
    /// restricted-region sweep adjudicates the true radius, which may
    /// therefore be smaller than [`SpanningTree::predicted_radius`].
    pub fn safe_set(&self) -> Vec<bool> {
        let legit = self.legit_distances();
        let to_byz = self.distance_to_byzantine();
        (0..self.topology.len())
            .map(|v| matches!(legit[v], Some(l) if l < to_byz[v]))
            .collect()
    }

    /// The predicted containment radius: the largest distance-to-liar
    /// over correct nodes that are not safe (0 when all are safe).
    /// An upper bound on the true radius — see [`SpanningTree::safe_set`]
    /// for why the strict rule can be conservative on ties.
    pub fn predicted_radius(&self) -> u64 {
        let safe = self.safe_set();
        let to_byz = self.distance_to_byzantine();
        (0..self.topology.len())
            .filter(|&v| self.byzantine.binary_search(&v).is_err() && !safe[v])
            .map(|v| to_byz[v])
            .max()
            .unwrap_or(0)
    }

    /// The containment goal at radius `r`: every correct,
    /// root-reachable node at distance `> r` from every Byzantine node
    /// holds its legitimate distance *and* parent. The checker's
    /// restricted-region convergence query asks for the least `r`
    /// whose goal converges; it is at most
    /// [`SpanningTree::predicted_radius`] and can be strictly smaller
    /// when the lowest-id tie-break protects equidistant nodes from
    /// parent-stealing lies.
    pub fn containment_goal(&self, r: u64) -> Predicate {
        let legit = self.legit_distances();
        let to_byz = self.distance_to_byzantine();
        let pins: Vec<Predicate> = (0..self.topology.len())
            .filter(|&v| to_byz[v] > r)
            .filter_map(|v| {
                let l = legit[v]? as i64;
                let p = if v == self.root {
                    self.root as i64
                } else {
                    self.legit_parent(v)? as i64
                };
                let (dv, pv) = (self.dist[v], self.parent[v]);
                Some(Predicate::new(format!("pin.{v}"), [dv, pv], move |s| {
                    s.get(dv) == l && s.get(pv) == p
                }))
            })
            .collect();
        let name = format!("contained@r={r}");
        Predicate::all(name.clone(), pins.iter()).named(name)
    }

    /// The run-time detection goal: every safe node holds its
    /// legitimate distance and parent.
    pub fn safe_goal(&self) -> Predicate {
        let legit = self.legit_distances();
        let safe = self.safe_set();
        let pins: Vec<Predicate> = (0..self.topology.len())
            .filter(|&v| safe[v])
            .filter_map(|v| {
                let l = legit[v]? as i64;
                let p = if v == self.root {
                    self.root as i64
                } else {
                    self.legit_parent(v)? as i64
                };
                let (dv, pv) = (self.dist[v], self.parent[v]);
                Some(Predicate::new(format!("pin.{v}"), [dv, pv], move |s| {
                    s.get(dv) == l && s.get(pv) == p
                }))
            })
            .collect();
        Predicate::all("safe-region", pins.iter()).named("safe-region")
    }
}

/// A deliberately broken spanning tree for the conformance harness's
/// planted-bug self-test (cargo feature `planted-bug`): identical to
/// [`SpanningTree::new`] except node `trusting` adopts node `liar` as
/// its parent unconditionally whenever they are neighbors — the
/// "Byzantine node accepted as parent" bug a differential harness must
/// catch. Variable and action layout match the reference exactly.
///
/// # Panics
///
/// Panics under the same conditions as [`SpanningTree::new`], or when
/// `trusting` and `liar` are not adjacent (the bug would be dead code).
#[cfg(feature = "planted-bug")]
pub fn planted_trusting_mutant(
    topology: &Topology,
    root: usize,
    trusting: usize,
    liar: usize,
) -> Program {
    let n = topology.len();
    assert!(n >= 2, "a spanning tree needs at least two nodes");
    assert!(topology.is_connected(), "the topology must be connected");
    assert!(root < n, "root out of range");
    assert!(trusting != root, "the root has no parent to corrupt");
    assert!(
        topology.has_edge(trusting, liar),
        "the trusting node must neighbor the liar"
    );

    let cap = n as i64;
    let mut b = Program::builder(format!("spanning-tree[n={n},root={root},byz=0]"));
    let mut dist = Vec::with_capacity(n);
    let mut parent = Vec::with_capacity(n);
    for j in 0..n {
        dist.push(b.var_of(format!("d.{j}"), Domain::range(0, cap), ProcessId(j)));
        parent.push(b.var_of(
            format!("prnt.{j}"),
            Domain::range(0, n as i64 - 1),
            ProcessId(j),
        ));
    }
    for j in 0..n {
        let (dj, pj) = (dist[j], parent[j]);
        if j == root {
            let anchor = root as i64;
            b.convergence_action(
                format!("anchor@{j}"),
                [dj, pj],
                [dj, pj],
                move |s| s.get(dj) != 0 || s.get(pj) != anchor,
                move |s| {
                    s.set(dj, 0);
                    s.set(pj, anchor);
                },
            );
        } else {
            let around: Vec<(usize, VarId)> = topology
                .neighbors(j)
                .iter()
                .map(|&k| (k, dist[k]))
                .collect();
            let mut reads: Vec<VarId> = around.iter().map(|&(_, v)| v).collect();
            reads.push(dj);
            reads.push(pj);
            let (ga, ea) = (around.clone(), around);
            let liar_dist = dist[liar];
            let bugged = j == trusting;
            b.convergence_action(
                format!("adopt@{j}"),
                reads,
                [dj, pj],
                move |s| (s.get(dj), s.get(pj)) != bfs_target(s, &ga, cap),
                move |s| {
                    if bugged {
                        // The planted bug: trust the liar unconditionally
                        // instead of taking the true minimum.
                        s.set(dj, (s.get(liar_dist) + 1).min(cap));
                        s.set(pj, liar as i64);
                    } else {
                        let (d, p) = bfs_target(s, &ea, cap);
                        s.set(dj, d);
                        s.set(pj, p);
                    }
                },
            );
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_program::scheduler::Random;
    use nonmask_program::{Executor, RunConfig, StopReason};

    #[test]
    fn stabilizes_to_the_unique_bfs_tree() {
        let t = Topology::random_connected(6, 3, 42);
        let st = SpanningTree::new(&t, 0);
        let init = st
            .program()
            .state_from(vec![3i64; 12])
            .expect("in-domain start");
        let report = Executor::new(st.program()).run(
            init,
            &mut Random::seeded(9),
            &RunConfig::default().max_steps(20_000),
        );
        assert_eq!(report.stop, StopReason::Deadlock, "silent once stabilized");
        assert!(st.invariant().holds(&report.final_state));
        for v in 1..6 {
            let d = report.final_state.get(st.dist_var(v)) as u64;
            let p = report.final_state.get(st.parent_var(v)) as usize;
            assert_eq!(d, t.distance(0, v), "node {v} distance");
            assert!(t.has_edge(v, p), "parent of {v} is a neighbor");
            assert_eq!(t.distance(0, p), d - 1, "parent of {v} is one hop closer");
            assert_eq!(Some(p), st.legit_parent(v), "lowest-id tie-break");
        }
    }

    #[test]
    fn strict_safety_on_a_line() {
        // 0 - 1 - 2 - 3 - 4 with the liar at 4: strict safety keeps
        // nodes with v < 4 - v, i.e. 0 and 1; unsafe correct nodes 2, 3
        // sit at distances 2 and 1 from the liar.
        let t = Topology::line(5);
        let st = SpanningTree::with_byzantine(&t, 0, &[4]);
        assert_eq!(st.safe_set(), [true, true, false, false, false]);
        assert_eq!(st.predicted_radius(), 2);
    }

    #[test]
    fn legit_parent_prefers_lowest_id() {
        // Diamond: 0 - {1, 2} - 3; node 3 has both 1 and 2 at the same
        // legitimate depth, so its legitimate parent is 1.
        let mut t = Topology::new(4);
        t.add_edge(0, 1);
        t.add_edge(0, 2);
        t.add_edge(1, 3);
        t.add_edge(2, 3);
        let st = SpanningTree::new(&t, 0);
        assert_eq!(st.legit_parent(3), Some(1));
    }

    #[test]
    fn checker_certifies_at_most_the_predicted_radius() {
        use nonmask_checker::{certify_containment, CheckOptions, Fairness, StateSpace};
        // Ring 0-1-2-3 with the liar at 2: nodes 1 and 3 sit exactly
        // between root and liar, so the strict rule predicts radius 1.
        // But both reach the root directly and id 0 wins every value
        // tie, so no lie can steal a parent: the true radius is 0.
        let t = Topology::ring(4);
        let st = SpanningTree::with_byzantine(&t, 0, &[2]);
        assert_eq!(st.predicted_radius(), 1, "strict rule counts the ties");
        let space = StateSpace::enumerate(st.program()).unwrap();
        let verdict = certify_containment(
            &space,
            st.program(),
            |r| st.containment_goal(r),
            t.diameter(),
            Fairness::WeaklyFair,
            CheckOptions::default(),
        )
        .unwrap();
        assert_eq!(verdict.radius, Some(0), "the tie-break protects 1 and 3");
    }

    #[test]
    fn checker_certifies_the_predicted_radius_on_a_line() {
        use nonmask_checker::{certify_containment, CheckOptions, Fairness, StateSpace};
        // Line 0-1-2-3 with the liar at 3: node 2 is strictly closer
        // to the liar, and a small lie genuinely drags its distance
        // down — strict prediction and certified radius agree at 1.
        let t = Topology::line(4);
        let st = SpanningTree::with_byzantine(&t, 0, &[3]);
        assert_eq!(st.predicted_radius(), 1);
        let space = StateSpace::enumerate(st.program()).unwrap();
        let verdict = certify_containment(
            &space,
            st.program(),
            |r| st.containment_goal(r),
            t.diameter(),
            Fairness::WeaklyFair,
            CheckOptions::default(),
        )
        .unwrap();
        assert_eq!(verdict.radius, Some(1));
    }

    #[cfg(feature = "planted-bug")]
    #[test]
    fn mutant_layout_matches_reference() {
        let t = Topology::ring(4);
        let healthy = SpanningTree::new(&t, 0);
        let mutant = planted_trusting_mutant(&t, 0, 2, 1);
        assert_eq!(
            healthy.program().var_ids().count(),
            mutant.var_ids().count()
        );
        assert_eq!(
            healthy.program().action_ids().count(),
            mutant.action_ids().count()
        );
    }
}
