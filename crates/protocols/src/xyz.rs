//! The paper's didactic three-variable example (§4 and §6).
//!
//! The invariant is the conjunction of two constraints over integers
//! `x`, `y`, `z`:
//!
//! - `x != y`
//! - `x <= z`
//!
//! Three convergence-action choices illustrate the method:
//!
//! - [`out_tree`] (§4): fix `x != y` by changing `y`, fix `x <= z` by
//!   raising `z`. The constraint graph is the out-tree of the paper's
//!   figure; Theorem 1 applies.
//! - [`ordered`] (§6, second half): both actions write `x`, but the
//!   `x != y` repair *decreases* `x`, preserving `x <= z`; a linear
//!   preservation order exists and Theorem 2 applies.
//! - [`interfering`] (§6, first half): both actions write `x`
//!   carelessly — "executing one can violate the constraint of the other,
//!   then executing the other can violate the constraint of the one, and
//!   so on". No theorem applies, and the model checker exhibits the
//!   livelock.

use nonmask::{Design, DesignError};
use nonmask_graph::NodePartition;
use nonmask_program::Domain;
use nonmask_program::{Predicate, Program, VarId};

/// Upper bound of the variable domains used by the example designs.
pub const BOUND: i64 = 4;

/// Handles to the example's variables within its program.
#[derive(Debug, Clone, Copy)]
pub struct XyzVars {
    /// The shared variable `x`.
    pub x: VarId,
    /// The variable `y` of constraint `x != y`.
    pub y: VarId,
    /// The variable `z` of constraint `x <= z`.
    pub z: VarId,
}

fn constraints(x: VarId, y: VarId, z: VarId) -> (Predicate, Predicate) {
    (
        Predicate::new("x!=y", [x, y], move |s| s.get(x) != s.get(y)),
        Predicate::new("x<=z", [x, z], move |s| s.get(x) <= s.get(z)),
    )
}

fn partition(x: VarId, y: VarId, z: VarId) -> NodePartition {
    NodePartition::new()
        .group("x", [x])
        .group("y", [y])
        .group("z", [z])
}

/// The §4 design: repair `x != y` by bumping `y`, repair `x <= z` by
/// raising `z`. Constraint graph: `x → y`, `x → z` (the paper's figure);
/// Theorem 1 applies.
///
/// # Errors
///
/// Construction itself cannot fail; the `Result` mirrors
/// [`Design::builder`]'s validation.
pub fn out_tree() -> Result<(Design, XyzVars), DesignError> {
    let mut b = Program::builder("xyz-out-tree");
    let x = b.var("x", Domain::range(0, BOUND));
    let y = b.var("y", Domain::range(0, BOUND));
    let z = b.var("z", Domain::range(0, BOUND));
    let fix_y = b.convergence_action(
        "fix-neq: change y",
        [x, y],
        [y],
        move |s| s.get(x) == s.get(y),
        move |s| {
            let v = s.get(y);
            s.set(y, (v + 1) % (BOUND + 1));
        },
    );
    let fix_z = b.convergence_action(
        "fix-le: raise z",
        [x, z],
        [z],
        move |s| s.get(x) > s.get(z),
        move |s| {
            let v = s.get(x);
            s.set(z, v);
        },
    );
    let program = b.build();
    let (c_neq, c_le) = constraints(x, y, z);
    let design = Design::builder(program)
        .partition(partition(x, y, z))
        .constraint("x!=y", c_neq, fix_y)
        .constraint("x<=z", c_le, fix_z)
        .build()?;
    Ok((design, XyzVars { x, y, z }))
}

/// The §6 ordered design: repair `x != y` by *decreasing* `x` (which
/// preserves `x <= z`), repair `x <= z` by lowering `x` to `z`. Both edges
/// target node `x`; the graph is self-looping and the order
/// `[fix-le, fix-neq]` witnesses Theorem 2.
///
/// `y`'s domain starts at `1` so that decreasing `x` is always possible
/// when `x = y` (the paper works with unbounded integers; the floor is a
/// bounded-domain artifact).
///
/// # Errors
///
/// Construction itself cannot fail; the `Result` mirrors
/// [`Design::builder`]'s validation.
pub fn ordered() -> Result<(Design, XyzVars), DesignError> {
    let mut b = Program::builder("xyz-ordered");
    let x = b.var("x", Domain::range(0, BOUND));
    let y = b.var("y", Domain::range(1, BOUND));
    let z = b.var("z", Domain::range(0, BOUND));
    let fix_neq = b.convergence_action(
        "fix-neq: decrease x",
        [x, y],
        [x],
        move |s| s.get(x) == s.get(y),
        move |s| {
            let v = s.get(x);
            s.set(x, v - 1);
        },
    );
    let fix_le = b.convergence_action(
        "fix-le: lower x",
        [x, z],
        [x],
        move |s| s.get(x) > s.get(z),
        move |s| {
            let v = s.get(z);
            s.set(x, v);
        },
    );
    let program = b.build();
    let (c_neq, c_le) = constraints(x, y, z);
    let design = Design::builder(program)
        .partition(partition(x, y, z))
        .constraint("x!=y", c_neq, fix_neq)
        .constraint("x<=z", c_le, fix_le)
        .build()?;
    Ok((design, XyzVars { x, y, z }))
}

/// The §6 interfering design: repair `x != y` by *increasing* `x`, repair
/// `x <= z` by lowering `x` to `z`. Each repair can violate the other's
/// constraint, forever: when `y = z + 1`, raising `x` off `y` lands it
/// above `z`, and lowering it back to `z` … can land it on `y`.
///
/// Both edges target `x` and the actions admit no linear preservation
/// order, so no theorem applies — and the model checker finds the
/// livelock (E3 reproduces this).
///
/// # Errors
///
/// Construction itself cannot fail; the `Result` mirrors
/// [`Design::builder`]'s validation.
pub fn interfering() -> Result<(Design, XyzVars), DesignError> {
    let mut b = Program::builder("xyz-interfering");
    let x = b.var("x", Domain::range(0, BOUND));
    let y = b.var("y", Domain::range(0, BOUND));
    let z = b.var("z", Domain::range(0, BOUND));
    let fix_neq = b.convergence_action(
        "fix-neq: raise x",
        [x, y],
        [x],
        move |s| s.get(x) == s.get(y),
        move |s| {
            let v = s.get(x);
            s.set(x, (v + 1) % (BOUND + 1));
        },
    );
    let fix_le = b.convergence_action(
        "fix-le: lower x",
        [x, z],
        [x],
        move |s| s.get(x) > s.get(z),
        move |s| {
            let v = s.get(z);
            s.set(x, v);
        },
    );
    let program = b.build();
    let (c_neq, c_le) = constraints(x, y, z);
    let design = Design::builder(program)
        .partition(partition(x, y, z))
        .constraint("x!=y", c_neq, fix_neq)
        .constraint("x<=z", c_le, fix_le)
        .build()?;
    Ok((design, XyzVars { x, y, z }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask::TheoremOutcome;
    use nonmask_graph::Shape;

    #[test]
    fn out_tree_reproduces_paper_figure_and_theorem1() {
        let (design, _) = out_tree().unwrap();
        let graph = design.constraint_graph().unwrap();
        assert_eq!(graph.shape(), Shape::OutTree);
        assert_eq!(graph.edge_count(), 2);
        let report = design.verify().unwrap();
        assert!(matches!(report.theorem, TheoremOutcome::Theorem1 { .. }));
        assert!(report.is_tolerant());
        assert!(report.is_stabilizing());
        assert!(report.convergence_unfair.converges());
    }

    #[test]
    fn ordered_is_theorem2() {
        let (design, _) = ordered().unwrap();
        let graph = design.constraint_graph().unwrap();
        assert_eq!(graph.shape(), Shape::SelfLooping, "both edges target x");
        let report = design.verify().unwrap();
        assert!(
            matches!(report.theorem, TheoremOutcome::Theorem2 { .. }),
            "expected Theorem 2, got {:?}",
            report.theorem
        );
        assert!(report.is_tolerant());
        assert!(report.convergence_unfair.converges());
    }

    #[test]
    fn ordered_linear_order_puts_le_first() {
        let (design, _) = ordered().unwrap();
        let report = design.verify().unwrap();
        let TheoremOutcome::Theorem2 { orders } = report.theorem else {
            panic!("expected Theorem 2");
        };
        // Node x has two incoming edges; the valid order repairs `x<=z`
        // before `x!=y` (the decrease preserves `x<=z`, not vice versa).
        let x_order = orders
            .iter()
            .map(|(_, o)| o)
            .find(|o| o.len() == 2)
            .expect("node x has both edges");
        let graph = design.constraint_graph().unwrap();
        let first = graph.edge_ref(x_order[0]).constraint().0;
        let second = graph.edge_ref(x_order[1]).constraint().0;
        assert_eq!(design.constraints()[first].name(), "x<=z");
        assert_eq!(design.constraints()[second].name(), "x!=y");
    }

    #[test]
    fn interfering_livelocks() {
        let (design, _) = interfering().unwrap();
        let report = design.verify().unwrap();
        assert!(!report.theorem.applies());
        assert!(
            !report.convergence.converges(),
            "the paper's oscillation exists"
        );
        assert!(!report.is_tolerant());
        assert!(
            report.worst_case_moves.is_none(),
            "no finite bound under livelock"
        );
    }

    #[test]
    fn all_variants_share_the_invariant_semantics() {
        for (design, vars) in [out_tree().unwrap(), interfering().unwrap()] {
            let s = design.invariant();
            let p = design.program();
            let mk = |xv: i64, yv: i64, zv: i64| {
                let mut st = p.min_state();
                st.set(vars.x, xv);
                st.set(vars.y, yv);
                st.set(vars.z, zv);
                st
            };
            assert!(s.holds(&mk(1, 2, 3)));
            assert!(!s.holds(&mk(2, 2, 3)), "x=y violates");
            assert!(!s.holds(&mk(3, 2, 1)), "x>z violates");
        }
    }
}
