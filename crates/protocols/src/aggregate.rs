//! Global aggregation over diffusing waves — the "global state snapshot /
//! termination detection" applications §5.1 names.
//!
//! Each node carries an application value `v.j`. The *reflect* closure
//! action — which already reads every child — additionally folds the
//! subtree aggregate on the way up:
//!
//! ```text
//! agg.j := v.j + Σ_{k : P.k = j} agg.k        (on reflect)
//! ```
//!
//! so when the root reflects, `agg.0` is the sum of all `v.j` sampled by
//! the completed wave. As with [`crate::reset`], the aggregation variables
//! appear in *no* constraint, so the stabilizing diffusing design
//! (Theorem 1) carries over unchanged — after faults corrupt wave state or
//! aggregates, the next complete wave produces a correct aggregate again.
//! Summation specializes to termination detection (sum of activity flags
//! reaching zero) and to snapshot collection (any commutative fold).

use nonmask::{Design, DesignError};
use nonmask_graph::NodePartition;
use nonmask_program::{ActionId, Domain, Predicate, ProcessId, Program, State, VarId};

use crate::diffusing::{GREEN, RED};
use crate::topology::Tree;

/// A stabilizing sum-aggregation protocol over a rooted [`Tree`].
#[derive(Debug, Clone)]
pub struct WaveAggregation {
    tree: Tree,
    program: Program,
    color: Vec<VarId>,
    session: Vec<VarId>,
    value: Vec<VarId>,
    agg: Vec<VarId>,
    initiate: ActionId,
    reflect: Vec<ActionId>,
    combined: Vec<(usize, ActionId)>,
    max_value: i64,
}

impl WaveAggregation {
    /// Build the protocol; application values live in `0..=max_value`.
    ///
    /// # Panics
    ///
    /// Panics if `max_value < 1`.
    pub fn new(tree: &Tree, max_value: i64) -> Self {
        assert!(max_value >= 1, "values need at least two states");
        let n = tree.len();
        let mut b = Program::builder(format!("wave-aggregation[{n}]"));

        let mut color = Vec::with_capacity(n);
        let mut session = Vec::with_capacity(n);
        let mut value = Vec::with_capacity(n);
        let mut agg = Vec::with_capacity(n);
        for j in 0..n {
            color.push(b.var_of(
                format!("c.{j}"),
                Domain::enumeration(["green", "red"]),
                ProcessId(j),
            ));
            session.push(b.var_of(format!("sn.{j}"), Domain::Bool, ProcessId(j)));
            value.push(b.var_of(format!("v.{j}"), Domain::range(0, max_value), ProcessId(j)));
            // A subtree aggregate is at most n * max_value; faults may
            // write anything in that range.
            agg.push(b.var_of(
                format!("agg.{j}"),
                Domain::range(0, n as i64 * max_value),
                ProcessId(j),
            ));
        }

        let (c0, sn0) = (color[0], session[0]);
        let initiate = b.closure_action(
            "initiate@0",
            [c0, sn0],
            [c0, sn0],
            move |s| s.get(c0) == GREEN,
            move |s| {
                s.set(c0, RED);
                s.toggle(sn0);
            },
        );

        let mut combined = Vec::new();
        for j in 1..n {
            let p = tree.parent(j);
            let (cj, snj, cp, snp) = (color[j], session[j], color[p], session[p]);
            let id = b.combined_action(
                format!("propagate/repair@{j}"),
                [cj, snj, cp, snp],
                [cj, snj],
                move |s| {
                    s.get_bool(snj) != s.get_bool(snp) || (s.get(cj) == RED && s.get(cp) == GREEN)
                },
                move |s| {
                    let (c, sn) = (s.get(cp), s.get(snp));
                    s.set(cj, c);
                    s.set(snj, sn);
                },
            );
            combined.push((j, id));
        }

        // Reflect + fold: agg.j := v.j + Σ children agg.
        let mut reflect = Vec::new();
        for j in 0..n {
            let kids = tree.children(j);
            let (cj, snj, vj, aggj) = (color[j], session[j], value[j], agg[j]);
            let kid_vars: Vec<(VarId, VarId, VarId)> = kids
                .iter()
                .map(|&k| (color[k], session[k], agg[k]))
                .collect();
            let mut reads = vec![cj, snj, vj];
            for &(ck, snk, aggk) in &kid_vars {
                reads.extend([ck, snk, aggk]);
            }
            let cap = n as i64 * max_value;
            let kid_vars2 = kid_vars.clone();
            let id = b.closure_action(
                format!("reflect/fold@{j}"),
                reads,
                [cj, aggj],
                move |s| {
                    s.get(cj) == RED
                        && kid_vars.iter().all(|&(ck, snk, _)| {
                            s.get(ck) == GREEN && s.get_bool(snk) == s.get_bool(snj)
                        })
                },
                move |s| {
                    let total: i64 = s.get(vj)
                        + kid_vars2
                            .iter()
                            .map(|&(_, _, aggk)| s.get(aggk))
                            .sum::<i64>();
                    // Faulty child aggregates could overflow the domain;
                    // saturate (the next fault-free wave corrects it).
                    s.set(aggj, total.min(cap));
                    s.set(cj, GREEN);
                },
            );
            reflect.push(id);
        }

        WaveAggregation {
            tree: tree.clone(),
            program: b.build(),
            color,
            session,
            value,
            agg,
            initiate,
            reflect,
            combined,
            max_value,
        }
    }

    /// The underlying tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The guarded-command program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The application-value variable of node `j`.
    pub fn value_var(&self, j: usize) -> VarId {
        self.value[j]
    }

    /// The aggregate variable of node `j`.
    pub fn agg_var(&self, j: usize) -> VarId {
        self.agg[j]
    }

    /// The root's reflect/fold action (its execution completes a wave).
    pub fn root_reflect_action(&self) -> ActionId {
        self.reflect[0]
    }

    /// The root's initiate action.
    pub fn initiate_action(&self) -> ActionId {
        self.initiate
    }

    /// The true sum of all application values at `state`.
    pub fn true_sum(&self, state: &State) -> i64 {
        self.value.iter().map(|&v| state.get(v)).sum()
    }

    /// The root's latest completed-wave aggregate.
    pub fn root_aggregate(&self, state: &State) -> i64 {
        state.get(self.agg[0])
    }

    /// The wave-consistency invariant (identical to the diffusing
    /// computation's; values and aggregates are unconstrained).
    pub fn invariant(&self) -> Predicate {
        let rs: Vec<Predicate> = (1..self.tree.len())
            .map(|j| {
                let p = self.tree.parent(j);
                let (cj, snj, cp, snp) = (
                    self.color[j],
                    self.session[j],
                    self.color[p],
                    self.session[p],
                );
                Predicate::new(format!("R.{j}"), [cj, snj, cp, snp], move |s| {
                    (s.get(cj) == s.get(cp) && s.get_bool(snj) == s.get_bool(snp))
                        || (s.get(cj) == GREEN && s.get(cp) == RED)
                })
            })
            .collect();
        Predicate::all("S", rs.iter()).named("S")
    }

    /// The complete stabilizing [`Design`].
    ///
    /// # Errors
    ///
    /// Mirrors [`Design::builder`] validation.
    pub fn design(&self) -> Result<Design, DesignError> {
        let mut builder = Design::builder(self.program.clone())
            .partition(NodePartition::by_process(&self.program));
        for &(j, action) in &self.combined {
            let p = self.tree.parent(j);
            let (cj, snj, cp, snp) = (
                self.color[j],
                self.session[j],
                self.color[p],
                self.session[p],
            );
            builder = builder.constraint(
                format!("R.{j}"),
                Predicate::new(format!("R.{j}"), [cj, snj, cp, snp], move |s| {
                    (s.get(cj) == s.get(cp) && s.get_bool(snj) == s.get_bool(snp))
                        || (s.get(cj) == GREEN && s.get(cp) == RED)
                }),
                action,
            );
        }
        builder.build()
    }

    /// All-green initial state with the given values and zeroed aggregates.
    ///
    /// # Panics
    ///
    /// Panics if `values` has the wrong length or a value is out of range.
    pub fn initial_state(&self, values: &[i64]) -> State {
        assert_eq!(values.len(), self.tree.len());
        let mut s = self.program.min_state();
        for (j, &v) in values.iter().enumerate() {
            assert!((0..=self.max_value).contains(&v), "value out of range");
            s.set(self.value[j], v);
        }
        s
    }

    /// Run until the root completes its next wave, returning the aggregate
    /// it computed (executes at most `max_steps` actions under round-robin).
    pub fn run_one_wave(&self, state: &mut State, max_steps: u64) -> Option<i64> {
        use nonmask_program::scheduler::RoundRobin;
        use nonmask_program::{Executor, RunConfig};
        let exec = Executor::new(&self.program);
        let mut sched = RoundRobin::new();
        for _ in 0..max_steps {
            let before = state.clone();
            let report = exec.run(before, &mut sched, &RunConfig::default().max_steps(1));
            let completed = report.count_of(self.root_reflect_action()) > 0;
            *state = report.final_state;
            if completed {
                return Some(self.root_aggregate(state));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask::TheoremOutcome;

    #[test]
    fn design_remains_theorem1_with_aggregation() {
        let wa = WaveAggregation::new(&Tree::chain(3), 1);
        let report = wa.design().unwrap().verify().unwrap();
        assert!(
            matches!(report.theorem, TheoremOutcome::Theorem1 { .. }),
            "{:?}",
            report.theorem
        );
        assert!(report.is_tolerant(), "{}", report.summary());
        assert!(report.is_stabilizing());
    }

    #[test]
    fn completed_waves_compute_the_true_sum() {
        let tree = Tree::binary(7);
        let wa = WaveAggregation::new(&tree, 9);
        let values = [3i64, 1, 4, 1, 5, 9, 2];
        let mut state = wa.initial_state(&values);
        let agg = wa.run_one_wave(&mut state, 10_000).expect("wave completes");
        assert_eq!(agg, values.iter().sum::<i64>());
        assert_eq!(agg, wa.true_sum(&state));
    }

    #[test]
    fn aggregates_recover_after_corruption() {
        // Corrupt aggregates and wave state arbitrarily; after the system
        // re-stabilizes, the next COMPLETE wave reports the true sum again
        // (nonmasking: intermediate aggregates may be garbage).
        let tree = Tree::star(5);
        let wa = WaveAggregation::new(&tree, 5);
        let values = [2i64, 0, 5, 1, 3];
        let mut state = wa.initial_state(&values);
        // Garbage everywhere.
        for j in 0..5 {
            state.set(wa.agg_var(j), 17);
        }
        state.set(wa.program().var_by_name("c.2").unwrap(), RED);
        state.set(wa.program().var_by_name("sn.4").unwrap(), 1);

        // The first completed wave may fold stale child aggregates; by the
        // second complete wave every aggregate was recomputed from values.
        let _ = wa.run_one_wave(&mut state, 10_000).expect("first wave");
        let agg = wa.run_one_wave(&mut state, 10_000).expect("second wave");
        assert_eq!(agg, values.iter().sum::<i64>());
    }

    #[test]
    fn termination_detection_specialization() {
        // Activity flags as values: the wave detects global passivity
        // (sum = 0) exactly when every node is passive.
        let tree = Tree::chain(4);
        let wa = WaveAggregation::new(&tree, 1);
        let mut active = wa.initial_state(&[0, 1, 0, 1]);
        let agg = wa.run_one_wave(&mut active, 10_000).unwrap();
        assert_eq!(agg, 2, "two nodes still active");

        let mut passive = wa.initial_state(&[0, 0, 0, 0]);
        let agg = wa.run_one_wave(&mut passive, 10_000).unwrap();
        assert_eq!(agg, 0, "termination detected");
    }

    #[test]
    fn saturation_keeps_domains_closed() {
        use nonmask_checker::StateSpace;
        // Even with adversarial child aggregates the fold stays in domain
        // (checker would panic on escape during enumeration).
        let wa = WaveAggregation::new(&Tree::chain(3), 1);
        let space = StateSpace::enumerate(wa.program()).unwrap();
        assert!(!space.is_empty());
    }

    #[test]
    #[should_panic(expected = "value out of range")]
    fn out_of_range_values_rejected() {
        let wa = WaveAggregation::new(&Tree::chain(2), 3);
        let _ = wa.initial_state(&[1, 9]);
    }
}
