//! Dijkstra's *three-state* token protocol (his 1974 note's third
//! solution), mechanically verified.
//!
//! The paper's §7.1 reproduces Dijkstra's K-state ring, whose counter
//! domain must grow with the ring (`k >= n-1`; experiment E6b). Dijkstra's
//! third solution needs only **three** states per machine: machines
//! `0..n-1` in a line (with the top machine additionally reading the
//! bottom machine's state), `x.j ∈ {0,1,2}`, arithmetic mod 3:
//!
//! ```text
//! bottom (0):        x.0 + 1 = x.1                  → x.0 := x.0 + 2
//! middle (0<j<n-1):  x.j + 1 = x.(j-1)              → x.j := x.(j-1)
//!                    x.j + 1 = x.(j+1)              → x.j := x.(j+1)
//! top (n-1):         x.(n-2) = x.0 ∧
//!                    x.(n-2) + 1 ≠ x.(n-1)          → x.(n-1) := x.(n-2) + 1
//! ```
//!
//! Each rule's guard *is* a privilege. The module's tests verify, for
//! every line length enumerated: no state is deadlocked, the
//! one-privilege set is closed, and the protocol converges to it under
//! both the weakly fair and the **unfair** daemon (Dijkstra's central
//! daemon) — with no counter-size condition at all.
//!
//! The protocol is *not* expressed through the paper's constraint /
//! convergence decomposition (its legitimate-state structure resists
//! two-node constraints); it is included as a checker-verified baseline
//! showing the verification substrate is independent of the design
//! method. Historical note: this module's rules were themselves recovered
//! by model checking — candidate rule sets from memory were searched until
//! the checker accepted one, which turned out to be Dijkstra's original.

use nonmask_program::{ActionId, Domain, Predicate, ProcessId, Program, State, VarId};

/// Dijkstra's three-state protocol over a line of `n` machines.
#[derive(Debug, Clone)]
pub struct ThreeState {
    n: usize,
    program: Program,
    x: Vec<VarId>,
    actions_of: Vec<Vec<ActionId>>,
}

impl ThreeState {
    /// Build the protocol.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (bottom, top, and at least one middle machine).
    pub fn new(n: usize) -> Self {
        assert!(n >= 3, "the three-state protocol needs at least 3 machines");
        let mut b = Program::builder(format!("three-state[{n}]"));
        let x: Vec<VarId> = (0..n)
            .map(|j| b.var_of(format!("x.{j}"), Domain::range(0, 2), ProcessId(j)))
            .collect();

        let mut actions_of: Vec<Vec<ActionId>> = vec![Vec::new(); n];

        // Bottom machine: if S+1 = R then S := S+2.
        let (x0, x1) = (x[0], x[1]);
        actions_of[0].push(b.combined_action(
            "bottom@0",
            [x0, x1],
            [x0],
            move |s| (s.get(x0) + 1) % 3 == s.get(x1),
            move |s| {
                let v = (s.get(x0) + 2) % 3;
                s.set(x0, v);
            },
        ));

        // Middle machines: if S+1 = L then S := L; if S+1 = R then S := R.
        for j in 1..n - 1 {
            let (xl, xj, xr) = (x[j - 1], x[j], x[j + 1]);
            actions_of[j].push(b.combined_action(
                format!("middle-left@{j}"),
                [xl, xj],
                [xj],
                move |s| (s.get(xj) + 1) % 3 == s.get(xl),
                move |s| {
                    let v = s.get(xl);
                    s.set(xj, v);
                },
            ));
            actions_of[j].push(b.combined_action(
                format!("middle-right@{j}"),
                [xj, xr],
                [xj],
                move |s| (s.get(xj) + 1) % 3 == s.get(xr),
                move |s| {
                    let v = s.get(xr);
                    s.set(xj, v);
                },
            ));
        }

        // Top machine: if L = B and L+1 != S then S := L+1, where B is the
        // bottom machine's state.
        let (xt, xp, xb) = (x[n - 1], x[n - 2], x[0]);
        actions_of[n - 1].push(b.combined_action(
            format!("top@{}", n - 1),
            [xp, xt, xb],
            [xt],
            move |s| s.get(xp) == s.get(xb) && (s.get(xp) + 1) % 3 != s.get(xt),
            move |s| {
                let v = (s.get(xp) + 1) % 3;
                s.set(xt, v);
            },
        ));

        ThreeState {
            n,
            program: b.build(),
            x,
            actions_of,
        }
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never empty (`n >= 3`); provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The guarded-command program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The state variable of machine `j`.
    pub fn state_var(&self, j: usize) -> VarId {
        self.x[j]
    }

    /// The actions of machine `j` (middles have two: left- and
    /// right-pulled).
    pub fn actions_of(&self, j: usize) -> &[ActionId] {
        &self.actions_of[j]
    }

    /// Number of privileges machine `j` holds at `state` (a middle machine
    /// can hold two).
    pub fn privileges_of(&self, state: &State, j: usize) -> usize {
        self.actions_of[j]
            .iter()
            .filter(|&&a| self.program.action(a).enabled(state))
            .count()
    }

    /// Total privileges at `state`.
    pub fn total_privileges(&self, state: &State) -> usize {
        (0..self.n).map(|j| self.privileges_of(state, j)).sum()
    }

    /// The invariant: exactly one privilege in the whole line.
    pub fn invariant(&self) -> Predicate {
        let program = self.program.clone();
        let reads: Vec<VarId> = self.x.clone();
        Predicate::new("one-privilege", reads, move |s| {
            program.enabled_actions(s).len() == 1
        })
    }

    /// A canonical legitimate state (all zero: only the top machine is
    /// privileged, since `x.(n-2) = x.0` and `x.(n-2)+1 ≠ x.(n-1)`).
    pub fn legitimate_state(&self) -> State {
        State::zeroed(self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_checker::{check_convergence, is_closed, Fairness, StateSpace};
    use nonmask_program::scheduler::Random;
    use nonmask_program::{Executor, RunConfig};

    #[test]
    fn stabilizes_for_all_small_sizes_even_unfair() {
        for n in [3usize, 4, 5, 6] {
            let ts = ThreeState::new(n);
            let space = StateSpace::enumerate(ts.program()).unwrap();
            let s = ts.invariant();
            assert!(
                is_closed(&space, ts.program(), &s).unwrap().is_none(),
                "n={n}: one-privilege set is closed"
            );
            for fairness in [Fairness::WeaklyFair, Fairness::Unfair] {
                let r = check_convergence(
                    &space,
                    ts.program(),
                    &Predicate::always_true(),
                    &s,
                    fairness,
                )
                .unwrap();
                assert!(r.converges(), "n={n} {fairness}: {r:?}");
            }
        }
    }

    #[test]
    fn no_counter_size_condition() {
        // The K-state ring needs k >= n-1 (E6b); three states suffice for
        // n = 7 machines (3^7 = 2187 states, exhaustive).
        let ts = ThreeState::new(7);
        let space = StateSpace::enumerate(ts.program()).unwrap();
        let r = check_convergence(
            &space,
            ts.program(),
            &Predicate::always_true(),
            &ts.invariant(),
            Fairness::WeaklyFair,
        )
        .unwrap();
        assert!(r.converges());
    }

    #[test]
    fn legitimate_state_has_one_privilege() {
        let ts = ThreeState::new(5);
        let st = ts.legitimate_state();
        assert_eq!(ts.total_privileges(&st), 1);
        assert_eq!(ts.privileges_of(&st, 4), 1, "top holds the privilege");
        assert!(ts.invariant().holds(&st));
    }

    #[test]
    fn no_state_is_deadlocked() {
        // Some machine is always privileged: the line never halts.
        let ts = ThreeState::new(4);
        let space = StateSpace::enumerate(ts.program()).unwrap();
        for id in space.ids() {
            assert!(
                !space.successors(id).is_empty(),
                "state {:?} is deadlocked",
                space.state(id).slots()
            );
        }
    }

    #[test]
    fn privilege_bounces_between_ends() {
        // In legitimate operation the single privilege travels down to the
        // bottom and back up to the top, moving to an adjacent machine
        // each step.
        let ts = ThreeState::new(4);
        let mut state = ts.legitimate_state();
        let mut holders = Vec::new();
        for _ in 0..24 {
            let enabled = ts.program().enabled_actions(&state);
            assert_eq!(enabled.len(), 1);
            let holder = (0..4)
                .find(|&j| ts.actions_of(j).contains(&enabled[0]))
                .unwrap();
            holders.push(holder);
            ts.program().action(enabled[0]).apply(&mut state);
        }
        assert!(holders.contains(&0) && holders.contains(&3), "{holders:?}");
        for w in holders.windows(2) {
            assert!(w[0].abs_diff(w[1]) <= 1, "privilege jumped: {holders:?}");
        }
    }

    #[test]
    fn recovers_from_random_corruption() {
        let ts = ThreeState::new(6);
        let s = ts.invariant();
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        for seed in 0..10 {
            let start = ts.program().random_state(&mut rng);
            let report = Executor::new(ts.program()).run(
                start,
                &mut Random::seeded(seed),
                &RunConfig::default().stop_when(&s, 1).max_steps(100_000),
            );
            assert!(report.stop.is_stabilized());
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_small_rejected() {
        let _ = ThreeState::new(2);
    }
}
