//! The paper's worked protocol designs, built with the [`nonmask`] method.
//!
//! | Module | Paper anchor | Constraint graph | Theorem |
//! |---|---|---|---|
//! | [`xyz`] | §4 figure, §6 examples | out-tree / self-looping / cyclic | 1 / 2 / none (livelock) |
//! | [`diffusing`] | §5.1 | out-tree mirroring the process tree | 1 |
//! | [`token_ring`] | §7.1 | path, two layers | 3 |
//! | [`atomic`] | named in the abstract (full version only) | ring, even/odd layers | 3 |
//! | [`reset`] | §5.1's application list, ref \[12\] | out-tree (rides on diffusing) | 1 |
//! | [`aggregate`] | §5.1's application list (snapshot / termination detection) | out-tree (rides on diffusing) | 1 |
//! | [`coloring`] | beyond the paper: a *silent* Theorem-1 design | out-tree | 1 |
//! | [`three_state`] | Dijkstra's 3-state line (checker-verified baseline) | (not constraint-based) | — |
//! | [`bfs`] | beyond the paper: Dubois–Masuzawa–Tixeuil min+1 BFS with Byzantine containment | (general graph) | — |
//! | [`spanning_tree`] | beyond the paper: DMT stabilizing spanning tree with Byzantine containment | (general graph) | — |
//!
//! Every protocol exposes its program, its invariant, and (where the
//! constraint decomposition exists) a complete [`nonmask::Design`] so that
//! the whole verification pipeline — closure checks, theorem side
//! conditions, ground-truth model checking — runs against it. Deliberately
//! *broken* variants ([`xyz::interfering`],
//! [`diffusing::DiffusingComputation::misdesigned`]) reproduce the paper's
//! interference counterexamples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod atomic;
pub mod bfs;
pub mod coloring;
pub mod diffusing;
pub mod reset;
pub mod spanning_tree;
pub mod three_state;
pub mod token_ring;
pub mod topology;
pub mod xyz;

pub use bfs::MinPlusOne;
pub use spanning_tree::SpanningTree;
pub use topology::Tree;
