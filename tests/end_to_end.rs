//! End-to-end integration across all crates: design → verify → execute →
//! inject faults → refine to message passing → run on threads.

use nonmask_checker::{worst_case_moves, StateSpace};
use nonmask_program::fault::BurstCorruption;
use nonmask_program::scheduler::{Adversarial, Random, RoundRobin};
use nonmask_program::{Executor, Predicate, RunConfig, StopReason, TransientCorruption};
use nonmask_protocols::diffusing::DiffusingComputation;
use nonmask_protocols::token_ring::TokenRing;
use nonmask_protocols::Tree;
use nonmask_sim::threaded::run_threaded_until;
use nonmask_sim::{Refinement, SimConfig, Simulation};

/// The full lifecycle on one protocol: verification, fault-free closure,
/// fault recovery, refinement.
#[test]
fn diffusing_lifecycle() {
    let tree = Tree::binary(6);
    let dc = DiffusingComputation::new(&tree);
    let design = dc.design().unwrap();

    // 1. Verified tolerant.
    let report = design.verify().unwrap();
    assert!(report.is_tolerant());

    // 2. Fault-free runs keep S (closure), forever.
    let s = dc.invariant();
    let run = Executor::new(dc.program()).run(
        dc.initial_state(),
        &mut RoundRobin::new(),
        &RunConfig::default()
            .max_steps(500)
            .watch(&s)
            .validate_writes(true)
            .validate_domains(true),
    );
    assert_eq!(run.stop, StopReason::MaxSteps);
    assert_eq!(run.watch_hits[0], run.steps, "S held after every step");

    // 3. Burst corruption recovers.
    let mut faults = BurstCorruption::new([100, 300], 5, 7);
    let run = Executor::new(dc.program()).run_with_faults(
        dc.initial_state(),
        &mut Random::seeded(3),
        &mut faults,
        &RunConfig::default().max_steps(2_000).watch(&s),
    );
    assert!(run.fault_events > 0);
    assert!(s.holds(&run.final_state), "re-stabilized by the end");

    // 4. Message-passing refinement recovers too.
    let refinement = Refinement::new(dc.program()).unwrap();
    let mut sim = Simulation::new(
        dc.program(),
        refinement.clone(),
        dc.initial_state(),
        SimConfig {
            seed: 1,
            loss_rate: 0.1,
            ..SimConfig::default()
        },
    );
    sim.corrupt_process(3);
    sim.corrupt_process(5);
    let sim_report = sim.run_until_stable(&s, 5);
    assert!(sim_report.stabilized_at_round.is_some());

    // 5. Real threads observe S on a consistent snapshot.
    let threaded = run_threaded_until(
        dc.program(),
        &refinement,
        &dc.initial_state(),
        50_000_000,
        Some(&s),
    );
    assert!(threaded.stopped_on_predicate);
    assert!(s.holds(&threaded.final_state));
}

/// The adversarial scheduler cannot defeat the token ring (it converges
/// under the unfair daemon), and every adversarial run respects the
/// checker's worst-case bound.
#[test]
fn token_ring_adversarial_respects_bound() {
    let ring = TokenRing::new(4, 4);
    let s = ring.invariant();
    let space = StateSpace::enumerate(ring.program()).unwrap();
    let bound = worst_case_moves(&space, ring.program(), &Predicate::always_true(), &s)
        .unwrap()
        .expect("finite bound");

    // Try several adversarial priority orders from several corrupt states.
    for (i, id) in space.ids().enumerate() {
        if i % 17 != 0 {
            continue; // sample the space
        }
        let start = space.state(id);
        for perm in 0..4u32 {
            let ids: Vec<_> = ring.program().action_ids().collect();
            let order: Vec<_> = (0..ids.len())
                .map(|i| ids[(i + perm as usize) % ids.len()])
                .collect();
            let mut sched = Adversarial::with_priority(order);
            let report = Executor::new(ring.program()).run(
                start.clone(),
                &mut sched,
                &RunConfig::default().stop_when(&s, 1).max_steps(bound + 1),
            );
            assert!(
                report.stop.is_stabilized() || s.holds(&report.final_state),
                "bound {bound} exceeded from {:?} with priority shift {perm}",
                start.slots()
            );
        }
    }
}

/// Sustained faults on the ring: availability stays high at low rates.
#[test]
fn token_ring_availability_under_load() {
    let ring = TokenRing::new(5, 5);
    let s = ring.invariant();
    let mut faults = TransientCorruption::new(0.005, 13);
    let report = Executor::new(ring.program()).run_with_faults(
        ring.initial_state(),
        &mut Random::seeded(5),
        &mut faults,
        &RunConfig::default().max_steps(20_000).watch(&s),
    );
    let availability = report.availability(0).unwrap();
    assert!(availability > 0.95, "availability {availability}");
}

/// The checker's worst-case bound is consistent between the windowed
/// design's report and a direct call.
#[test]
fn windowed_ring_bound_consistency() {
    let (design, _) = nonmask_protocols::token_ring::windowed_design(3, 3).unwrap();
    let report = design.verify().unwrap();
    let space = StateSpace::enumerate(design.program()).unwrap();
    let direct = worst_case_moves(
        &space,
        design.program(),
        design.fault_span(),
        &design.invariant(),
    )
    .unwrap();
    assert_eq!(report.worst_case_moves, direct);
}

/// States and domains serialize through `nonmask_program::json` (the
/// in-tree replacement for the old `serde` feature).
#[test]
fn json_roundtrips() {
    use nonmask_program::json;
    use nonmask_program::{Domain, State};
    let s = State::new(vec![3, 1, 4]);
    let back = json::state_from_json(&json::state_to_json(&s)).unwrap();
    assert_eq!(s, back);

    for d in [
        Domain::Bool,
        Domain::range(0, 7),
        Domain::enumeration(["green", "red"]),
        Domain::Unbounded,
    ] {
        let back = json::domain_from_json(&json::domain_to_json(&d)).unwrap();
        assert_eq!(d, back);
    }
}

/// A divergence witness can be expanded into a replayable counterexample
/// path from an initial state into the livelock.
#[test]
fn divergence_counterexample_path() {
    use nonmask_checker::{check_convergence, shortest_path_to, ConvergenceResult, Fairness};
    let (design, _) = nonmask_protocols::xyz::interfering().unwrap();
    let program = design.program();
    let space = StateSpace::enumerate(program).unwrap();
    let s = design.invariant();
    let t = Predicate::always_true();
    let ConvergenceResult::Divergence { states, .. } =
        check_convergence(&space, program, &t, &s, Fairness::WeaklyFair).unwrap()
    else {
        panic!("interfering design should diverge");
    };
    let path = shortest_path_to(&space, &t, &states)
        .unwrap()
        .expect("reachable livelock");
    assert!(!path.is_empty());
    assert!(
        path[0].action.is_none(),
        "the start state has no incoming action"
    );
    // The path is a real computation that replays step by step: each
    // recorded action is enabled in the previous state and produces
    // exactly the next recorded state.
    for w in path.windows(2) {
        let a = w[1].action.expect("every later step records its action");
        assert!(
            program.enabled_actions(&w[0].state).contains(&a),
            "recorded action is not enabled"
        );
        assert_eq!(
            program.action(a).successor(&w[0].state),
            w[1].state,
            "replaying the recorded action diverges from the witness path"
        );
    }
    assert!(
        states.contains(&path.last().unwrap().state),
        "path ends in the livelock"
    );
}

/// Doubling `steps_per_round` never slows down stabilization (in rounds).
#[test]
fn sim_steps_per_round_speedup() {
    let ring = TokenRing::new(6, 6);
    let refinement = Refinement::new(ring.program()).unwrap();
    let corrupt = ring.program().state_from([5, 2, 0, 4, 1, 3]).unwrap();
    let rounds = |spr: usize| {
        let mut sim = Simulation::new(
            ring.program(),
            refinement.clone(),
            corrupt.clone(),
            SimConfig {
                steps_per_round: spr,
                ..SimConfig::default()
            },
        );
        sim.run_until_stable(&ring.invariant(), 3)
            .stabilized_at_round
            .expect("stabilizes")
    };
    assert!(rounds(2) <= rounds(1));
}

/// The convergence stair also verifies under the unfair daemon for the
/// countdown-style stages of the windowed ring.
#[test]
fn stair_verifies_unfair_too() {
    use nonmask::ConvergenceStair;
    use nonmask_checker::Fairness;
    let (design, handles) = nonmask_protocols::token_ring::windowed_design(3, 2).unwrap();
    let program = design.program().clone();
    let space = StateSpace::enumerate(&program).unwrap();
    let xs = handles.x.clone();
    let layer1 = Predicate::new("layer1", xs.iter().copied(), {
        let xs = xs.clone();
        move |s| (1..xs.len()).all(|j| s.get(xs[j - 1]) >= s.get(xs[j]))
    });
    let stair = ConvergenceStair::new([Predicate::always_true(), layer1, design.invariant()]);
    let report = stair.verify(&space, &program, Fairness::Unfair).unwrap();
    assert!(report.ok(), "{report:?}");
}

/// The event-driven engine's hold-window resets when the predicate is
/// re-violated before the window elapses.
#[test]
fn event_engine_window_resets() {
    use nonmask_sim::{EventConfig, EventSim};
    let ring = TokenRing::new(4, 4);
    let refinement = Refinement::new(ring.program()).unwrap();
    let corrupt = ring.program().state_from([2, 0, 3, 1]).unwrap();
    let mut sim = EventSim::new(
        ring.program(),
        refinement,
        corrupt,
        EventConfig {
            seed: 5,
            ..EventConfig::default()
        },
    );
    let report = sim.run_until_stable(&ring.invariant(), 3.0, 50_000.0);
    let at = report.stabilized_at.expect("stabilizes");
    // The invariant held continuously for the full window after `at`.
    assert!(report.end_time - at >= 3.0);
    // And the invariant is closed, so the final state is legitimate.
    assert_eq!(ring.privileges(&report.final_state).len(), 1);
}

/// CandidateTriple closure checking flags a fault span that program
/// actions escape.
#[test]
fn candidate_triple_detects_unclosed_span() {
    use nonmask::CandidateTriple;
    let ring = TokenRing::new(3, 3);
    let x0 = ring.counter_var(0);
    // "x.0 <= 1" is not closed: the root increments x.0 to 2.
    let bogus_span = Predicate::new("x0<=1", [x0], move |s| s.get(x0) <= 1);
    let triple = CandidateTriple::new(ring.program().clone(), ring.invariant(), bogus_span);
    let space = StateSpace::enumerate(triple.program()).unwrap();
    let (_, t_violation) = triple.check_closure(&space).unwrap();
    assert!(t_violation.is_some(), "the bogus span is escaped");
}
