//! Large-space acceptance: a full-size token ring (`8^8 = 16,777,216`
//! states) enumerates into the compact CSR representation and passes
//! closure + convergence within the default memory budget — and a
//! `2^28`-state diffusing computation, whose transition table does *not*
//! fit the default budget, still gets a full convergence verdict through
//! the out-of-core frontier mode.
//!
//! Ignored by default (they sweep 16.7M–268M states on one core); run
//! with `cargo test --release -- --ignored`.

use nonmask_checker::{
    check_convergence_bits, check_convergence_frontier, is_closed_bits, Bitset, CheckOptions,
    ConvergenceResult, Fairness, StateSpace, DEFAULT_MEMORY_BUDGET,
};
use nonmask_protocols::diffusing::DiffusingComputation;
use nonmask_protocols::token_ring::TokenRing;
use nonmask_protocols::Tree;

#[test]
#[ignore = "sweeps 16.7M states; run with --ignored"]
fn token_ring_16m_states_within_default_budget() {
    let ring = TokenRing::new(8, 8);
    let opts = CheckOptions::default();
    let space = StateSpace::enumerate_with_options(ring.program(), opts)
        .expect("8^8 states fit the default memory budget");
    assert_eq!(space.len(), 8usize.pow(8));

    let bytes = space.resident_bytes();
    assert!(
        bytes as u64 <= DEFAULT_MEMORY_BUDGET,
        "resident {bytes} bytes exceeds the default budget"
    );
    let per_state = bytes as f64 / space.len() as f64;
    assert!(
        per_state < 64.0,
        "CSR should stay under 64 bytes/state on the ring, got {per_state:.1}"
    );

    let s = ring.invariant();
    let s_bits = Bitset::for_predicate(&space, &s, opts).unwrap();
    assert!(
        is_closed_bits(&space, ring.program(), &s_bits, opts)
            .unwrap()
            .is_none(),
        "the invariant is closed"
    );
    let t_bits = Bitset::ones(space.len());
    let r = check_convergence_bits(
        &space,
        ring.program(),
        &t_bits,
        &s_bits,
        Fairness::WeaklyFair,
        opts,
    )
    .unwrap();
    assert!(r.converges(), "{r:?}");
}

/// The headline out-of-core case: a 14-node diffusing computation has
/// `4^14 = 2^28 = 268,435,456` states and ~2.9G transitions, so its CSR
/// table (~24 GB) cannot be made resident under the default 8 GiB budget
/// — the in-core path must refuse with a budget error, and the frontier
/// mode must still deliver the full convergence verdict.
#[test]
#[ignore = "sweeps 2^28 states out-of-core; takes hours on one core"]
fn diffusing_2e28_states_converges_within_default_budget() {
    let dc = DiffusingComputation::new(&Tree::binary(14));
    let opts = CheckOptions::default();

    match StateSpace::enumerate_with_options(dc.program(), opts) {
        Err(nonmask_checker::SpaceError::BudgetExceeded {
            required, budget, ..
        }) => {
            assert!(required > budget, "refusal must be over-budget");
        }
        Ok(_) => panic!("2^28-state CSR must not fit the default budget"),
        Err(other) => panic!("expected BudgetExceeded, got {other}"),
    }

    // The paper's diffusing computation converges without fairness
    // (tests/paper_claims.rs), so the frontier peel resolves everything.
    let r = check_convergence_frontier(
        dc.program(),
        &nonmask_program::Predicate::always_true(),
        &dc.invariant(),
        Fairness::Unfair,
    )
    .expect("frontier mode stays within the default budget");
    assert!(matches!(r, ConvergenceResult::Converges), "{r:?}");
}
