//! Large-space acceptance: a full-size token ring (`8^8 = 16,777,216`
//! states) enumerates into the compact CSR representation and passes
//! closure + convergence within the default memory budget.
//!
//! Ignored by default (it sweeps ~16.7M states several times, which takes
//! minutes on one core); run with `cargo test --release -- --ignored`.

use nonmask_checker::{
    check_convergence_bits, is_closed_bits, Bitset, CheckOptions, Fairness, StateSpace,
    DEFAULT_MEMORY_BUDGET,
};
use nonmask_protocols::token_ring::TokenRing;

#[test]
#[ignore = "sweeps 16.7M states; run with --ignored"]
fn token_ring_16m_states_within_default_budget() {
    let ring = TokenRing::new(8, 8);
    let opts = CheckOptions::default();
    let space = StateSpace::enumerate_with_options(ring.program(), opts)
        .expect("8^8 states fit the default memory budget");
    assert_eq!(space.len(), 8usize.pow(8));

    let bytes = space.resident_bytes();
    assert!(
        bytes <= DEFAULT_MEMORY_BUDGET,
        "resident {bytes} bytes exceeds the default budget"
    );
    let per_state = bytes as f64 / space.len() as f64;
    assert!(
        per_state < 64.0,
        "CSR should stay under 64 bytes/state on the ring, got {per_state:.1}"
    );

    let s = ring.invariant();
    let s_bits = Bitset::for_predicate(&space, &s, opts).unwrap();
    assert!(
        is_closed_bits(&space, ring.program(), &s_bits, opts)
            .unwrap()
            .is_none(),
        "the invariant is closed"
    );
    let t_bits = Bitset::ones(space.len());
    let r = check_convergence_bits(
        &space,
        ring.program(),
        &t_bits,
        &s_bits,
        Fairness::WeaklyFair,
        opts,
    )
    .unwrap();
    assert!(r.converges(), "{r:?}");
}
