//! End-to-end: a journaled checker run over the token ring produces a
//! constraint-repair timeline whose order matches an independent replay
//! of the witness path from [`shortest_path_to`].
//!
//! This is the §4 story closed end to end: the checker finds a witness
//! computation from a corrupted state into the all-agree states, the
//! replay journals each constraint repair, and the journal — parsed back
//! through the same schema the `trace` subcommand uses — tells exactly
//! the same story as evaluating the constraints over the path by hand.

use nonmask_checker::convergence::shortest_path_to;
use nonmask_checker::{replay_constraints, CheckOptions, StateSpace};
use nonmask_conform::{run_sim_journaled, ContainmentMap, FaultSchedule, SimRunConfig};
use nonmask_graph::Topology;
use nonmask_obs::{containment_radius, parse_journal, render_timeline, repair_order, Journal};
use nonmask_program::{Predicate, State};
use nonmask_protocols::token_ring::TokenRing;
use nonmask_protocols::MinPlusOne;

#[test]
fn journaled_repair_timeline_matches_independent_replay() {
    let n = 4usize;
    let k = 4i64;
    let ring = TokenRing::new(n, k);
    let program = ring.program();

    // §4 decomposition of the ring invariant: c.j ≡ `x.j = x.(j-1)`.
    let constraints: Vec<Predicate> = (1..n)
        .map(|j| {
            let xj = ring.counter_var(j);
            let xp = ring.counter_var(j - 1);
            Predicate::new(format!("c.{j}"), [xj, xp], move |s| s.get(xj) == s.get(xp))
        })
        .collect();

    let (journal, buffer) = Journal::memory();
    let opts = CheckOptions::default();
    let space = StateSpace::enumerate_journaled(program, opts, &journal).expect("enumerate");

    // A maximally disagreeing start: every boundary violates its constraint.
    let corrupt = program
        .state_from((0..n).map(|j| ((n - j) as i64) % k).collect::<Vec<_>>())
        .expect("corrupt state");
    let all_vars: Vec<_> = program.var_ids().collect();
    let corrupt_eq = corrupt.clone();
    let from = Predicate::new("corrupt-start", all_vars.clone(), move |s| *s == corrupt_eq);
    let agree = Predicate::new("all-agree", all_vars, {
        let constraints = constraints.clone();
        move |s| constraints.iter().all(|c| c.holds(s))
    });
    let targets: Vec<State> = space
        .satisfying(&agree)
        .expect("target scan")
        .into_iter()
        .map(|id| space.state(id))
        .collect();
    let path = shortest_path_to(&space, &from, &targets)
        .expect("path search")
        .expect("a corrupt token ring converges, so a witness path exists");
    let transitions = replay_constraints(program, &path, &constraints, &journal);
    journal.flush();

    // Independent replay: evaluate the constraints over the path states
    // directly, recording each false→true flip, without the journal.
    let mut held: Vec<bool> = constraints
        .iter()
        .map(|c| c.holds(&path[0].state))
        .collect();
    let mut expected_repairs = Vec::new();
    for step in &path[1..] {
        for (ci, c) in constraints.iter().enumerate() {
            let holds = c.holds(&step.state);
            if holds && !held[ci] {
                expected_repairs.push(c.name().to_string());
            }
            held[ci] = holds;
        }
    }
    assert!(
        !expected_repairs.is_empty(),
        "the corrupt start must need repairs"
    );
    assert!(held.iter().all(|h| *h), "the path must end all-agree");

    // The journal tells the same story, in the same order.
    let records = parse_journal(&buffer.contents()).expect("journal parses schema-clean");
    assert_eq!(repair_order(&records), expected_repairs);

    // The rendered timeline names every repaired constraint.
    let rendered = render_timeline(&records);
    for name in &expected_repairs {
        assert!(
            rendered.contains(&format!("constraint `{name}` repaired")),
            "missing repair of {name} in:\n{rendered}"
        );
    }

    // And replay_constraints' returned transitions agree with the journal.
    let repairs_in_transitions = transitions
        .iter()
        .filter(|t| t.repaired_by.is_some())
        .count();
    assert_eq!(repairs_in_transitions, expected_repairs.len());
}

/// The Byzantine analogue of the repair story: a journaled run against
/// permanent liars ends in a containment suffix whose rendered timeline
/// and recovered radius are pinned, so any drift in how the layers
/// report containment shows up as a diff here rather than only in the
/// cross-layer agreement battery.
#[test]
fn containment_timeline_pins_the_measured_radius() {
    // line(6), root 0, liar at 5: safe set [T,T,T,F,F] ⇒ predicted
    // radius 2, with nodes 3 and 4 unstable.
    let proto = MinPlusOne::with_byzantine(&Topology::line(6), 0, &[5]);
    let map = ContainmentMap::bfs(&proto);

    let (journal, buffer) = Journal::memory();
    let cfg = SimRunConfig {
        byzantine: proto.byzantine().to_vec(),
        byzantine_seed: 0xB12A,
        ..SimRunConfig::default()
    };
    let outcome = run_sim_journaled(
        proto.program(),
        &proto.safe_goal(),
        3,
        &FaultSchedule::empty(),
        &cfg,
        &journal,
    )
    .expect("sim run");
    assert!(outcome.stabilized, "the safe region must stabilize");
    let radius = map.emit(&outcome.final_state, "sim", 3, &journal);
    journal.flush();

    let records = parse_journal(&buffer.contents()).expect("journal parses schema-clean");
    assert_eq!(radius, 2, "line(6) with liar 5 has containment radius 2");
    assert_eq!(containment_radius(&records), Some(2));

    // The timeline pins the verdict lines verbatim, in node order.
    let rendered = render_timeline(&records);
    let containment_lines: Vec<&str> = rendered
        .lines()
        .filter(|l| l.contains("containment"))
        .collect();
    assert_eq!(
        containment_lines.len(),
        5,
        "one timeline line per correct node:\n{rendered}"
    );
    for (line, (node, verdict)) in containment_lines.iter().zip([
        (0, "stabilized"),
        (1, "stabilized"),
        (2, "stabilized"),
        (3, "unstable"),
        (4, "unstable"),
    ]) {
        assert!(
            line.contains(&format!("node {node} ")) && line.contains(verdict),
            "expected node {node} verdict {verdict} in: {line}"
        );
    }
}
