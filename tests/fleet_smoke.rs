//! Tier-1 fleet smoke: 100k tenants stepped to stabilization.
//!
//! A scaled-down version of the committed `BENCH_fleet.json` run that is
//! cheap enough for every test invocation: the full ring mix, one
//! hundred thousand tenants, default scheduling. Guards the fleet
//! harness's three core claims — everyone stabilizes, the verdict cache
//! misses exactly once per configuration, and every empirical latency
//! respects the checker's certified worst-case bound.

use nonmask_fleet::{run_fleet, FleetConfig, FleetProtocol};
use nonmask_obs::Journal;

#[test]
fn hundred_thousand_tenants_stabilize_within_certified_bounds() {
    let config = FleetConfig {
        protocols: FleetProtocol::ring_mix(),
        tenants: 100_000,
        master_seed: 0xF1EE_7001,
        faults_per_tenant: 2,
        ..FleetConfig::default()
    };
    let report = run_fleet(&config, &Journal::disabled()).unwrap();

    assert_eq!(report.counters.get("tenants"), 100_000);
    assert_eq!(report.counters.get("stabilized"), 100_000);
    assert_eq!(report.violations(), 0, "stuck/exhausted/over-bound tenants");
    assert_eq!(report.counters.get("faults"), 200_000);

    // Cache: one enumeration per distinct configuration, everything else
    // hits.
    assert_eq!(report.enumerations, 8);
    assert_eq!(report.counters.get("cache_lookups"), 100_000);
    assert!(report.cache_hit_rate() > 0.9999);

    // Per-tenant footprint: the 64-byte budget the arena layout promises.
    assert!(
        report.bytes_per_instance <= 64,
        "bytes/instance = {}",
        report.bytes_per_instance
    );

    // Latency distribution is sane and bounded.
    assert_eq!(report.histogram.total(), 100_000);
    assert_eq!(report.histogram.overflow(), 0);
    let p50 = report.histogram.percentile(50.0).unwrap();
    let p99 = report.histogram.percentile(99.0).unwrap();
    assert!(p50 <= p99);
    for c in &report.configs {
        let bound = c.bound.expect("rings converge");
        assert!(
            c.max_latency <= bound,
            "{}: {} > bound {}",
            c.key,
            c.max_latency,
            bound
        );
    }
}
