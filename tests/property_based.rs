//! Property-based tests over the core invariants of the reproduction.

use nonmask::TheoremOutcome;
use nonmask_checker::{worst_case_moves, StateSpace};
use nonmask_graph::Shape;
use nonmask_program::scheduler::Random;
use nonmask_program::{Executor, Predicate, RunConfig, State};
use nonmask_protocols::diffusing::DiffusingComputation;
use nonmask_protocols::token_ring::TokenRing;
use nonmask_protocols::Tree;
use proptest::prelude::*;

/// Strategy: a valid parent vector for a tree of size 2..=6.
fn tree_strategy() -> impl Strategy<Value = Tree> {
    (2usize..=6)
        .prop_flat_map(|n| {
            // parent[j] ∈ 0..j guarantees acyclicity and root at 0.
            let parents: Vec<BoxedStrategy<usize>> = (0..n)
                .map(|j| {
                    if j == 0 {
                        Just(0usize).boxed()
                    } else {
                        (0..j).boxed()
                    }
                })
                .collect();
            parents
        })
        .prop_map(Tree::from_parents)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every recursive tree yields a Theorem-1 stabilizing diffusing
    /// computation whose constraint graph is an out-tree with ranks
    /// = depth + 1.
    #[test]
    fn diffusing_design_is_theorem1_on_random_trees(tree in tree_strategy()) {
        let dc = DiffusingComputation::new(&tree);
        let design = dc.design().unwrap();
        let graph = design.constraint_graph().unwrap();
        prop_assert_eq!(graph.shape(), Shape::OutTree);
        let ranks = graph.ranks().unwrap();
        for j in 0..tree.len() {
            prop_assert_eq!(ranks[j] as usize, tree.depth(j) + 1);
        }
        // Full verification only on the smaller instances (4^6 = 4096 is
        // fine; keep the property fast).
        if tree.len() <= 5 {
            let report = design.verify().unwrap();
            let is_theorem1 = matches!(report.theorem, TheoremOutcome::Theorem1 { .. });
            prop_assert!(is_theorem1);
            prop_assert!(report.is_stabilizing());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// From any state of the token ring, any seeded-random fair run
    /// reaches the invariant within the checker's worst-case bound.
    #[test]
    fn token_ring_runs_respect_worst_case_bound(
        slots in proptest::collection::vec(0i64..4, 4),
        seed in 0u64..1000,
    ) {
        let ring = TokenRing::new(4, 4);
        let start = State::new(slots);
        ring.program().validate_state(&start).unwrap();
        let s = ring.invariant();
        let space = StateSpace::enumerate(ring.program()).unwrap();
        let bound = worst_case_moves(&space, ring.program(), &Predicate::always_true(), &s)
            .expect("finite bound");
        let report = Executor::new(ring.program()).run(
            start,
            &mut Random::seeded(seed),
            &RunConfig::default().stop_when(&s, 1).max_steps(bound + 1),
        );
        prop_assert!(report.stop.is_stabilized() || s.holds(&report.final_state));
        prop_assert!(report.steps <= bound);
    }

    /// Privilege counting and the invariant predicate always agree.
    #[test]
    fn privilege_count_consistency(slots in proptest::collection::vec(0i64..5, 5)) {
        let ring = TokenRing::new(5, 5);
        let state = State::new(slots);
        let privs = ring.privileges(&state);
        prop_assert!(!privs.is_empty(), "at least one privilege always exists");
        prop_assert_eq!(ring.invariant().holds(&state), privs.len() == 1);
        prop_assert_eq!(ring.token_holder(&state).is_some(), privs.len() == 1);
    }

    /// Predicate combinators satisfy boolean algebra on arbitrary states.
    #[test]
    fn predicate_combinator_laws(slots in proptest::collection::vec(-5i64..5, 3)) {
        use nonmask_program::VarId;
        let state = State::new(slots);
        let a = Predicate::new("a", [VarId::from_index(0)], |s| s.slots()[0] > 0);
        let b = Predicate::new("b", [VarId::from_index(1)], |s| s.slots()[1] > 0);
        prop_assert_eq!(a.and(&b).holds(&state), a.holds(&state) && b.holds(&state));
        prop_assert_eq!(a.or(&b).holds(&state), a.holds(&state) || b.holds(&state));
        prop_assert_eq!(a.not().holds(&state), !a.holds(&state));
        prop_assert_eq!(
            a.implies(&b).holds(&state),
            !a.holds(&state) || b.holds(&state)
        );
        // De Morgan.
        prop_assert_eq!(
            a.and(&b).not().holds(&state),
            a.not().or(&b.not()).holds(&state)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The message-passing refinement stabilizes from arbitrary corrupt
    /// states (token ring, lossless network).
    #[test]
    fn message_passing_stabilizes_from_random_states(
        slots in proptest::collection::vec(0i64..4, 4),
        seed in 0u64..100,
    ) {
        use nonmask_sim::{Refinement, SimConfig, Simulation};
        let ring = TokenRing::new(4, 4);
        let refinement = Refinement::new(ring.program()).unwrap();
        let mut sim = Simulation::new(
            ring.program(),
            refinement,
            State::new(slots),
            SimConfig { seed, max_rounds: 10_000, ..SimConfig::default() },
        );
        let report = sim.run_until_stable(&ring.invariant(), 3);
        prop_assert!(report.stabilized_at_round.is_some());
    }
}
