//! Property-based tests over the core invariants of the reproduction.

use nonmask::TheoremOutcome;
use nonmask_checker::{
    check_convergence, check_convergence_frontier_stats, check_convergence_opts, is_closed,
    is_closed_bits, is_closed_segmented, worst_case_moves, Bitset, CheckOptions, Fairness,
    SegmentedSpace, StateSpace,
};
use nonmask_graph::Shape;
use nonmask_obs::{Event, Journal, MemoryBuffer};
use nonmask_program::scheduler::Random;
use nonmask_program::{Domain, Executor, Predicate, Program, RunConfig, State};
use nonmask_protocols::diffusing::DiffusingComputation;
use nonmask_protocols::token_ring::TokenRing;
use nonmask_protocols::Tree;
use proptest::prelude::*;

/// Strategy: a valid parent vector for a tree of size 2..=6.
fn tree_strategy() -> impl Strategy<Value = Tree> {
    (2usize..=6)
        .prop_flat_map(|n| {
            // parent[j] ∈ 0..j guarantees acyclicity and root at 0.
            let parents: Vec<BoxedStrategy<usize>> = (0..n)
                .map(|j| {
                    if j == 0 {
                        Just(0usize).boxed()
                    } else {
                        (0..j).boxed()
                    }
                })
                .collect();
            parents
        })
        .prop_map(Tree::from_parents)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every recursive tree yields a Theorem-1 stabilizing diffusing
    /// computation whose constraint graph is an out-tree with ranks
    /// = depth + 1.
    #[test]
    fn diffusing_design_is_theorem1_on_random_trees(tree in tree_strategy()) {
        let dc = DiffusingComputation::new(&tree);
        let design = dc.design().unwrap();
        let graph = design.constraint_graph().unwrap();
        prop_assert_eq!(graph.shape(), Shape::OutTree);
        let ranks = graph.ranks().unwrap();
        for (j, &rank) in ranks.iter().enumerate() {
            prop_assert_eq!(rank as usize, tree.depth(j) + 1);
        }
        // Full verification only on the smaller instances (4^6 = 4096 is
        // fine; keep the property fast).
        if tree.len() <= 5 {
            let report = design.verify().unwrap();
            let is_theorem1 = matches!(report.theorem, TheoremOutcome::Theorem1 { .. });
            prop_assert!(is_theorem1);
            prop_assert!(report.is_stabilizing());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// From any state of the token ring, any seeded-random fair run
    /// reaches the invariant within the checker's worst-case bound.
    #[test]
    fn token_ring_runs_respect_worst_case_bound(
        slots in proptest::collection::vec(0i64..4, 4),
        seed in 0u64..1000,
    ) {
        let ring = TokenRing::new(4, 4);
        let start = State::new(slots);
        ring.program().validate_state(&start).unwrap();
        let s = ring.invariant();
        let space = StateSpace::enumerate(ring.program()).unwrap();
        let bound = worst_case_moves(&space, ring.program(), &Predicate::always_true(), &s)
            .expect("bounds")
            .expect("finite bound");
        let report = Executor::new(ring.program()).run(
            start,
            &mut Random::seeded(seed),
            &RunConfig::default().stop_when(&s, 1).max_steps(bound + 1),
        );
        prop_assert!(report.stop.is_stabilized() || s.holds(&report.final_state));
        prop_assert!(report.steps <= bound);
    }

    /// Privilege counting and the invariant predicate always agree.
    #[test]
    fn privilege_count_consistency(slots in proptest::collection::vec(0i64..5, 5)) {
        let ring = TokenRing::new(5, 5);
        let state = State::new(slots);
        let privs = ring.privileges(&state);
        prop_assert!(!privs.is_empty(), "at least one privilege always exists");
        prop_assert_eq!(ring.invariant().holds(&state), privs.len() == 1);
        prop_assert_eq!(ring.token_holder(&state).is_some(), privs.len() == 1);
    }

    /// Predicate combinators satisfy boolean algebra on arbitrary states.
    #[test]
    fn predicate_combinator_laws(slots in proptest::collection::vec(-5i64..5, 3)) {
        use nonmask_program::VarId;
        let state = State::new(slots);
        let a = Predicate::new("a", [VarId::from_index(0)], |s| s.slots()[0] > 0);
        let b = Predicate::new("b", [VarId::from_index(1)], |s| s.slots()[1] > 0);
        prop_assert_eq!(a.and(&b).holds(&state), a.holds(&state) && b.holds(&state));
        prop_assert_eq!(a.or(&b).holds(&state), a.holds(&state) || b.holds(&state));
        prop_assert_eq!(a.not().holds(&state), !a.holds(&state));
        prop_assert_eq!(
            a.implies(&b).holds(&state),
            !a.holds(&state) || b.holds(&state)
        );
        // De Morgan.
        prop_assert_eq!(
            a.and(&b).not().holds(&state),
            a.not().or(&b.not()).holds(&state)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The message-passing refinement stabilizes from arbitrary corrupt
    /// states (token ring, lossless network).
    #[test]
    fn message_passing_stabilizes_from_random_states(
        slots in proptest::collection::vec(0i64..4, 4),
        seed in 0u64..100,
    ) {
        use nonmask_sim::{Refinement, SimConfig, Simulation};
        let ring = TokenRing::new(4, 4);
        let refinement = Refinement::new(ring.program()).unwrap();
        let mut sim = Simulation::new(
            ring.program(),
            refinement,
            State::new(slots),
            SimConfig { seed, max_rounds: 10_000, ..SimConfig::default() },
        );
        let report = sim.run_until_stable(&ring.invariant(), 3);
        prop_assert!(report.stabilized_at_round.is_some());
    }
}

/// Strategy: a random bounded domain (bool, small integer range, or enum).
fn domain_strategy() -> BoxedStrategy<Domain> {
    prop_oneof![
        Just(Domain::Bool),
        (-3i64..=3, 1i64..=3).prop_map(|(min, span)| Domain::range(min, min + span)),
        (2usize..=4).prop_map(|n| Domain::enumeration((0..n).map(|i| format!("label{i}")))),
    ]
}

/// Build a program over the given domains with one self-loop action (the
/// id property concerns enumeration, not transitions).
fn program_over(domains: Vec<Domain>) -> Program {
    let mut b = Program::builder("random-domains");
    for (i, d) in domains.into_iter().enumerate() {
        b.var(format!("v{i}"), d);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arithmetic ids: for any mix of bounded domains, the [`StateId`] of
    /// every enumerated state equals its enumeration position, and the
    /// mixed-radix reverse lookup `id_of` inverts `state`.
    #[test]
    fn arithmetic_ids_equal_enumeration_position(
        domains in proptest::collection::vec(domain_strategy(), 1..=5)
    ) {
        let p = program_over(domains);
        let space = StateSpace::enumerate(&p).unwrap();
        for (pos, id) in space.ids().enumerate() {
            prop_assert_eq!(id.index(), pos);
            prop_assert_eq!(space.id_of(&space.state(id)), Some(id));
        }
    }
}

/// Build a program over `domains` with one wrapping-increment action per
/// `(guard_var, write_var, delta)` spec. Guards compare against the guard
/// variable's minimum; effects wrap within the written domain, so every
/// successor stays representable.
fn program_with_actions(domains: Vec<Domain>, actions: Vec<(usize, usize, i64)>) -> Program {
    let mut b = Program::builder("random-actions");
    let vars: Vec<_> = domains
        .iter()
        .enumerate()
        .map(|(i, d)| b.var(format!("v{i}"), d.clone()))
        .collect();
    let bounds: Vec<(i64, i64)> = domains
        .iter()
        .map(|d| {
            let min = d.min_value();
            (min, min + d.size().unwrap() as i64 - 1)
        })
        .collect();
    for (k, (g, w, delta)) in actions.into_iter().enumerate() {
        let (gv, wv) = (vars[g % vars.len()], vars[w % vars.len()]);
        let (gmin, _) = bounds[g % vars.len()];
        let (wmin, wmax) = bounds[w % vars.len()];
        let size = wmax - wmin + 1;
        b.closure_action(
            format!("a{k}"),
            [gv, wv],
            [wv],
            move |s| s.get(gv) > gmin,
            move |s| {
                let v = s.get(wv);
                s.set(wv, wmin + (v - wmin + delta).rem_euclid(size));
            },
        );
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CSR ground truth: for every state, the CSR row
    /// ([`StateSpace::successors`]) equals a direct per-state enumeration —
    /// the enabled actions in declaration order, each paired with the
    /// mixed-radix id of its successor — and the parallel `succs` column
    /// ([`StateSpace::successor_ids`]) agrees pairwise.
    #[test]
    fn csr_rows_match_direct_enumeration(
        domains in proptest::collection::vec(domain_strategy(), 1..=4),
        actions in proptest::collection::vec((0usize..4, 0usize..4, 1i64..=3), 0..=4)
    ) {
        let p = program_with_actions(domains, actions);
        let space = StateSpace::enumerate(&p).unwrap();
        let mut total = 0usize;
        for id in space.ids() {
            let st = space.state(id);
            let expected: Vec<_> = p
                .action_ids()
                .filter(|&a| p.action(a).enabled(&st))
                .map(|a| (a, space.id_of(&p.action(a).successor(&st)).unwrap()))
                .collect();
            let row: Vec<_> = space.successors(id).iter().collect();
            prop_assert_eq!(&row, &expected, "row of state {}", id.index());
            let ids: Vec<_> = space.successor_ids(id).to_vec();
            let pair_ids: Vec<_> = row.iter().map(|&(_, t)| t).collect();
            prop_assert_eq!(ids, pair_ids);
            total += expected.len();
        }
        prop_assert_eq!(space.transition_count(), total);
    }
}

/// Serial and multi-threaded checking must be *bit-identical*: the same
/// verdict, the same witness states, for every protocol and thread count.
fn assert_parallel_matches_serial(
    p: &Program,
    t: &Predicate,
    s: &Predicate,
    threads: usize,
) -> Result<(), TestCaseError> {
    let space = StateSpace::enumerate(p).unwrap();
    let opts = CheckOptions::default().threads(threads);
    for fairness in [Fairness::WeaklyFair, Fairness::Unfair] {
        let serial = check_convergence(&space, p, t, s, fairness).unwrap();
        let parallel = check_convergence_opts(&space, p, t, s, fairness, opts).unwrap();
        prop_assert_eq!(
            &serial,
            &parallel,
            "convergence({:?}) with {} threads",
            fairness,
            threads
        );
    }
    let s_bits = Bitset::for_predicate(&space, s, opts).unwrap();
    prop_assert_eq!(
        is_closed(&space, p, s).unwrap(),
        is_closed_bits(&space, p, &s_bits, opts).unwrap(),
        "closure with {} threads",
        threads
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The thread count never changes any verdict or witness on the
    /// paper's three running designs (xyz, token ring, diffusing).
    #[test]
    fn multithreaded_checks_match_serial(threads in 2usize..=8) {
        let (xyz, _) = nonmask_protocols::xyz::out_tree().unwrap();
        assert_parallel_matches_serial(
            xyz.program(),
            xyz.fault_span(),
            &xyz.invariant(),
            threads,
        )?;

        // 5^5 = 3125 states: crosses the parallel threshold for real.
        let ring = TokenRing::new(5, 5);
        assert_parallel_matches_serial(
            ring.program(),
            &Predicate::always_true(),
            &ring.invariant(),
            threads,
        )?;

        let dc = DiffusingComputation::new(&Tree::from_parents(vec![0, 0, 1, 1]));
        let design = dc.design().unwrap();
        assert_parallel_matches_serial(
            design.program(),
            design.fault_span(),
            &design.invariant(),
            threads,
        )?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Segment boundaries are invisible: for any random program, any
    /// thread count, and segment sizes that do and do not divide the
    /// state count, the work-stealing segmented build reproduces every
    /// CSR row of the monolithic space, in id order — and segmented
    /// closure agrees with the resident check.
    #[test]
    fn segmented_rows_match_monolithic_on_random_programs(
        domains in proptest::collection::vec(domain_strategy(), 1..=4),
        actions in proptest::collection::vec((0usize..4, 0usize..4, 1i64..=3), 0..=4),
        threads in 1usize..=8,
        seg_pick in 0usize..4,
    ) {
        let p = program_with_actions(domains, actions);
        let space = StateSpace::enumerate(&p).unwrap();
        let n = space.len();
        // One size of each kind: degenerate, non-dividing, roughly a
        // third (almost never divides), and everything-in-one-segment.
        let sizes = [1, 7, n.div_ceil(3).max(1), n.max(1)];
        let opts = CheckOptions::default()
            .threads(threads)
            .segment_states(sizes[seg_pick]);
        let seg_space = SegmentedSpace::new(&p, opts).unwrap();
        let ids: Vec<_> = space.ids().collect();
        let per_segment = seg_space
            .scan(|_ti, seg| {
                seg.range()
                    .map(|i| seg.successors(ids[i]).iter().collect::<Vec<_>>())
                    .collect::<Vec<_>>()
            })
            .unwrap();
        let rebuilt: Vec<_> = per_segment.into_iter().flatten().collect();
        prop_assert_eq!(rebuilt.len(), n);
        for id in space.ids() {
            let monolithic: Vec<_> = space.successors(id).iter().collect();
            prop_assert_eq!(&rebuilt[id.index()], &monolithic, "row of {}", id);
        }

        // Closure verdicts agree for an arbitrary predicate (witness
        // *order* differs by construction — see `is_closed_segmented` —
        // so only the verdict is compared here).
        let even = Predicate::new("even", p.var_ids(), |s: &State| {
            s.slots().iter().sum::<i64>() % 2 == 0
        });
        let bits = Bitset::for_predicate(&space, &even, opts).unwrap();
        prop_assert_eq!(
            is_closed_segmented(&seg_space, &bits).unwrap().is_none(),
            is_closed_bits(&space, &p, &bits, opts).unwrap().is_none()
        );
    }
}

/// All journal events in a memory buffer, with the wall-clock timestamps
/// stripped (the event payloads themselves carry no timing by design).
fn journal_events(journal: Journal, buffer: &MemoryBuffer) -> Vec<Event> {
    journal.flush();
    buffer
        .contents()
        .lines()
        .map(|l| Event::parse_line(l).expect("journal lines parse").event)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The frontier checker is bit-identical across work-stealing thread
    /// counts: same verdict and witness as the resident checker, same
    /// stats, and — with an explicit segment size — the same journal
    /// event sequence, whether or not the size divides the state count.
    #[test]
    fn frontier_work_stealing_is_bit_identical(
        threads in 2usize..=8,
        seg_pick in 0usize..3,
    ) {
        let ring = TokenRing::new(5, 5);
        let dc = DiffusingComputation::new(&Tree::from_parents(vec![0, 0, 1, 1, 2]));
        let cases = [
            (ring.program().clone(), ring.invariant()),
            (dc.program().clone(), dc.invariant()),
        ];
        for (p, goal) in &cases {
            let space = StateSpace::enumerate(p).unwrap();
            let n = space.len();
            // 625 divides 5^5; the other two sizes divide neither case.
            let sizes = [625, 999, n.div_ceil(3)];
            let t = Predicate::always_true();
            for fairness in [Fairness::WeaklyFair, Fairness::Unfair] {
                let resident = check_convergence(&space, p, &t, goal, fairness).unwrap();
                let serial_opts = CheckOptions::default()
                    .threads(1)
                    .segment_states(sizes[seg_pick]);
                let stolen_opts = serial_opts.threads(threads);
                let (j1, b1) = Journal::memory();
                let (r1, s1) =
                    check_convergence_frontier_stats(p, &t, goal, fairness, serial_opts, &j1)
                        .unwrap();
                let (jn, bn) = Journal::memory();
                let (rn, sn) =
                    check_convergence_frontier_stats(p, &t, goal, fairness, stolen_opts, &jn)
                        .unwrap();
                prop_assert_eq!(&r1, &resident, "serial frontier vs resident ({:?})", fairness);
                prop_assert_eq!(&rn, &resident, "stolen frontier vs resident ({:?})", fairness);
                prop_assert_eq!(s1, sn, "stats must not depend on the thread count");
                prop_assert_eq!(
                    journal_events(j1, &b1),
                    journal_events(jn, &bn),
                    "journals must not depend on the thread count"
                );
            }
        }
    }
}
