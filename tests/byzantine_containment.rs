//! The headline Byzantine battery: containment radii agree across the
//! whole stack.
//!
//! On a fixed 64-node random graph with two permanently malicious
//! nodes, the simulator and the socket runtime run the same min+1 BFS
//! instance on the same seed; each layer's journal receives one
//! locked `containment` event per correct node, and the radius
//! recovered from those journals must be identical across layers and
//! equal to the theory's prediction. On a small instance of the same
//! topology family, the checker's restricted-region convergence sweep
//! independently certifies the same radius the execution layers
//! observe. A containment violation anywhere — a safe node the liars
//! managed to perturb, a layer that failed to stabilize its safe
//! region, a checker/observation mismatch — breaks the agreement.

use nonmask_checker::{certify_containment, CheckOptions, Fairness, StateSpace};
use nonmask_conform::{
    run_net_journaled, run_sim_journaled, ContainmentMap, FaultSchedule, NetRunConfig, SimRunConfig,
};
use nonmask_graph::Topology;
use nonmask_obs::{containment_radius, parse_journal, render_timeline, Journal, Record};
use nonmask_protocols::MinPlusOne;

const SEED: u64 = 1;
const LIE_SEED: u64 = 0xB12A;

/// The acceptance instance: 64 nodes, degree 3, liars mid-graph and at
/// the highest id.
fn acceptance_instance() -> (MinPlusOne, ContainmentMap) {
    let topo = Topology::random_connected(64, 3, 1);
    let proto = MinPlusOne::with_byzantine(&topo, 0, &[32, 63]);
    let map = ContainmentMap::bfs(&proto);
    (proto, map)
}

fn sim_records(proto: &MinPlusOne, map: &ContainmentMap, seed: u64) -> Vec<Record> {
    let (journal, buffer) = Journal::memory();
    let cfg = SimRunConfig {
        byzantine: proto.byzantine().to_vec(),
        byzantine_seed: LIE_SEED,
        ..SimRunConfig::default()
    };
    let outcome = run_sim_journaled(
        proto.program(),
        &proto.safe_goal(),
        seed,
        &FaultSchedule::empty(),
        &cfg,
        &journal,
    )
    .expect("sim infrastructure");
    assert!(outcome.stabilized, "sim safe region must stabilize");
    map.emit(&outcome.final_state, "sim", seed, &journal);
    journal.flush();
    parse_journal(&buffer.contents()).expect("locked schema")
}

fn net_records(proto: &MinPlusOne, map: &ContainmentMap, seed: u64) -> Vec<Record> {
    let (journal, buffer) = Journal::memory();
    let cfg = NetRunConfig {
        byzantine: proto.byzantine().to_vec(),
        byzantine_seed: LIE_SEED,
        ..NetRunConfig::default()
    };
    let outcome = run_net_journaled(proto.program(), &proto.safe_goal(), seed, &cfg, &journal)
        .expect("net infrastructure");
    assert!(outcome.stabilized, "net safe region must stabilize");
    map.emit(&outcome.final_state, "net", seed, &journal);
    journal.flush();
    parse_journal(&buffer.contents()).expect("locked schema")
}

#[test]
fn sim_and_net_journals_measure_the_same_radius_on_the_64_node_graph() {
    let (proto, map) = acceptance_instance();
    let sim = sim_records(&proto, &map, SEED);
    let net = net_records(&proto, &map, SEED);

    let sim_radius = containment_radius(&sim).expect("sim journal has containment events");
    let net_radius = containment_radius(&net).expect("net journal has containment events");
    assert_eq!(sim_radius, net_radius, "layers disagree on the radius");
    assert_eq!(
        sim_radius,
        proto.predicted_radius(),
        "measured radius must match the theory"
    );

    // The per-node verdicts agree node for node, not just in the max:
    // the containment suffix of both journals tells the same story.
    let verdicts = |records: &[Record]| -> Vec<(u64, u64, String)> {
        records
            .iter()
            .filter_map(|r| match &r.event {
                nonmask_obs::Event::Containment {
                    node,
                    distance,
                    verdict,
                    ..
                } => Some((*node, *distance, verdict.clone())),
                _ => None,
            })
            .collect()
    };
    assert_eq!(verdicts(&sim), verdicts(&net));
    assert_eq!(verdicts(&sim).len(), 62, "one verdict per correct node");
}

#[test]
fn the_checker_certifies_what_the_layers_observe_on_a_small_instance() {
    // Same family, enumerable size: 6 nodes, degree 2, same seed
    // recipe for topology and liar placement as the CLI's small
    // instance (liars mid-graph and at the highest id).
    let topo = Topology::random_connected(6, 2, 1);
    let proto = MinPlusOne::with_byzantine(&topo, 0, &[3, 5]);
    let map = ContainmentMap::bfs(&proto);

    let space = StateSpace::enumerate(proto.program()).expect("enumerable");
    let verdict = certify_containment(
        &space,
        proto.program(),
        |r| proto.containment_goal(r),
        topo.diameter(),
        Fairness::WeaklyFair,
        CheckOptions::default(),
    )
    .expect("containment sweep");
    let certified = verdict.radius.expect("some radius converges");

    let records = sim_records(&proto, &map, SEED);
    let observed = containment_radius(&records).expect("containment events");
    assert_eq!(
        certified, observed,
        "checker and observation disagree on the radius"
    );
    assert_eq!(certified, proto.predicted_radius());
}

#[test]
fn sim_radius_is_stable_across_seeds() {
    // The radius is a topology property, not a schedule property:
    // different run seeds (initial states) measure the same radius.
    let (proto, map) = acceptance_instance();
    let radii: Vec<u64> = [1u64, 7, 23]
        .iter()
        .map(|&seed| {
            let records = sim_records(&proto, &map, seed);
            containment_radius(&records).expect("containment events")
        })
        .collect();
    assert!(radii.iter().all(|&r| r == radii[0]), "radii: {radii:?}");
}

#[test]
fn a_lang_role_annotation_drives_the_byzantine_injector() {
    // The surface language carries the liar set as a per-node role
    // annotation; the driver reads it off the AST and hands it to the
    // execution layer — no Rust-side liar list anywhere.
    let source = r#"
        program line_bfs
        var d.0 : 0..4; d.1 : 0..4; d.2 : 0..4; d.3 : 0..4
        role byzantine : 3
        action fix.0 [combined] : d.0 != 0 -> d.0 := 0
        action fix.1 [combined] : d.1 != d.0 + 1 -> d.1 := d.0 + 1
        action fix.2 [combined] : d.2 != d.1 + 1 -> d.2 := d.1 + 1
        action fix.3 [combined] : d.3 != d.2 + 1 -> d.3 := d.2 + 1
    "#;
    let def = nonmask_lang::parse(source).expect("parses");
    let byzantine = def.nodes_with_role("byzantine");
    assert_eq!(byzantine, vec![3]);
    let program = nonmask_lang::compile_def_with_processes(&def).expect("compiles");

    // The goal reads only correct nodes: the liar never heals, so any
    // predicate over its variables would chase the lie stream forever.
    let d = |j: usize| program.var_by_name(&format!("d.{j}")).expect("declared");
    let vars = [d(0), d(1), d(2)];
    let goal = nonmask_program::Predicate::new("correct-distances", vars, move |s| {
        (0..3).all(|j| s.get(vars[j]) == j as i64)
    });

    let (journal, _buffer) = Journal::memory();
    let cfg = SimRunConfig {
        byzantine,
        byzantine_seed: LIE_SEED,
        ..SimRunConfig::default()
    };
    let outcome = run_sim_journaled(
        &program,
        &goal,
        SEED,
        &FaultSchedule::empty(),
        &cfg,
        &journal,
    )
    .expect("sim run");
    assert!(
        outcome.stabilized,
        "correct nodes stabilize despite the annotated liar"
    );
    for j in 0..3 {
        assert_eq!(outcome.final_state.get(d(j)), j as i64);
    }
}

#[test]
fn the_timeline_renders_the_containment_story() {
    let topo = Topology::random_connected(6, 2, 1);
    let proto = MinPlusOne::with_byzantine(&topo, 0, &[3, 5]);
    let map = ContainmentMap::bfs(&proto);
    let records = sim_records(&proto, &map, SEED);
    let rendered = render_timeline(&records);
    assert!(
        rendered.contains("containment [sim] bfs-6"),
        "timeline must render containment verdicts:\n{rendered}"
    );
    // Every correct node appears with its verdict mark.
    for line in rendered.lines().filter(|l| l.contains("containment")) {
        assert!(
            line.contains("stabilized") || line.contains("unstable"),
            "unrecognized containment line: {line}"
        );
    }
}
