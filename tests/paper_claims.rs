//! Integration tests keyed to the paper's claims, section by section.
//!
//! Each test names the claim it mechanizes; together they are the
//! "soundness ledger" of the reproduction (EXPERIMENTS.md cross-references
//! them).

use nonmask::{CandidateTriple, TheoremOutcome};
use nonmask_checker::{
    check_convergence, is_closed, worst_case_moves, ConvergenceResult, Fairness, StateSpace,
};
use nonmask_graph::Shape;
use nonmask_program::{Predicate, ProcessId};
use nonmask_protocols::atomic::AtomicActions;
use nonmask_protocols::diffusing::DiffusingComputation;
use nonmask_protocols::token_ring::{windowed_design, TokenRing};
use nonmask_protocols::{xyz, Tree};

/// §3: the definition of fault-tolerance classifies masking vs nonmasking
/// by whether S = T.
#[test]
fn section3_masking_vs_nonmasking_classification() {
    let (design, _) = xyz::out_tree().unwrap();
    let program = design.program().clone();
    let s = design.invariant();
    let space = StateSpace::enumerate(&program).unwrap();

    let nonmasking = CandidateTriple::stabilizing(program.clone(), s.clone());
    assert!(!nonmasking.is_masking(&space), "S != true here");

    let masking = CandidateTriple::new(program, s.clone(), s);
    assert!(masking.is_masking(&space));
}

/// §3: "this design problem is readily solved in the special case where we
/// can design actions that check whether ¬S holds and establish S" — the
/// one-shot global repair action.
#[test]
fn section3_global_repair_special_case() {
    use nonmask_program::{Domain, Program};
    let mut b = Program::builder("global-repair");
    let x = b.var("x", Domain::range(0, 7));
    let y = b.var("y", Domain::range(0, 7));
    // S: x = y = 0. One convergence action checks ¬S and establishes S.
    b.convergence_action(
        "not-S -> establish S",
        [x, y],
        [x, y],
        move |st| !(st.get(x) == 0 && st.get(y) == 0),
        move |st| {
            st.set(x, 0);
            st.set(y, 0);
        },
    );
    let p = b.build();
    let s = Predicate::new("S", [x, y], move |st| st.get(x) == 0 && st.get(y) == 0);
    let space = StateSpace::enumerate(&p).unwrap();
    assert!(
        is_closed(&space, &p, &s).unwrap().is_none(),
        "trivially preserves S"
    );
    let r = check_convergence(
        &space,
        &p,
        &Predicate::always_true(),
        &s,
        Fairness::WeaklyFair,
    )
    .unwrap();
    assert!(r.converges());
    assert_eq!(
        worst_case_moves(&space, &p, &Predicate::always_true(), &s).unwrap(),
        Some(1),
        "establishes S in one step"
    );
}

/// §4: the example constraint graph — repairing x!=y by changing x "can
/// violate the second constraint", while the y/z repairs form the figure's
/// out-tree.
#[test]
fn section4_figure_and_interference_remark() {
    let (good, _) = xyz::out_tree().unwrap();
    assert_eq!(good.constraint_graph().unwrap().shape(), Shape::OutTree);

    let (bad, _) = xyz::interfering().unwrap();
    let report = bad.verify().unwrap();
    assert!(!report.convergence.converges());
}

/// §5 Theorem 1 on its flagship application: the diffusing computation is
/// `true`-tolerant for S on every tree we enumerate, and fairness is not
/// needed (§8 remark).
#[test]
fn section5_diffusing_theorem1_end_to_end() {
    for tree in [Tree::chain(4), Tree::star(5), Tree::binary(6)] {
        let dc = DiffusingComputation::new(&tree);
        let report = dc.design().unwrap().verify().unwrap();
        assert!(matches!(report.theorem, TheoremOutcome::Theorem1 { .. }));
        assert!(report.is_stabilizing());
        assert!(report.convergence_unfair.converges());
    }
}

/// §5's rank argument quantified: the worst-case number of moves outside S
/// is finite and grows with the tree, and any actual run stays within it.
#[test]
fn section5_rank_bound_dominates_real_runs() {
    use nonmask_program::scheduler::Random;
    use nonmask_program::{Executor, RunConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let tree = Tree::binary(5);
    let dc = DiffusingComputation::new(&tree);
    let s = dc.invariant();
    let space = StateSpace::enumerate(dc.program()).unwrap();
    let bound = worst_case_moves(&space, dc.program(), &Predicate::always_true(), &s)
        .unwrap()
        .expect("finite bound");

    let mut rng = StdRng::seed_from_u64(99);
    for seed in 0..30 {
        let start = dc.program().random_state(&mut rng);
        let report = Executor::new(dc.program()).run(
            start,
            &mut Random::seeded(seed),
            &RunConfig::default()
                .stop_when(&s, 1)
                .max_steps(10 * bound + 10),
        );
        assert!(
            report.steps <= bound,
            "run took {} steps, bound is {bound}",
            report.steps
        );
    }
}

/// §6 Theorem 2: the ordered xyz design (both repairs write x, one
/// decreases) converges; the naive pair livelocks.
#[test]
fn section6_ordering_separates_good_from_bad() {
    let (ordered, _) = xyz::ordered().unwrap();
    let r = ordered.verify().unwrap();
    assert!(matches!(r.theorem, TheoremOutcome::Theorem2 { .. }));
    assert!(r.is_tolerant());

    let (interfering, _) = xyz::interfering().unwrap();
    let r = interfering.verify().unwrap();
    assert!(!r.theorem.applies());
    assert!(matches!(
        r.convergence,
        ConvergenceResult::Divergence { .. }
    ));
}

/// §7 Theorem 3: the token ring's layered design validates, and the
/// resulting program really is Dijkstra's.
#[test]
fn section7_token_ring_layered_design() {
    let (design, handles) = windowed_design(4, 3).unwrap();
    let report = design.verify().unwrap();
    assert!(matches!(
        report.theorem,
        TheoremOutcome::Theorem3 { layers: 2 }
    ));
    assert!(report.is_tolerant());

    // The merged layer-2 action is the paper's final x.j != x.(j-1) →
    // x.j := x.(j-1): layer-1 repair + layer-2 copy have together exactly
    // that enabling condition.
    let p = design.program();
    let mut st = p.min_state();
    st.set(handles.x[0], 2);
    st.set(handles.x[1], 1);
    let l1 = p.action(handles.layer1[0]);
    let l2 = p.action(handles.layer2[0]);
    assert!(!l1.enabled(&st) && l2.enabled(&st), "x.0 > x.1: copy side");
    st.set(handles.x[1], 3);
    assert!(
        l1.enabled(&st) && !l2.enabled(&st),
        "x.0 < x.1: repair side"
    );
    st.set(handles.x[1], 2);
    assert!(!l1.enabled(&st) && !l2.enabled(&st), "equal: neither");
}

/// §7.1 specification, requirement (i): inside S exactly one node is
/// privileged — and the fault model "nodes spontaneously become privileged
/// or unprivileged" is recoverable.
#[test]
fn section7_token_ring_specification() {
    let ring = TokenRing::new(4, 4);
    let space = StateSpace::enumerate(ring.program()).unwrap();
    let s = ring.invariant();
    for id in space.satisfying(&s).unwrap() {
        assert_eq!(ring.privileges(&space.state(id)).len(), 1);
    }
    // Convergence from every state = recovery from arbitrary privilege
    // corruption.
    let r = check_convergence(
        &space,
        ring.program(),
        &Predicate::always_true(),
        &s,
        Fairness::WeaklyFair,
    )
    .unwrap();
    assert!(r.converges());
}

/// §8: "the fairness requirement on program computations is often
/// unnecessary … each of the programs derived in this paper is correct
/// even when the fairness requirement is ignored." The atomic-action
/// protocol shows the remark does not generalize to every design.
#[test]
fn section8_fairness_remark() {
    let dc = DiffusingComputation::new(&Tree::binary(4));
    let space = StateSpace::enumerate(dc.program()).unwrap();
    let r = check_convergence(
        &space,
        dc.program(),
        &Predicate::always_true(),
        &dc.invariant(),
        Fairness::Unfair,
    )
    .unwrap();
    assert!(r.converges(), "diffusing computation needs no fairness");

    let aa = AtomicActions::new(4);
    let space = StateSpace::enumerate(aa.program()).unwrap();
    let unfair = check_convergence(
        &space,
        aa.program(),
        &Predicate::always_true(),
        &aa.invariant(),
        Fairness::Unfair,
    )
    .unwrap();
    let fair = check_convergence(
        &space,
        aa.program(),
        &Predicate::always_true(),
        &aa.invariant(),
        Fairness::WeaklyFair,
    )
    .unwrap();
    assert!(!unfair.converges() && fair.converges());
}

/// Abstract: the three named applications — diffusing computations, atomic
/// actions, token rings — all verify through the same pipeline.
#[test]
fn abstract_three_applications() {
    let dc = DiffusingComputation::new(&Tree::chain(3));
    assert!(dc.design().unwrap().verify().unwrap().is_tolerant());
    let (ring, _) = windowed_design(3, 2).unwrap();
    assert!(ring.verify().unwrap().is_tolerant());
    let aa = AtomicActions::new(2);
    assert!(aa.design().unwrap().verify().unwrap().is_tolerant());
}

/// Processes partition variables exactly as the paper's node labels do.
#[test]
fn node_labels_are_process_variable_sets() {
    let dc = DiffusingComputation::new(&Tree::chain(3));
    let design = dc.design().unwrap();
    let graph = design.constraint_graph().unwrap();
    for (j, node) in graph.nodes().iter().enumerate() {
        assert_eq!(node.vars().len(), 2, "c.j and sn.j");
        for &v in node.vars() {
            assert_eq!(design.program().var(v).process(), Some(ProcessId(j)));
        }
    }
}

/// §7's "convergence stair" refinement (Gouda & Multari): the token ring
/// converges in two stages — first the layer-1 conjunct (a non-increasing
/// sequence) is established and stays closed, then the second conjunct.
#[test]
fn section7_convergence_stair() {
    use nonmask::ConvergenceStair;
    let (design, handles) = windowed_design(3, 3).unwrap();
    let program = design.program().clone();
    let space = StateSpace::enumerate(&program).unwrap();

    let xs = handles.x.clone();
    let layer1 = Predicate::new("layer1", xs.iter().copied(), {
        let xs = xs.clone();
        move |s| (1..xs.len()).all(|j| s.get(xs[j - 1]) >= s.get(xs[j]))
    });
    let stair = ConvergenceStair::new([Predicate::always_true(), layer1, design.invariant()]);
    assert_eq!(stair.height(), 2);
    let report = stair
        .verify(&space, &program, Fairness::WeaklyFair)
        .unwrap();
    assert!(report.ok(), "{report:?}");
}
