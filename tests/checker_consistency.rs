//! Cross-validation of the model checker against the execution engine on
//! randomly generated programs.
//!
//! For each seeded random program (3 boolean variables, table-driven
//! actions) and random target predicate `S`, the checker's verdict is
//! checked against ground behaviour:
//!
//! - `Converges` (weakly fair) ⇒ every round-robin run (round-robin is
//!   fair) from every state reaches `S`, and the expected-moves Markov
//!   analysis converges.
//! - `Converges` (unfair) ⇒ a finite worst-case bound exists and *no*
//!   scheduler (round-robin, random, adversarial with any priority
//!   rotation) exceeds it from any start.
//! - `DeadlockOutsideTarget` ⇒ the reported state really has no enabled
//!   action and violates `S`.
//! - `Divergence` ⇒ every witness state is outside `S` and has a successor
//!   inside the witness set (the cycle is real).

use nonmask_checker::{
    check_convergence, expected_moves, worst_case_moves, ConvergenceResult, Fairness, StateSpace,
};
use nonmask_program::scheduler::{Adversarial, Random, RoundRobin};
use nonmask_program::{ActionKind, Domain, Executor, Predicate, Program, RunConfig, VarId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const VARS: usize = 3;

/// Index of a state in the 3-boolean truth table.
fn state_index(s: &nonmask_program::State) -> usize {
    (0..VARS).fold(0, |acc, i| {
        acc | ((s.get_bool(VarId::from_index(i)) as usize) << i)
    })
}

/// A random table-driven program: each action has a random guard mask and
/// writes one variable with a value drawn from a random truth table.
fn random_program(rng: &mut StdRng) -> Program {
    let n_actions = rng.gen_range(2..=4);
    let mut b = Program::builder("random");
    let vars: Vec<VarId> = (0..VARS)
        .map(|i| b.var(format!("v{i}"), Domain::Bool))
        .collect();
    for a in 0..n_actions {
        let guard_mask: u8 = rng.gen();
        let value_table: u8 = rng.gen();
        let target = vars[rng.gen_range(0..VARS)];
        let kind = if rng.gen_bool(0.5) {
            ActionKind::Closure
        } else {
            ActionKind::Convergence
        };
        b.add_action(nonmask_program::Action::new(
            format!("a{a}"),
            kind,
            vars.clone(),
            [target],
            move |s| guard_mask & (1 << state_index(s)) != 0,
            move |s| {
                let bit = value_table & (1 << state_index(s)) != 0;
                s.set_bool(target, bit);
            },
        ));
    }
    b.build()
}

fn random_target(rng: &mut StdRng) -> Predicate {
    // Nonempty, non-total mask so the region is nontrivial.
    let mask: u8 = loop {
        let m: u8 = rng.gen();
        if m != 0 && m != u8::MAX {
            break m;
        }
    };
    let reads: Vec<VarId> = (0..VARS).map(VarId::from_index).collect();
    Predicate::new(format!("S[{mask:08b}]"), reads, move |s| {
        mask & (1 << state_index(s)) != 0
    })
}

#[test]
fn checker_verdicts_match_execution() {
    let mut rng = StdRng::seed_from_u64(20260705);
    let mut converged_fair = 0;
    let mut converged_unfair = 0;
    let mut deadlocks = 0;
    let mut divergences = 0;

    for trial in 0..300u64 {
        let program = random_program(&mut rng);
        let s = random_target(&mut rng);
        let t = Predicate::always_true();
        let space = StateSpace::enumerate(&program).unwrap();

        let fair = check_convergence(&space, &program, &t, &s, Fairness::WeaklyFair).unwrap();
        let unfair = check_convergence(&space, &program, &t, &s, Fairness::Unfair).unwrap();

        // Unfair convergence implies fair convergence.
        if unfair.converges() {
            assert!(fair.converges(), "trial {trial}: unfair ⊂ fair");
        }

        match &fair {
            ConvergenceResult::Converges => {
                converged_fair += 1;
                // Round-robin (fair) reaches S from every state.
                for id in space.ids() {
                    let report = Executor::new(&program).run(
                        space.state(id),
                        &mut RoundRobin::new(),
                        &RunConfig::default().stop_when(&s, 1).max_steps(1_000),
                    );
                    // A deadlock is fine only if it happened inside S
                    // (e.g. the start state already satisfied S and nothing
                    // was enabled); convergence only promises reaching S.
                    assert!(
                        report.stop.is_stabilized() || s.holds(&report.final_state),
                        "trial {trial}: fair-convergent program failed from {:?} ({:?})",
                        space.state(id).slots(),
                        report.stop,
                    );
                }
                // The Markov analysis converges too.
                let em = expected_moves(&space, &program, &t, &s, 1e-9, 1_000_000);
                assert!(em.converged(), "trial {trial}: expected moves diverged");
            }
            ConvergenceResult::DeadlockOutsideTarget { state } => {
                deadlocks += 1;
                assert!(!s.holds(state), "trial {trial}: deadlock witness is in S");
                assert!(
                    program.enabled_actions(state).is_empty(),
                    "trial {trial}: deadlock witness has enabled actions"
                );
            }
            ConvergenceResult::Divergence { states, .. } => {
                divergences += 1;
                for w in states {
                    assert!(!s.holds(w), "trial {trial}: divergence witness inside S");
                    // The witness set is strongly connected: every member
                    // has an internal successor.
                    let has_internal = program.enabled_actions(w).iter().any(|&a| {
                        let next = program.action(a).successor(w);
                        states.contains(&next)
                    });
                    assert!(
                        has_internal,
                        "trial {trial}: witness state has no internal edge"
                    );
                }
            }
            ConvergenceResult::EscapesFaultSpan { .. } => {
                unreachable!("T = true cannot be escaped")
            }
        }

        if unfair.converges() {
            converged_unfair += 1;
            let bound = worst_case_moves(&space, &program, &t, &s)
                .unwrap()
                .expect("unfair convergence implies a finite bound");
            // No daemon exceeds the bound from any start.
            for id in space.ids() {
                for variant in 0..3u64 {
                    let run = |sched: &mut dyn nonmask_program::Scheduler| {
                        Executor::new(&program).run(
                            space.state(id),
                            sched,
                            &RunConfig::default().stop_when(&s, 1).max_steps(bound + 1),
                        )
                    };
                    let report = match variant {
                        0 => run(&mut RoundRobin::new()),
                        1 => run(&mut Random::seeded(trial * 7 + variant)),
                        _ => {
                            let ids: Vec<_> = program.action_ids().collect();
                            let k = ids.len();
                            let order: Vec<_> =
                                (0..k).map(|i| ids[(i + trial as usize) % k]).collect();
                            run(&mut Adversarial::with_priority(order))
                        }
                    };
                    assert!(
                        report.stop.is_stabilized() || s.holds(&report.final_state),
                        "trial {trial}: bound {bound} exceeded (variant {variant})"
                    );
                }
            }
        }
    }

    // The random family is rich enough to exercise every verdict.
    assert!(converged_fair > 10, "converged(fair): {converged_fair}");
    assert!(
        converged_unfair > 5,
        "converged(unfair): {converged_unfair}"
    );
    assert!(deadlocks > 10, "deadlocks: {deadlocks}");
    assert!(divergences > 10, "divergences: {divergences}");
}

/// Serial and multi-threaded verification agree on *every* design in the
/// protocols crate: same verdicts, same witnesses, same counts and bounds.
/// (Timings are the only report fields allowed to differ.)
#[test]
fn st_and_mt_verdicts_identical_on_all_protocols() {
    use nonmask::{CheckOptions, Design};
    use nonmask_protocols::aggregate::WaveAggregation;
    use nonmask_protocols::atomic::AtomicActions;
    use nonmask_protocols::coloring::TreeColoring;
    use nonmask_protocols::diffusing::DiffusingComputation;
    use nonmask_protocols::reset::DistributedReset;
    use nonmask_protocols::token_ring::windowed_design;
    use nonmask_protocols::{xyz, Tree};

    let tree = Tree::from_parents(vec![0, 0, 1]);
    let designs: Vec<(&str, Design)> = vec![
        ("xyz out-tree", xyz::out_tree().unwrap().0),
        ("xyz ordered", xyz::ordered().unwrap().0),
        ("xyz interfering", xyz::interfering().unwrap().0),
        ("windowed token ring", windowed_design(3, 3).unwrap().0),
        (
            "diffusing",
            DiffusingComputation::new(&tree).design().unwrap(),
        ),
        ("coloring", TreeColoring::new(&tree, 3).design().unwrap()),
        (
            "reset",
            DistributedReset::new(&tree, 2, 0).design().unwrap(),
        ),
        (
            "aggregate",
            WaveAggregation::new(&tree, 2).design().unwrap(),
        ),
        ("atomic actions", AtomicActions::new(4).design().unwrap()),
    ];

    for (name, design) in designs {
        let st = design
            .clone()
            .with_options(CheckOptions::serial())
            .verify()
            .unwrap();
        for threads in [2usize, 4, 8] {
            let mt = design
                .clone()
                .with_options(CheckOptions::default().threads(threads))
                .verify()
                .unwrap();
            assert_eq!(st.shape, mt.shape, "{name}: shape ({threads} threads)");
            assert_eq!(
                st.closure.invariant, mt.closure.invariant,
                "{name}: S-closure witness ({threads} threads)"
            );
            assert_eq!(
                st.closure.fault_span, mt.closure.fault_span,
                "{name}: T-closure witness ({threads} threads)"
            );
            assert_eq!(
                st.closure.unguarded_constraints, mt.closure.unguarded_constraints,
                "{name}: unguarded constraints ({threads} threads)"
            );
            assert_eq!(
                st.closure.non_establishing, mt.closure.non_establishing,
                "{name}: non-establishing witnesses ({threads} threads)"
            );
            assert_eq!(
                format!("{:?}", st.theorem),
                format!("{:?}", mt.theorem),
                "{name}: theorem outcome ({threads} threads)"
            );
            assert_eq!(
                st.convergence, mt.convergence,
                "{name}: fair convergence ({threads} threads)"
            );
            assert_eq!(
                st.convergence_unfair, mt.convergence_unfair,
                "{name}: unfair convergence ({threads} threads)"
            );
            assert_eq!(
                st.worst_case_moves, mt.worst_case_moves,
                "{name}: worst-case bound ({threads} threads)"
            );
            assert_eq!(
                st.state_counts, mt.state_counts,
                "{name}: state counts ({threads} threads)"
            );
        }
    }
}

#[test]
fn worst_case_bound_is_tight_somewhere() {
    // For converging programs the bound is attained by SOME schedule: the
    // bound is a max over paths, so at least one adversarial path of that
    // length exists. We verify nondegenerate bounds appear.
    let mut rng = StdRng::seed_from_u64(99);
    let mut finite = 0;
    let mut max_bound = 0u64;
    for _ in 0..500 {
        let program = random_program(&mut rng);
        let s = random_target(&mut rng);
        let t = Predicate::always_true();
        let space = StateSpace::enumerate(&program).unwrap();
        if let Some(bound) = worst_case_moves(&space, &program, &t, &s).unwrap() {
            finite += 1;
            max_bound = max_bound.max(bound);
        }
    }
    // Unfair convergence is rare in this random family (cycles abound),
    // but it does occur, with nondegenerate bounds.
    assert!(finite >= 5, "finite bounds: {finite}");
    assert!(max_bound >= 1, "max bound observed: {max_bound}");
}
