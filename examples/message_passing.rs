//! The message-passing refinement (§7.1 leaves it "as an exercise to the
//! reader"): run the token ring over FIFO channels with caching, message
//! loss, and node crashes — and watch it stabilize anyway.
//!
//! ```text
//! cargo run --example message_passing
//! ```

use nonmask_protocols::token_ring::TokenRing;
use nonmask_sim::{Refinement, SimConfig, Simulation};

fn main() {
    let ring = TokenRing::new(8, 8);
    let refinement =
        Refinement::new(ring.program()).expect("refinable: every action writes one process");

    println!(
        "token ring n=8 refined to message passing: {} processes, {} cache channels\n",
        refinement.process_count(),
        refinement.channel_count()
    );

    let corrupt = ring
        .program()
        .state_from([7, 3, 1, 6, 2, 5, 0, 4])
        .expect("in domain");
    let config = SimConfig {
        seed: 7,
        loss_rate: 0.2, // every message dropped with probability 0.2
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(ring.program(), refinement, corrupt, config);

    println!("phase 1: stabilize from a 5-privilege corrupt state over a lossy network");
    let report = sim.run_until_stable(&ring.invariant(), 3);
    println!(
        "  stabilized at round {:?}; messages delivered {}, dropped {}\n",
        report.stabilized_at_round, report.messages_delivered, report.messages_dropped
    );
    assert!(report.stabilized_at_round.is_some());

    println!("phase 2: crash-restart two nodes, stabilize again");
    sim.crash_restart(3);
    sim.crash_restart(6);
    let report = sim.run_until_stable(&ring.invariant(), 3);
    println!(
        "  re-stabilized at round {:?} (total rounds so far: {})\n",
        report.stabilized_at_round,
        sim.rounds()
    );
    assert!(report.stabilized_at_round.is_some());

    println!("phase 3: steady state — token circulates");
    for _ in 0..5 {
        sim.round();
        let truth = sim.ground_truth();
        println!(
            "  round {:<4} privileges at {:?}",
            sim.rounds(),
            ring.privileges(&truth)
        );
    }
}
