//! The full design workflow, narrated: take a *candidate triple*, decompose
//! its invariant into constraints, pick convergence actions, and let the
//! library tell you which of the paper's theorems validates the design —
//! including what goes wrong when the convergence actions interfere.
//!
//! ```text
//! cargo run --example design_workflow
//! ```

use nonmask::{CandidateTriple, TheoremOutcome};
use nonmask_checker::StateSpace;
use nonmask_protocols::xyz;

fn report(label: &str, design: &nonmask::Design) {
    let graph = design.constraint_graph().expect("derivable");
    let report = design.verify().expect("bounded");
    println!("--- {label}");
    println!("    constraint graph: {}", graph.shape());
    match &report.theorem {
        TheoremOutcome::Theorem1 { ranks } => {
            println!("    Theorem 1 applies; node ranks: {ranks:?}");
        }
        TheoremOutcome::Theorem2 { orders } => {
            println!("    Theorem 2 applies; per-node linear preservation orders:");
            for (node, order) in orders {
                if order.len() > 1 {
                    let names: Vec<&str> = order
                        .iter()
                        .map(|e| design.constraints()[graph.edge_ref(*e).constraint().0].name())
                        .collect();
                    println!(
                        "      node {}: {}",
                        graph.node_ref(*node).name(),
                        names.join(" -> ")
                    );
                }
            }
        }
        TheoremOutcome::Theorem3 { layers } => {
            println!("    Theorem 3 applies with {layers} layers");
        }
        TheoremOutcome::NotApplicable { reasons } => {
            println!("    no theorem applies:");
            for r in reasons.iter().take(4) {
                println!("      - {r}");
            }
        }
    }
    println!(
        "    model check: convergence(fair)={} convergence(unfair)={} worst-case moves={}",
        report.convergence.converges(),
        report.convergence_unfair.converges(),
        report
            .worst_case_moves
            .map_or("∞".into(), |m| m.to_string()),
    );
    println!(
        "    verdict: {}\n",
        if report.is_tolerant() {
            "T-tolerant for S ✓"
        } else {
            "NOT tolerant ✗"
        }
    );
}

fn main() {
    println!("The design problem (paper §3): given a candidate triple (p, S, T),");
    println!("design convergence actions so the augmented program is T-tolerant for S.\n");

    // Step 0: a candidate triple for the xyz example — here p has no
    // closure actions (the computation is trivial), S = x!=y ∧ x<=z,
    // T = true.
    let (good, _) = xyz::out_tree().expect("design");
    let triple = CandidateTriple::stabilizing(good.program().clone(), good.invariant());
    let space = StateSpace::enumerate(triple.program()).expect("bounded");
    let (sv, tv) = triple.check_closure(&space).expect("closure");
    println!(
        "candidate triple: S closed: {}, T closed: {}, masking: {}\n",
        sv.is_none(),
        tv.is_none(),
        triple.is_masking(&space),
    );

    // Three choices of convergence actions for the same constraints:
    report("§4 design: repair y and z (out-tree)", &good);
    let (ordered, _) = xyz::ordered().expect("design");
    report(
        "§6 design: both repair x, one decreases (ordered)",
        &ordered,
    );
    let (bad, _) = xyz::interfering().expect("design");
    report(
        "§6 anti-design: both repair x carelessly (interfering)",
        &bad,
    );

    println!("Interference in the bad design: each repair can violate the other's");
    println!("constraint, and the model checker exhibits the resulting livelock —");
    println!("exactly the oscillation the paper describes in Section 6.");
}
