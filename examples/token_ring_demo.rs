//! Dijkstra's stabilizing token ring (§7.1): start from an arbitrarily
//! corrupted state with several spurious privileges, watch them collapse
//! to exactly one, then watch the token circulate.
//!
//! ```text
//! cargo run --example token_ring_demo
//! ```

use nonmask_program::scheduler::RoundRobin;
use nonmask_program::{Executor, RunConfig};
use nonmask_protocols::token_ring::TokenRing;

fn privileges_string(ring: &TokenRing, state: &nonmask_program::State) -> String {
    (0..ring.len())
        .map(|j| {
            if ring.is_privileged(state, j) {
                '*'
            } else {
                '.'
            }
        })
        .collect()
}

fn main() {
    let ring = TokenRing::new(8, 8);
    // An adversarial initial state: five privileges.
    let corrupt = ring
        .program()
        .state_from([7, 3, 1, 6, 2, 5, 0, 4])
        .expect("within domain");

    println!("token ring, n=8, k=8; '*' marks privileged nodes\n");
    println!(
        "  start    x={:?}  priv={} ({} privileges)",
        corrupt.slots(),
        privileges_string(&ring, &corrupt),
        ring.privileges(&corrupt).len()
    );

    let report = Executor::new(ring.program()).run(
        corrupt,
        &mut RoundRobin::new(),
        &RunConfig::default()
            .stop_when(&ring.invariant(), 1)
            .record_trace(true),
    );
    let trace = report.trace.expect("trace recorded");
    for step in trace.steps() {
        println!(
            "  step {:<3} x={:?}  priv={}",
            step.step,
            step.state.slots(),
            privileges_string(&ring, &step.state)
        );
    }
    println!(
        "\nstabilized after {} steps; now circulating:\n",
        report.steps
    );

    let mut state = report.final_state;
    for round in 0..12 {
        let holder = ring.token_holder(&state).expect("exactly one privilege");
        println!(
            "  round {round:<2} token at node {holder}  priv={}",
            privileges_string(&ring, &state)
        );
        let enabled = ring.program().enabled_actions(&state);
        assert_eq!(enabled.len(), 1, "exactly one enabled action inside S");
        ring.program().action(enabled[0]).apply(&mut state);
    }
}
