//! Deriving the fault span `T` mechanically — the nonmasking (but not
//! stabilizing) middle of the paper's §3 taxonomy.
//!
//! Faults here can only corrupt the last node's counter of a windowed
//! token ring. The fault span `T` is computed as the reachability closure
//! of `S` under program + fault actions; the result is a strict sandwich
//! `S ⊂ T ⊂ true`, with `T` closed and convergence from `T` back to `S`.
//!
//! ```text
//! cargo run --example fault_span
//! ```

use nonmask_checker::{
    check_convergence, compute_fault_span, is_closed, worst_case_moves, Fairness, StateSpace,
};
use nonmask_program::{Action, ActionKind, State};
use nonmask_protocols::token_ring::windowed_design;

fn main() {
    let (design, handles) = windowed_design(3, 3).expect("windowed design");
    let program = design.program();
    let space = StateSpace::enumerate(program).expect("bounded");
    let s = design.invariant();

    // Fault model: the last counter can be overwritten with any value.
    let last = handles.x[2];
    let faults: Vec<Action> = (0..=3)
        .map(|v| {
            Action::new(
                format!("fault: x.2 := {v}"),
                ActionKind::Closure,
                [last],
                [last],
                |_: &State| true,
                move |st: &mut State| st.set(last, v),
            )
        })
        .collect();

    println!("program: {} ({} states)", program.name(), space.len());
    println!("fault model: overwrite x.2 with an arbitrary value\n");

    let span = compute_fault_span(&space, program, &s, &faults).expect("span");
    let t = span.to_predicate(&space, "T");

    println!(
        "|S| = {:>3}   (legitimate states)",
        space.count_satisfying(&s).expect("count")
    );
    println!("|T| = {:>3}   (derived fault span)", span.len());
    println!("|U| = {:>3}   (all states)\n", space.len());

    let t_closed = is_closed(&space, program, &t).expect("closure").is_none();
    let conv =
        check_convergence(&space, program, &t, &s, Fairness::WeaklyFair).expect("convergence");
    let moves = worst_case_moves(&space, program, &t, &s).expect("bounds");
    println!("T closed under program actions: {t_closed}");
    println!(
        "every fair computation from T reaches S: {}",
        conv.converges()
    );
    println!("worst-case moves outside S: {:?}\n", moves);

    assert!(t_closed && conv.converges());
    let s_count = space.count_satisfying(&s).expect("count");
    assert!(s_count < span.len() && span.len() < space.len());
    println!("S ⊂ T ⊂ true: the program is NONMASKING tolerant to this fault");
    println!("class — not masking (faults are visible), not stabilizing (states");
    println!("outside T are never entered, so tolerance need not cover them).");
}
