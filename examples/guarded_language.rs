//! The paper's token-ring program written in guarded-command *notation*
//! (not Rust), compiled by `nonmask-lang`, then verified and run.
//!
//! ```text
//! cargo run --example guarded_language
//! ```

use nonmask_checker::{check_convergence, Fairness, StateSpace};
use nonmask_lang::compile;
use nonmask_program::scheduler::RoundRobin;
use nonmask_program::{Executor, Predicate, RunConfig};

const SOURCE: &str = r#"
    # Dijkstra's stabilizing token ring (paper §7.1), four nodes, mod 4.
    program token_ring
    var x.0 : 0..3; x.1 : 0..3; x.2 : 0..3; x.3 : 0..3

    action pass.0 [combined] : x.0 == x.3 -> x.0 := (x.0 + 1) % 4
    action pass.1 [combined] : x.1 != x.0 -> x.1 := x.0
    action pass.2 [combined] : x.2 != x.1 -> x.2 := x.1
    action pass.3 [combined] : x.3 != x.2 -> x.3 := x.2
"#;

fn main() {
    println!("source:\n{SOURCE}");
    let program = compile(SOURCE).expect("well-formed program");
    println!(
        "compiled `{}`: {} variables, {} actions\n",
        program.name(),
        program.var_count(),
        program.action_count()
    );

    // Verify: exactly-one-privilege is closed and reached from everywhere.
    let space = StateSpace::enumerate(&program).expect("bounded");
    let p2 = program.clone();
    let s = Predicate::new("one-privilege", program.var_ids(), move |st| {
        p2.enabled_actions(st).len() == 1
    });
    for fairness in [Fairness::WeaklyFair, Fairness::Unfair] {
        let verdict = check_convergence(&space, &program, &Predicate::always_true(), &s, fairness)
            .expect("convergence");
        println!(
            "convergence under the {fairness} daemon: {}",
            verdict.converges()
        );
        assert!(verdict.converges());
    }

    // Run it from a corrupted state.
    let corrupt = program.state_from([3, 1, 2, 0]).expect("in domain");
    let report = Executor::new(&program).run(
        corrupt,
        &mut RoundRobin::new(),
        &RunConfig::default().stop_when(&s, 1).record_trace(true),
    );
    println!("\nstabilization from x = [3, 1, 2, 0]:");
    for step in report.trace.expect("trace").steps() {
        println!(
            "  #{:<2} {:<8} x = {:?}",
            step.step,
            program.action(step.action.expect("no faults")).name(),
            step.state.slots()
        );
    }
    println!("\nstabilized after {} steps", report.steps);
}
