//! Stabilizing atomic actions (the protocol the paper's abstract names):
//! four processes on a ring engage in atomic actions while faults corrupt
//! phases and lock fields — the constraint repairs demote improperly
//! engaged processes and mutual exclusion is restored.
//!
//! ```text
//! cargo run --example atomic_actions
//! ```

use nonmask::TheoremOutcome;
use nonmask_program::scheduler::Random;
use nonmask_program::{Executor, RunConfig, ScheduledCorruption};
use nonmask_protocols::atomic::{lock, phase, AtomicActions};

fn render(aa: &AtomicActions, state: &nonmask_program::State) -> String {
    let phases: String = (0..aa.len())
        .map(|j| match state.get(aa.phase_var(j)) {
            phase::IDLE => '.',
            phase::WAITING => 'w',
            _ => 'E',
        })
        .collect();
    let locks: String = (0..aa.len())
        .map(|j| match state.get(aa.lock_var(j)) {
            lock::FREE => '-',
            lock::LEFT => '<',
            _ => '>',
        })
        .collect();
    format!("phases={phases} locks={locks}")
}

fn main() {
    let aa = AtomicActions::new(4);

    // 1. The design verdict: cyclic constraint graph, Theorem 3 layering.
    let design = aa.design().expect("even ring");
    let graph = design.constraint_graph().expect("derivable");
    let report = design.verify().expect("bounded");
    println!(
        "constraint graph: {} ({} nodes in a ring)",
        graph.shape(),
        graph.node_count()
    );
    println!("theorem: {:?}", report.theorem.name());
    assert!(matches!(
        report.theorem,
        TheoremOutcome::Theorem3 { layers: 2 }
    ));
    println!("tolerant (weakly fair): {}", report.is_tolerant());
    println!(
        "converges under the unfair daemon: {} — this protocol NEEDS fairness\n",
        report.convergence_unfair.converges()
    );

    // 2. Run with a fault burst: processes 0 and 2 are forced into the
    // Engaged phase without holding their locks.
    let s = aa.invariant();
    let mut faults = ScheduledCorruption::new()
        .at(25, aa.phase_var(0), phase::ENGAGED)
        .at(25, aa.phase_var(2), phase::ENGAGED)
        .at(25, aa.lock_var(0), lock::FREE)
        .at(25, aa.lock_var(1), lock::FREE);
    let run = Executor::new(aa.program()).run_with_faults(
        aa.initial_state(),
        &mut Random::seeded(11),
        &mut faults,
        &RunConfig::default()
            .max_steps(60)
            .record_trace(true)
            .watch(&s),
    );

    println!("timeline ('.'=idle w=waiting E=engaged; '-'=free '<'=left '>'=right):");
    let trace = run.trace.expect("trace recorded");
    for step in trace.steps() {
        let tag = match step.action {
            Some(a) => aa.program().action(a).name().to_string(),
            None => format!("FAULT x{}", step.faults),
        };
        println!(
            "  #{:<3} {:<16} {}  S={}",
            step.step,
            tag,
            render(&aa, &step.state),
            s.holds(&step.state)
        );
    }
    println!(
        "\nsteps inside S: {} / {}   (faults at step 25, repaired shortly after)",
        run.watch_hits[0], run.steps
    );
    assert!(s.holds(&run.final_state), "re-stabilized");
    assert!(
        !aa.neighbours_engaged(&run.final_state),
        "mutual exclusion restored"
    );
}
