//! Quickstart: design and verify a stabilizing program in ~40 lines.
//!
//! We reproduce the paper's Section 4 example: the invariant is
//! `x != y  ∧  x <= z`, each conjunct gets a convergence action, and the
//! whole design is verified — constraint graph shape, theorem side
//! conditions, and exhaustive closure/convergence model checking.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use nonmask::Design;
use nonmask_graph::NodePartition;
use nonmask_program::{Domain, Predicate, Program};

fn main() {
    // 1. The program: two convergence actions over x, y, z in 0..=4.
    let mut b = Program::builder("quickstart");
    let x = b.var("x", Domain::range(0, 4));
    let y = b.var("y", Domain::range(0, 4));
    let z = b.var("z", Domain::range(0, 4));
    let fix_y = b.convergence_action(
        "fix-neq: change y",
        [x, y],
        [y],
        move |s| s.get(x) == s.get(y),
        move |s| {
            let v = s.get(y);
            s.set(y, (v + 1) % 5);
        },
    );
    let fix_z = b.convergence_action(
        "fix-le: raise z",
        [x, z],
        [z],
        move |s| s.get(x) > s.get(z),
        move |s| {
            let v = s.get(x);
            s.set(z, v);
        },
    );
    let program = b.build();

    // 2. The constraints whose conjunction is the invariant S.
    let c_neq = Predicate::new("x!=y", [x, y], move |s| s.get(x) != s.get(y));
    let c_le = Predicate::new("x<=z", [x, z], move |s| s.get(x) <= s.get(z));

    // 3. The design: fault span defaults to `true` (stabilizing).
    let design = Design::builder(program)
        .partition(
            NodePartition::new()
                .group("x", [x])
                .group("y", [y])
                .group("z", [z]),
        )
        .constraint("x!=y", c_neq, fix_y)
        .constraint("x<=z", c_le, fix_z)
        .build()
        .expect("valid design");

    // 4. Verify: theorem side conditions + exhaustive model checking.
    let graph = design.constraint_graph().expect("derivable graph");
    println!(
        "constraint graph ({}):\n{}",
        graph.shape(),
        graph.to_dot(design.program())
    );

    let report = design.verify().expect("bounded state space");
    println!("{}", report.summary());
    assert!(report.is_tolerant());
    assert!(report.is_stabilizing());
    println!("\nThe design is stabilizing: from any of the {} states, every weakly fair\ncomputation reaches the invariant within {} moves.",
        report.state_counts.total,
        report.worst_case_moves.expect("finite bound"));
}
