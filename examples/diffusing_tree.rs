//! The §5.1 stabilizing diffusing computation, live: a wave runs over a
//! binary tree, faults corrupt three nodes mid-flight, and the program
//! re-stabilizes on its own. Prints a timeline of the tree's colors.
//!
//! ```text
//! cargo run --example diffusing_tree
//! ```

use nonmask_program::scheduler::Random;
use nonmask_program::{Executor, RunConfig, ScheduledCorruption};
use nonmask_protocols::diffusing::{DiffusingComputation, RED};
use nonmask_protocols::Tree;

fn render_colors(dc: &DiffusingComputation, state: &nonmask_program::State) -> String {
    (0..dc.tree().len())
        .map(|j| {
            if state.get(dc.color_var(j)) == RED {
                'R'
            } else {
                'g'
            }
        })
        .collect()
}

fn main() {
    let tree = Tree::binary(7);
    let dc = DiffusingComputation::new(&tree);
    let s = dc.invariant();

    // Corrupt nodes 2 and 5 at step 12 (mid-wave). Node 5 is a child of
    // node 2; making the child red under a green parent with mismatched
    // session numbers violates R.5 no matter what the wave was doing.
    let mut faults = ScheduledCorruption::new()
        .at(12, dc.color_var(2), nonmask_protocols::diffusing::GREEN)
        .at(12, dc.session_var(2), 1)
        .at(12, dc.color_var(5), RED)
        .at(12, dc.session_var(5), 0);

    let report = Executor::new(dc.program()).run_with_faults(
        dc.initial_state(),
        &mut Random::seeded(42),
        &mut faults,
        &RunConfig::default()
            .max_steps(60)
            .record_trace(true)
            .watch(&s),
    );

    println!("diffusing computation on a 7-node binary tree (root = node 0)");
    println!("colors per step (g = green, R = red); S = invariant holds\n");
    let trace = report.trace.expect("trace recorded");
    if let Some(init) = trace.initial() {
        println!(
            "  init            {}  S={}",
            render_colors(&dc, init),
            s.holds(init)
        );
    }
    for step in trace.steps() {
        let tag = match step.action {
            Some(a) => dc.program().action(a).name().to_string(),
            None => format!("FAULT x{}", step.faults),
        };
        println!(
            "  #{:<3} {:<22} {}  S={}",
            step.step,
            tag,
            render_colors(&dc, &step.state),
            s.holds(&step.state)
        );
    }
    println!(
        "\nsteps: {}   faults injected: {}   steps inside S: {}",
        report.steps, report.fault_events, report.watch_hits[0]
    );
    assert!(
        trace.states().any(|st| !s.holds(st)),
        "the faults really violated the invariant"
    );
    assert!(
        s.holds(&report.final_state),
        "the program re-stabilized after the faults"
    );
}
